// Ablation bench for the design choices DESIGN.md calls out beyond the
// paper's own figures:
//   (a) soft-voting committee vs the single best pipeline (top-1),
//   (b) ModelRace's two pruning phases vs no pruning (runtime + F1),
//   (c) cluster labeling vs exhaustive per-series labeling (label quality
//       proxy + imputation-run cost).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/incremental.h"
#include "common/stopwatch.h"
#include "labeling/labeler.h"
#include "ml/metrics.h"

namespace adarts::bench {
namespace {

double CommitteeF1(const std::vector<automl::TrainedPipeline*>& committee,
                   const ml::Dataset& test) {
  std::vector<int> preds;
  preds.reserve(test.size());
  for (const auto& f : test.features) {
    la::Vector acc(static_cast<std::size_t>(test.num_classes), 0.0);
    for (const auto* member : committee) {
      const la::Vector p = member->PredictProba(f);
      for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
    }
    preds.push_back(static_cast<int>(
        std::max_element(acc.begin(), acc.end()) - acc.begin()));
  }
  auto report =
      ml::ComputeClassificationReport(test.labels, preds, test.num_classes);
  return report.ok() ? report->f1 : 0.0;
}

int Run() {
  std::printf("=== Ablations: voting, pruning, cluster labeling ===\n\n");

  // ---------- (a) committee voting vs top-1 pipeline.
  std::printf("--- (a) soft voting vs single best pipeline (F1) ---\n");
  std::printf("%-10s %10s %10s %12s\n", "Category", "top-1", "committee",
              "#members");
  PrintRule(46);
  double vote_total = 0.0, top1_total = 0.0;
  int categories = 0;
  for (data::Category c : data::AllCategories()) {
    ExperimentOptions opts;
    opts.variants = 3;
    opts.series_per_variant = 30;
    auto exp = BuildCategoryExperiment(c, opts);
    if (!exp.ok()) continue;
    double vote_f1 = 0.0, top1_f1 = 0.0;
    std::size_t members = 0;
    int runs = 0;
    for (std::uint64_t seed : {7ULL, 21ULL, 77ULL}) {
      automl::ModelRaceOptions race;
      race.num_seed_pipelines = 36;
      race.seed = seed;
      auto engine = Adarts::TrainFromLabeled(exp->train, exp->pool, {}, race,
                                             seed);
      if (!engine.ok()) continue;
      // The engine's committee is already fitted; evaluate it directly and
      // against its first (best mean score) member alone.
      std::vector<automl::TrainedPipeline*> committee;
      for (const auto& member : engine->committee()) {
        committee.push_back(const_cast<automl::TrainedPipeline*>(&member));
      }
      if (committee.empty()) continue;
      vote_f1 += CommitteeF1(committee, exp->test);
      top1_f1 += CommitteeF1({committee[0]}, exp->test);
      members = std::max(members, committee.size());
      ++runs;
    }
    if (runs == 0) continue;
    vote_f1 /= runs;
    top1_f1 /= runs;
    vote_total += vote_f1;
    top1_total += top1_f1;
    ++categories;
    std::printf("%-10s %10s %10s %12zu\n",
                std::string(data::CategoryToString(c)).c_str(),
                Fmt(top1_f1, 3).c_str(), Fmt(vote_f1, 3).c_str(), members);
  }
  PrintRule(46);
  if (categories > 0) {
    std::printf("mean: top-1 %s vs committee %s\n\n",
                Fmt(top1_total / categories, 3).c_str(),
                Fmt(vote_total / categories, 3).c_str());
  }

  // ---------- (b) pruning on/off: evaluations and wall time.
  std::printf("--- (b) pruning phases: race cost ---\n");
  {
    ExperimentOptions opts;
    opts.variants = 3;
    opts.series_per_variant = 30;
    auto exp = BuildCategoryExperiment(data::Category::kPower, opts);
    if (exp.ok()) {
      struct Mode {
        const char* name;
        double margin;
        double worse_p;
        double similar_p;
      };
      const Mode modes[] = {
          {"both prunes (default)", 0.15, 0.05, 0.4},
          {"t-test only", 1e9, 0.05, 0.4},
          {"early-term only", 0.15, 0.0, 1.1},
          {"no pruning", 1e9, 0.0, 1.1},
      };
      std::printf("%-24s %8s %10s %12s %8s\n", "Mode", "F1", "evals",
                  "pruned", "time(s)");
      PrintRule(68);
      for (const Mode& mode : modes) {
        automl::ModelRaceOptions race;
        race.num_seed_pipelines = 36;
        race.early_termination_margin = mode.margin;
        race.ttest_worse_pvalue = mode.worse_p;
        race.ttest_similarity_pvalue = mode.similar_p;
        Stopwatch watch;
        auto scores = EvaluateAdarts(*exp, race);
        const double seconds = watch.ElapsedSeconds();
        auto engine =
            Adarts::TrainFromLabeled(exp->train, exp->pool, {}, race, race.seed);
        std::size_t evals = 0, pruned = 0;
        if (engine.ok()) {
          evals = engine->race_report().pipelines_evaluated;
          pruned = engine->race_report().pipelines_pruned_early +
                   engine->race_report().pipelines_pruned_ttest;
        }
        std::printf("%-24s %8s %10zu %12zu %8s\n", mode.name,
                    scores.ok() ? Fmt(scores->f1, 3).c_str() : "fail", evals,
                    pruned, Fmt(seconds, 2).c_str());
      }
      std::printf("(pruning should cut evaluations substantially at equal or "
                  "better F1)\n\n");
    }
  }

  // ---------- (c) cluster labeling vs exhaustive labeling.
  std::printf("--- (c) cluster labeling vs per-series labeling ---\n");
  std::printf("(regret = how much worse the cluster-assigned algorithm's "
              "RMSE is than the per-series best; median over series)\n");
  std::printf("%-10s %16s %16s %14s\n", "Category", "cluster runs",
              "naive runs", "median regret");
  PrintRule(60);
  for (data::Category c : data::AllCategories()) {
    data::GeneratorOptions gopts;
    gopts.num_series = 30;
    gopts.length = 192;
    const auto corpus = data::GenerateCategory(c, gopts);
    labeling::LabelingOptions lopts;
    lopts.algorithms = BenchPool();
    lopts.representatives_per_cluster = 4;
    auto clustering = cluster::IncrementalClustering(corpus, {});
    if (!clustering.ok()) continue;
    auto fast = labeling::LabelByClusters(corpus, *clustering, lopts);
    auto full = labeling::LabelSeriesFull(corpus, lopts);
    if (!fast.ok() || !full.ok()) continue;
    // Near-tie algorithms make raw label agreement meaningless; the honest
    // quality measure is the RMSE regret of the propagated label relative
    // to each series' true best (from the exhaustive pass's RMSE matrix).
    std::vector<double> regrets;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const auto chosen = static_cast<std::size_t>(fast->labels[i]);
      const auto best = static_cast<std::size_t>(full->labels[i]);
      const double best_rmse = full->rmse(i, best);
      const double chosen_rmse = full->rmse(i, chosen);
      if (best_rmse > 0.0 && std::isfinite(chosen_rmse)) {
        regrets.push_back((chosen_rmse - best_rmse) / best_rmse);
      }
    }
    // Median regret: a single series with a near-zero best RMSE would blow
    // up a mean of ratios.
    double median_regret = 0.0;
    if (!regrets.empty()) {
      std::nth_element(regrets.begin(),
                       regrets.begin() +
                           static_cast<std::ptrdiff_t>(regrets.size() / 2),
                       regrets.end());
      median_regret = regrets[regrets.size() / 2];
    }
    // The naive alternative the paper argues against benchmarks every
    // series individually: |series| * |pool| runs.
    std::printf("%-10s %16zu %16zu %13.0f%%\n",
                std::string(data::CategoryToString(c)).c_str(),
                fast->imputation_runs, corpus.size() * lopts.algorithms.size(),
                100.0 * median_regret);
  }
  std::printf("(cluster labeling should stay within a small regret of the "
              "per-series best at a fraction of the bench runs)\n");
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
