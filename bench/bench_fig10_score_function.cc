// Fig. 10 reproduction: sensitivity of ModelRace to the scoring
// coefficients. Part (a) sweeps alpha (the F1 weight) and part (b) sweeps
// gamma (the runtime weight), reporting F1 and CPU time. Expected shape:
// F1 saturates near alpha = 0.5; gamma <= 0.75 barely affects F1 while
// lowering CPU; gamma = 1 hurts F1.

#include <cstdio>

#include "bench/bench_util.h"

namespace adarts::bench {
namespace {

int Run() {
  std::printf("=== Fig. 10: Score Function (coefficient sweeps) ===\n\n");

  // A category hard enough that the coefficients visibly matter, averaged
  // over race seeds to suppress selection noise.
  ExperimentOptions opts;
  opts.variants = 3;
  opts.series_per_variant = 26;
  auto exp = BuildCategoryExperiment(data::Category::kPower, opts);
  if (!exp.ok()) {
    std::printf("experiment failed: %s\n", exp.status().ToString().c_str());
    return 1;
  }

  const double sweep[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::uint64_t repeat_seeds[] = {7, 21, 77, 101, 202};

  const auto run_point = [&](double alpha, double gamma, double* f1,
                             double* cpu) {
    double f1_total = 0.0, cpu_total = 0.0;
    int runs = 0;
    for (std::uint64_t seed : repeat_seeds) {
      automl::ModelRaceOptions race;
      race.num_seed_pipelines = 36;
      race.num_partial_sets = 4;
      race.alpha = alpha;
      race.beta = 0.5;
      race.gamma = gamma;
      race.seed = seed;
      auto scores = EvaluateAdarts(*exp, race);
      if (scores.ok()) {
        f1_total += scores->f1;
        cpu_total += scores->train_seconds;
        ++runs;
      }
    }
    *f1 = runs > 0 ? f1_total / runs : 0.0;
    *cpu = runs > 0 ? cpu_total / runs : 0.0;
  };

  std::printf("--- (a) varying alpha (beta = 0.5, gamma = 0.75) ---\n");
  std::printf("%-8s %10s %12s\n", "alpha", "F1", "CPU (s)");
  PrintRule(34);
  for (double alpha : sweep) {
    double f1 = 0.0, cpu = 0.0;
    run_point(alpha, 0.75, &f1, &cpu);
    std::printf("%-8s %10s %12s\n", Fmt(alpha).c_str(), Fmt(f1, 3).c_str(),
                Fmt(cpu, 3).c_str());
  }

  std::printf("\n--- (b) varying gamma (alpha = beta = 0.5) ---\n");
  std::printf("%-8s %10s %12s\n", "gamma", "F1", "CPU (s)");
  PrintRule(34);
  for (double gamma : sweep) {
    double f1 = 0.0, cpu = 0.0;
    run_point(0.5, gamma, &f1, &cpu);
    std::printf("%-8s %10s %12s\n", Fmt(gamma).c_str(), Fmt(f1, 3).c_str(),
                Fmt(cpu, 3).c_str());
  }
  std::printf("\n(paper knee points: alpha = 0.5, gamma = 0.75)\n");
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
