// Fig. 11 reproduction: the incremental correlation-gain clustering vs three
// k-shape variants (default k=8, grid search, iterative splitting).
// Part (a): average intra-cluster correlation and runtime. Part (b): number
// of final clusters vs the grid-search "ground truth". Expected shape:
// incremental reaches high correlation at moderate runtime and lands close
// to the ground-truth cluster count; k-shape default is fast but poorly
// correlated; grid search is accurate but slow; iterative over-fragments.

#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/incremental.h"
#include "cluster/kshape.h"
#include "common/stopwatch.h"

namespace adarts::bench {
namespace {

int Run() {
  std::printf("=== Fig. 11: Clustering Performance ===\n\n");

  // Mixed corpus across all six categories: several natural groups.
  data::GeneratorOptions gopts;
  gopts.num_series = 12;
  gopts.length = 160;
  const std::vector<ts::TimeSeries> corpus = data::GenerateMixedCorpus(2, gopts);
  std::printf("corpus: %zu series from 6 categories x 2 variants\n\n",
              corpus.size());
  const la::Matrix corr = cluster::PairwiseCorrelationMatrix(corpus);

  struct Row {
    const char* name;
    double correlation;
    double seconds;
    std::size_t clusters;
  };
  std::vector<Row> rows;

  {
    Stopwatch w;
    cluster::IncrementalOptions opts;
    opts.correlation_threshold = 0.75;
    opts.small_cluster_size = 6;
    opts.merge_correlation_slack = 0.8;
    auto c = cluster::IncrementalClustering(corpus, opts);
    if (c.ok()) {
      rows.push_back({"incremental (A-DARTS)",
                      cluster::AverageIntraClusterCorrelation(*c, corr),
                      w.ElapsedSeconds(), c->NumClusters()});
    }
  }
  {
    Stopwatch w;
    cluster::KShapeOptions opts;  // default k = 8
    auto c = cluster::KShapeClustering(corpus, opts);
    if (c.ok()) {
      rows.push_back({"k-shape (default k=8)",
                      cluster::AverageIntraClusterCorrelation(*c, corr),
                      w.ElapsedSeconds(), c->NumClusters()});
    }
  }
  std::size_t ground_truth_clusters = 0;
  {
    Stopwatch w;
    auto c = cluster::KShapeGridSearch(corpus, 20, corr);
    if (c.ok()) {
      ground_truth_clusters = c->NumClusters();
      rows.push_back({"k-shape (grid search)",
                      cluster::AverageIntraClusterCorrelation(*c, corr),
                      w.ElapsedSeconds(), c->NumClusters()});
    }
  }
  {
    Stopwatch w;
    auto c = cluster::KShapeIterativeSplit(corpus, 0.8, corr);
    if (c.ok()) {
      rows.push_back({"k-shape (iterative)",
                      cluster::AverageIntraClusterCorrelation(*c, corr),
                      w.ElapsedSeconds(), c->NumClusters()});
    }
  }

  std::printf("--- (a) cluster quality and runtime ---\n");
  std::printf("%-24s %14s %12s\n", "Method", "avg corr", "runtime (s)");
  PrintRule(54);
  for (const Row& r : rows) {
    std::printf("%-24s %14s %12s\n", r.name, Fmt(r.correlation, 3).c_str(),
                Fmt(r.seconds, 3).c_str());
  }

  std::printf("\n--- (b) number of final clusters (ground truth via grid "
              "search: %zu) ---\n",
              ground_truth_clusters);
  std::printf("%-24s %10s %18s\n", "Method", "#clusters", "|delta vs truth|");
  PrintRule(56);
  for (const Row& r : rows) {
    const auto delta = r.clusters > ground_truth_clusters
                           ? r.clusters - ground_truth_clusters
                           : ground_truth_clusters - r.clusters;
    std::printf("%-24s %10zu %18zu\n", r.name, r.clusters, delta);
  }
  std::printf("\n(paper shape: incremental ~0.87 corr at reasonable runtime "
              "and closest-to-truth cluster count; iterative high corr but "
              "cluster explosion; default k-shape fast but ~0.61 corr)\n");
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
