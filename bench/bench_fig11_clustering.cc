// Fig. 11 reproduction: the incremental correlation-gain clustering vs three
// k-shape variants (default k=8, grid search, iterative splitting).
// Part (a): average intra-cluster correlation and runtime. Part (b): number
// of final clusters vs the grid-search "ground truth". Expected shape:
// incremental reaches high correlation at moderate runtime and lands close
// to the ground-truth cluster count; k-shape default is fast but poorly
// correlated; grid search is accurate but slow; iterative over-fragments.
// Part (c): thread scaling + parity of the parallel correlation matrix and
// incremental clustering (--threads N sizes parts (a)/(b), default 0 =
// hardware concurrency; part (c) sweeps 1/2/4 regardless).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "cluster/incremental.h"
#include "cluster/kshape.h"
#include "common/exec_context.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace adarts::bench {
namespace {

int Run(std::size_t num_threads, const std::string& json_path) {
  const BenchJsonWriter json(json_path);
  std::printf("=== Fig. 11: Clustering Performance ===\n");
  std::printf("(clustering threads: %zu)\n\n",
              ThreadPool::ResolveThreadCount(num_threads));

  // Mixed corpus across all six categories: several natural groups.
  data::GeneratorOptions gopts;
  gopts.num_series = 12;
  gopts.length = 160;
  const std::vector<ts::TimeSeries> corpus = data::GenerateMixedCorpus(2, gopts);
  std::printf("corpus: %zu series from 6 categories x 2 variants\n\n",
              corpus.size());
  const la::Matrix corr = cluster::PairwiseCorrelationMatrix(corpus);

  struct Row {
    const char* name;
    double correlation;
    double seconds;
    std::size_t clusters;
  };
  std::vector<Row> rows;

  StageMetrics incremental_stages;
  {
    Stopwatch w;
    cluster::IncrementalOptions opts;
    opts.correlation_threshold = 0.75;
    opts.small_cluster_size = 6;
    opts.merge_correlation_slack = 0.8;
    ExecContext ctx(num_threads);
    auto c = cluster::IncrementalClustering(corpus, opts, ctx);
    incremental_stages = ctx.metrics().Snapshot();
    if (c.ok()) {
      rows.push_back({"incremental (A-DARTS)",
                      cluster::AverageIntraClusterCorrelation(*c, corr),
                      w.ElapsedSeconds(), c->NumClusters()});
    }
  }
  {
    Stopwatch w;
    cluster::KShapeOptions opts;  // default k = 8
    auto c = cluster::KShapeClustering(corpus, opts);
    if (c.ok()) {
      rows.push_back({"k-shape (default k=8)",
                      cluster::AverageIntraClusterCorrelation(*c, corr),
                      w.ElapsedSeconds(), c->NumClusters()});
    }
  }
  std::size_t ground_truth_clusters = 0;
  {
    Stopwatch w;
    auto c = cluster::KShapeGridSearch(corpus, 20, corr);
    if (c.ok()) {
      ground_truth_clusters = c->NumClusters();
      rows.push_back({"k-shape (grid search)",
                      cluster::AverageIntraClusterCorrelation(*c, corr),
                      w.ElapsedSeconds(), c->NumClusters()});
    }
  }
  {
    Stopwatch w;
    auto c = cluster::KShapeIterativeSplit(corpus, 0.8, corr);
    if (c.ok()) {
      rows.push_back({"k-shape (iterative)",
                      cluster::AverageIntraClusterCorrelation(*c, corr),
                      w.ElapsedSeconds(), c->NumClusters()});
    }
  }

  std::printf("--- (a) cluster quality and runtime ---\n");
  std::printf("%-24s %14s %12s\n", "Method", "avg corr", "runtime (s)");
  PrintRule(54);
  for (const Row& r : rows) {
    std::printf("%-24s %14s %12s\n", r.name, Fmt(r.correlation, 3).c_str(),
                Fmt(r.seconds, 3).c_str());
    // The incremental row carries its ExecContext stage breakdown
    // (cluster.correlation_seconds, cluster.splits/merges/moves).
    const bool is_incremental = std::strncmp(r.name, "incremental", 11) == 0;
    json.Record("fig11.clustering",
                {{"method", r.name},
                 {"clusters", std::to_string(r.clusters)}},
                r.seconds, r.correlation,
                is_incremental ? &incremental_stages : nullptr);
  }

  std::printf("\n--- (b) number of final clusters (ground truth via grid "
              "search: %zu) ---\n",
              ground_truth_clusters);
  std::printf("%-24s %10s %18s\n", "Method", "#clusters", "|delta vs truth|");
  PrintRule(56);
  for (const Row& r : rows) {
    const auto delta = r.clusters > ground_truth_clusters
                           ? r.clusters - ground_truth_clusters
                           : ground_truth_clusters - r.clusters;
    std::printf("%-24s %10zu %18zu\n", r.name, r.clusters, delta);
  }
  std::printf("\n(paper shape: incremental ~0.87 corr at reasonable runtime "
              "and closest-to-truth cluster count; iterative high corr but "
              "cluster explosion; default k-shape fast but ~0.61 corr)\n");

  std::printf("\n--- (c) thread scaling of the clustering path ---\n");
  std::printf("%-10s %14s %14s %10s %8s\n", "threads", "corr-mat (s)",
              "cluster (s)", "speedup", "parity");
  PrintRule(62);
  // Serial reference for the bit-identity check and the speedup baseline.
  const la::Matrix ref_corr = cluster::PairwiseCorrelationMatrix(corpus);
  cluster::IncrementalOptions copts;
  copts.correlation_threshold = 0.75;
  copts.small_cluster_size = 6;
  copts.merge_correlation_slack = 0.8;
  ExecContext ref_ctx(1);
  const auto ref_clusters =
      cluster::IncrementalClustering(corpus, copts, ref_ctx);
  double serial_total = 0.0;
  for (std::size_t threads : {1, 2, 4}) {
    // One context per row: the correlation matrix and the clustering share
    // its pool (constructed lazily, once).
    ExecContext ctx(threads);
    Stopwatch corr_watch;
    const la::Matrix corr_t = cluster::PairwiseCorrelationMatrix(corpus, ctx);
    const double corr_seconds = corr_watch.ElapsedSeconds();
    Stopwatch cluster_watch;
    const auto clusters_t = cluster::IncrementalClustering(corpus, copts, ctx);
    const double cluster_seconds = cluster_watch.ElapsedSeconds();
    bool identical = clusters_t.ok() && ref_clusters.ok() &&
                     clusters_t->clusters == ref_clusters->clusters;
    for (std::size_t i = 0; identical && i < corpus.size(); ++i) {
      for (std::size_t j = 0; j < corpus.size(); ++j) {
        if (corr_t(i, j) != ref_corr(i, j)) {
          identical = false;
          break;
        }
      }
    }
    const double total = corr_seconds + cluster_seconds;
    if (threads == 1) serial_total = total;
    std::printf("%-10zu %14s %14s %9sx %8s\n", threads,
                Fmt(corr_seconds, 4).c_str(), Fmt(cluster_seconds, 4).c_str(),
                serial_total > 0.0 ? Fmt(serial_total / total, 2).c_str() : "-",
                identical ? "ok" : "MISMATCH");
    const StageMetrics thread_stages = ctx.metrics().Snapshot();
    json.Record("fig11.thread_scaling",
                {{"threads", std::to_string(threads)},
                 {"parity", identical ? "ok" : "mismatch"}},
                total,
                clusters_t.ok()
                    ? static_cast<double>(clusters_t->NumClusters())
                    : -1.0,
                &thread_stages);
  }
  std::printf("(pairs fan out over the upper-triangle index space; matrices "
              "and cluster assignments are bit-identical at every thread "
              "count)\n");
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main(int argc, char** argv) {
  std::size_t num_threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads =
          static_cast<std::size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
  }
  adarts::TraceOptions trace_options;
  trace_options.path = adarts::bench::TracePathFromArgs(argc, argv);
  trace_options.enabled = !trace_options.path.empty();
  adarts::ScopedTrace trace_session(trace_options);
  return adarts::bench::Run(num_threads,
                            adarts::bench::JsonPathFromArgs(argc, argv));
}
