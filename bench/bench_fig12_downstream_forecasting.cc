// Fig. 12 reproduction, grown into a downstream suite: impact of
// imputation-algorithm selection on (a) forecasting and (b) anomaly
// detection after repair. Each forecasting dataset gets a 20% missing block
// at the tip of half its series; the series are repaired either with the
// algorithm A-DARTS recommends for that dataset or with the static
// one-size-fits-all recommendation (simulating the binary-decision-vector
// rule of the ImputeBench paper). Task (a) forecasts 12 steps ahead with an
// AR(24) model and scores sMAPE; task (b) plants known spike anomalies
// before masking and scores point-anomaly detection F1 on the repaired
// series — a sloppy repair leaves artifacts in the tip that a robust
// z-score detector flags as false positives. Expected shape: A-DARTS
// repairs yield clearly lower sMAPE and an anomaly F1 at least as high as
// the static repair, with the biggest gains on complex seasonal structure.
//
//   bench_fig12_downstream_forecasting [--smoke] [--json PATH] [--trace PATH]
//
// --smoke runs two datasets on a tiny corpus — the ctest case proving the
// whole downstream loop end to end on every push.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/trace.h"
#include "data/forecast_data.h"
#include "forecast/forecaster.h"
#include "labeling/labeler.h"
#include "ts/metrics.h"
#include "ts/missing.h"

namespace adarts::bench {
namespace {

struct Fig12Config {
  std::size_t history = 240;
  std::size_t horizon = 12;
  std::size_t series = 10;
  double tip_fraction = 0.2;
  std::size_t max_datasets = static_cast<std::size_t>(-1);
  bool smoke = false;
};

/// Static recommendation: the single algorithm with the best average rank
/// over a generic reference corpus — the "recommendation axis dot product"
/// of the ImputeBench heuristic collapses to one global winner.
Result<impute::Algorithm> StaticRecommendation(
    const std::vector<impute::Algorithm>& pool, const Fig12Config& config) {
  data::GeneratorOptions gopts;
  gopts.num_series = config.series;
  gopts.length = config.history;
  const auto reference = data::GenerateMixedCorpus(1, gopts);

  labeling::LabelingOptions lopts;
  lopts.algorithms = pool;
  lopts.pattern = ts::MissingPattern::kTipOfSeries;
  lopts.missing_fraction = config.tip_fraction;
  ADARTS_ASSIGN_OR_RETURN(labeling::LabelingResult labels,
                          labeling::LabelSeriesFull(reference, lopts));
  // Average rank per algorithm across the reference series.
  la::Vector avg_rank(pool.size(), 0.0);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    for (std::size_t a = 0; a < pool.size(); ++a) {
      double rank = 1.0;
      for (std::size_t b = 0; b < pool.size(); ++b) {
        if (labels.rmse(i, b) < labels.rmse(i, a)) rank += 1.0;
      }
      avg_rank[a] += rank;
    }
  }
  std::size_t best = 0;
  for (std::size_t a = 1; a < pool.size(); ++a) {
    if (avg_rank[a] < avg_rank[best]) best = a;
  }
  return pool[best];
}

/// Average sMAPE of AR(24) forecasts from the repaired histories. The AR
/// lag window reaches directly into the repaired tip, so forecast quality
/// tracks repair quality closely — the downstream mechanism under study.
double ForecastSmape(const std::vector<ts::TimeSeries>& repaired,
                     const std::vector<ts::TimeSeries>& full,
                     const Fig12Config& config) {
  const auto forecaster = forecast::CreateAutoRegressive(24);
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < repaired.size(); ++i) {
    auto pred = forecaster->Forecast(repaired[i].values(), config.horizon);
    if (!pred.ok()) continue;
    la::Vector actual(config.horizon);
    for (std::size_t h = 0; h < config.horizon; ++h) {
      actual[h] = full[i].value(config.history + h);
    }
    auto smape = ts::Smape(actual, *pred);
    if (smape.ok()) {
      total += *smape;
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

// --- Task (b): anomaly detection after repair -------------------------------

/// Point-anomaly detector: robust z-score against the series median with a
/// MAD scale estimate (outlier-proof on both moments). Positions whose
/// score exceeds `threshold` are flagged.
std::vector<std::size_t> DetectSpikes(const ts::TimeSeries& series,
                                      double threshold) {
  la::Vector sorted = series.values();
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  la::Vector deviations(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    deviations[i] = std::abs(series.value(i) - median);
  }
  la::Vector dev_sorted = deviations;
  std::sort(dev_sorted.begin(), dev_sorted.end());
  const double sigma = 1.4826 * dev_sorted[dev_sorted.size() / 2];
  std::vector<std::size_t> detected;
  if (sigma < 1e-12) return detected;
  for (std::size_t i = 0; i < deviations.size(); ++i) {
    if (deviations[i] / sigma > threshold) detected.push_back(i);
  }
  return detected;
}

struct DetectionTally {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  void Add(const std::vector<std::size_t>& truth,
           const std::vector<std::size_t>& detected) {
    for (std::size_t p : detected) {
      if (std::binary_search(truth.begin(), truth.end(), p)) {
        ++tp;
      } else {
        ++fp;
      }
    }
    for (std::size_t p : truth) {
      if (!std::binary_search(detected.begin(), detected.end(), p)) ++fn;
    }
  }

  double F1() const {
    const double denom = static_cast<double>(2 * tp + fp + fn);
    return denom > 0.0 ? 2.0 * static_cast<double>(tp) / denom : 0.0;
  }
};

struct AnomalyScores {
  double f1_adarts = 0.0;
  double f1_static = 0.0;
};

/// Plants spikes in the complete histories (outside the tip that will go
/// missing), masks the tips of the odd half of the fleet, repairs with both
/// systems, and scores spike detection on the repaired series only — the
/// even half is identical under both repairs and would just dilute the
/// delta.
Result<AnomalyScores> AnomalyAfterRepair(
    const Adarts& engine, impute::Algorithm static_algo,
    const std::vector<ts::TimeSeries>& histories, const Fig12Config& config,
    std::uint64_t seed) {
  Rng rng(seed);
  const auto tip_len = static_cast<std::size_t>(
      std::round(config.tip_fraction * static_cast<double>(config.history)));
  std::vector<ts::TimeSeries> spiked = histories;
  std::vector<std::vector<std::size_t>> truth(histories.size());
  for (std::size_t i = 0; i < spiked.size(); ++i) {
    truth[i] = data::InjectSpikeAnomalies(/*count=*/3, /*magnitude=*/6.0,
                                          /*margin=*/tip_len + 4, &rng,
                                          &spiked[i]);
  }

  std::vector<ts::TimeSeries> working = spiked;
  for (std::size_t i = 1; i < working.size(); i += 2) {
    ADARTS_RETURN_NOT_OK(ts::InjectTipBlock(config.tip_fraction, &working[i]));
  }
  ADARTS_ASSIGN_OR_RETURN(std::vector<ts::TimeSeries> fixed_adarts,
                          engine.RepairSet(working));
  ADARTS_ASSIGN_OR_RETURN(
      std::vector<ts::TimeSeries> fixed_static,
      impute::CreateImputer(static_algo)->ImputeSet(working));

  constexpr double kThreshold = 4.0;
  DetectionTally adarts_tally;
  DetectionTally static_tally;
  for (std::size_t i = 1; i < histories.size(); i += 2) {
    adarts_tally.Add(truth[i], DetectSpikes(fixed_adarts[i], kThreshold));
    static_tally.Add(truth[i], DetectSpikes(fixed_static[i], kThreshold));
  }
  return AnomalyScores{adarts_tally.F1(), static_tally.F1()};
}

int Run(const Fig12Config& config, const BenchJsonWriter& writer) {
  std::printf("=== Fig. 12 downstream suite: forecasting sMAPE (lower is "
              "better) and anomaly-detection F1 after repair (higher is "
              "better) ===\n\n");

  const std::vector<impute::Algorithm> pool = BenchPool();
  auto static_algo = StaticRecommendation(pool, config);
  if (!static_algo.ok()) {
    std::printf("static recommendation failed: %s\n",
                static_algo.status().ToString().c_str());
    return 1;
  }
  std::printf("static one-size-fits-all recommendation: %s\n\n",
              std::string(impute::AlgorithmToString(*static_algo)).c_str());

  std::printf("%-14s %9s %9s %8s %8s %8s  %s\n", "Dataset", "A-DARTS",
              "static", "gain", "F1 A-D", "F1 stat", "recommended");
  PrintRule(78);

  double total_gain = 0.0;
  double total_f1_delta = 0.0;
  int datasets = 0;
  std::vector<std::string> names = data::ForecastDatasetNames();
  if (names.size() > config.max_datasets) names.resize(config.max_datasets);
  for (const std::string& name : names) {
    Stopwatch watch;
    const auto full = data::GenerateForecastDataset(
        name, config.series, config.history + config.horizon, 41);
    std::vector<ts::TimeSeries> histories;
    for (const auto& s : full) {
      la::Vector h(s.values().begin(),
                   s.values().begin() +
                       static_cast<std::ptrdiff_t>(config.history));
      histories.emplace_back(std::move(h));
    }

    // Train A-DARTS on this dataset's (complete) histories with the tip
    // pattern it will face at repair time.
    TrainOptions topts;
    topts.labeling.algorithms = pool;
    topts.labeling.pattern = ts::MissingPattern::kTipOfSeries;
    topts.labeling.missing_fraction = config.tip_fraction;
    // Half the fleet is masked at repair time; label under the same regime.
    topts.labeling.representatives_per_cluster = 5;
    topts.race.num_seed_pipelines = config.smoke ? 8 : 14;
    topts.race.num_partial_sets = 2;
    topts.race.num_folds = 2;
    auto engine = Adarts::Train(histories, topts);
    if (!engine.ok()) {
      std::printf("%-14s training failed: %s\n", name.c_str(),
                  engine.status().ToString().c_str());
      continue;
    }

    // Task (a): repair in two passes — mask the tips of one half of the
    // fleet while the other half stays observed (sensor outages hit
    // subsets, not the whole fleet — total blackout would leave nothing to
    // repair from).
    std::vector<ts::TimeSeries> adarts_repaired = histories;
    std::vector<ts::TimeSeries> static_repaired = histories;
    impute::Algorithm last_recommendation = pool[0];
    bool failed = false;
    for (int parity = 0; parity < 2 && !failed; ++parity) {
      std::vector<ts::TimeSeries> working_a = adarts_repaired;
      std::vector<ts::TimeSeries> working_s = static_repaired;
      for (std::size_t i = static_cast<std::size_t>(parity);
           i < histories.size(); i += 2) {
        failed = failed ||
                 !ts::InjectTipBlock(config.tip_fraction, &working_a[i]).ok();
        failed = failed ||
                 !ts::InjectTipBlock(config.tip_fraction, &working_s[i]).ok();
      }
      if (failed) break;
      auto rec = engine->Recommend(working_a[static_cast<std::size_t>(parity)]);
      auto fixed_a = engine->RepairSet(working_a);
      auto fixed_s = impute::CreateImputer(*static_algo)->ImputeSet(working_s);
      if (!fixed_a.ok() || !fixed_s.ok() || !rec.ok()) {
        failed = true;
        break;
      }
      last_recommendation = *rec;
      for (std::size_t i = static_cast<std::size_t>(parity);
           i < histories.size(); i += 2) {
        adarts_repaired[i] = (*fixed_a)[i];
        static_repaired[i] = (*fixed_s)[i];
      }
    }
    if (failed) {
      std::printf("%-14s repair failed\n", name.c_str());
      continue;
    }

    const double adarts_smape = ForecastSmape(adarts_repaired, full, config);
    const double static_smape = ForecastSmape(static_repaired, full, config);
    const double gain =
        static_smape > 0.0
            ? 100.0 * (static_smape - adarts_smape) / static_smape
            : 0.0;

    // Task (b): anomaly detection after repair on the same dataset.
    const auto anomaly = AnomalyAfterRepair(*engine, *static_algo, histories,
                                            config, 97 + datasets);
    if (!anomaly.ok()) {
      std::printf("%-14s anomaly task failed: %s\n", name.c_str(),
                  anomaly.status().ToString().c_str());
      continue;
    }

    total_gain += gain;
    total_f1_delta += anomaly->f1_adarts - anomaly->f1_static;
    ++datasets;
    std::printf("%-14s %9s %9s %7s%% %8s %8s  %s\n", name.c_str(),
                Fmt(adarts_smape, 3).c_str(), Fmt(static_smape, 3).c_str(),
                Fmt(gain, 1).c_str(), Fmt(anomaly->f1_adarts, 2).c_str(),
                Fmt(anomaly->f1_static, 2).c_str(),
                std::string(impute::AlgorithmToString(last_recommendation))
                    .c_str());
    writer.Record(
        "fig12.downstream", {{"dataset", name}}, watch.ElapsedSeconds(),
        adarts_smape, nullptr,
        {{"smape_adarts", adarts_smape},
         {"smape_static", static_smape},
         {"gain_pct", gain},
         {"anomaly_f1_adarts", anomaly->f1_adarts},
         {"anomaly_f1_static", anomaly->f1_static}});
  }
  PrintRule(78);
  if (datasets > 0) {
    std::printf("\nAverage sMAPE improvement with A-DARTS: %.1f%% "
                "(paper: ~55%%, ranging 28-80%%)\n",
                total_gain / datasets);
    std::printf("Average anomaly-detection F1 delta (A-DARTS - static): "
                "%+.3f\n",
                total_f1_delta / datasets);
    return 0;
  }
  return 1;
}

}  // namespace
}  // namespace adarts::bench

int main(int argc, char** argv) {
  adarts::bench::Fig12Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // The tiny-corpus ctest/CI configuration: two datasets, short
      // histories, smaller race — proves the loop, not the numbers.
      config.smoke = true;
      config.history = 120;
      config.horizon = 8;
      config.series = 8;
      config.max_datasets = 2;
    }
  }
  adarts::TraceOptions trace_options;
  trace_options.path = adarts::bench::TracePathFromArgs(argc, argv);
  trace_options.enabled = !trace_options.path.empty();
  adarts::ScopedTrace trace_session(trace_options);
  const adarts::bench::BenchJsonWriter writer(
      adarts::bench::JsonPathFromArgs(argc, argv));
  return adarts::bench::Run(config, writer);
}
