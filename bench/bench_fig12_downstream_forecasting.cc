// Fig. 12 reproduction: downstream impact of imputation-algorithm selection
// on forecasting. Each of the seven forecasting datasets gets a 20% missing
// block at the tip of every series; the series are repaired either with the
// algorithm A-DARTS recommends for that dataset or with the static
// one-size-fits-all recommendation (simulating the binary-decision-vector
// rule of the ImputeBench paper), then forecast 12 steps ahead with
// Holt-Winters. Expected shape: A-DARTS repairs yield clearly lower sMAPE,
// with the biggest gains on the datasets with complex seasonal structure.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/forecast_data.h"
#include "forecast/forecaster.h"
#include "labeling/labeler.h"
#include "ts/metrics.h"
#include "ts/missing.h"

namespace adarts::bench {
namespace {

constexpr std::size_t kHistory = 240;
constexpr std::size_t kHorizon = 12;
constexpr double kTipFraction = 0.2;

/// Static recommendation: the single algorithm with the best average rank
/// over a generic reference corpus — the "recommendation axis dot product"
/// of the ImputeBench heuristic collapses to one global winner.
Result<impute::Algorithm> StaticRecommendation(
    const std::vector<impute::Algorithm>& pool) {
  data::GeneratorOptions gopts;
  gopts.num_series = 10;
  gopts.length = kHistory;
  const auto reference = data::GenerateMixedCorpus(1, gopts);

  labeling::LabelingOptions lopts;
  lopts.algorithms = pool;
  lopts.pattern = ts::MissingPattern::kTipOfSeries;
  lopts.missing_fraction = kTipFraction;
  ADARTS_ASSIGN_OR_RETURN(labeling::LabelingResult labels,
                          labeling::LabelSeriesFull(reference, lopts));
  // Average rank per algorithm across the reference series.
  la::Vector avg_rank(pool.size(), 0.0);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    for (std::size_t a = 0; a < pool.size(); ++a) {
      double rank = 1.0;
      for (std::size_t b = 0; b < pool.size(); ++b) {
        if (labels.rmse(i, b) < labels.rmse(i, a)) rank += 1.0;
      }
      avg_rank[a] += rank;
    }
  }
  std::size_t best = 0;
  for (std::size_t a = 1; a < pool.size(); ++a) {
    if (avg_rank[a] < avg_rank[best]) best = a;
  }
  return pool[best];
}

/// Average sMAPE of AR(24) forecasts from the repaired histories. The AR
/// lag window reaches directly into the repaired tip, so forecast quality
/// tracks repair quality closely — the downstream mechanism under study.
double ForecastSmape(const std::vector<ts::TimeSeries>& repaired,
                     const std::vector<ts::TimeSeries>& full) {
  const auto forecaster = forecast::CreateAutoRegressive(24);
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < repaired.size(); ++i) {
    auto pred = forecaster->Forecast(repaired[i].values(), kHorizon);
    if (!pred.ok()) continue;
    la::Vector actual(kHorizon);
    for (std::size_t h = 0; h < kHorizon; ++h) {
      actual[h] = full[i].value(kHistory + h);
    }
    auto smape = ts::Smape(actual, *pred);
    if (smape.ok()) {
      total += *smape;
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

int Run() {
  std::printf("=== Fig. 12: Impact on Time Series Forecasting (sMAPE, lower "
              "is better) ===\n\n");

  const std::vector<impute::Algorithm> pool = BenchPool();
  auto static_algo = StaticRecommendation(pool);
  if (!static_algo.ok()) {
    std::printf("static recommendation failed: %s\n",
                static_algo.status().ToString().c_str());
    return 1;
  }
  std::printf("static one-size-fits-all recommendation: %s\n\n",
              std::string(impute::AlgorithmToString(*static_algo)).c_str());

  std::printf("%-14s %12s %12s %10s  %s\n", "Dataset", "A-DARTS",
              "static", "gain", "recommended");
  PrintRule(68);

  double total_gain = 0.0;
  int datasets = 0;
  for (const std::string& name : data::ForecastDatasetNames()) {
    const auto full = data::GenerateForecastDataset(name, 10, kHistory + kHorizon,
                                                    41);
    std::vector<ts::TimeSeries> histories;
    for (const auto& s : full) {
      la::Vector h(s.values().begin(),
                   s.values().begin() + static_cast<std::ptrdiff_t>(kHistory));
      histories.emplace_back(std::move(h));
    }

    // Train A-DARTS on this dataset's (complete) histories with the tip
    // pattern it will face at repair time.
    TrainOptions topts;
    topts.labeling.algorithms = pool;
    topts.labeling.pattern = ts::MissingPattern::kTipOfSeries;
    topts.labeling.missing_fraction = kTipFraction;
    // Half the fleet is masked at repair time; label under the same regime.
    topts.labeling.representatives_per_cluster = 5;
    topts.race.num_seed_pipelines = 14;
    topts.race.num_partial_sets = 2;
    topts.race.num_folds = 2;
    auto engine = Adarts::Train(histories, topts);
    if (!engine.ok()) {
      std::printf("%-14s training failed: %s\n", name.c_str(),
                  engine.status().ToString().c_str());
      continue;
    }

    // Repair in two passes: mask the tips of one half of the fleet while
    // the other half stays observed (sensor outages hit subsets, not the
    // whole fleet — total blackout would leave nothing to repair from).
    std::vector<ts::TimeSeries> adarts_repaired = histories;
    std::vector<ts::TimeSeries> static_repaired = histories;
    impute::Algorithm last_recommendation = pool[0];
    bool failed = false;
    for (int parity = 0; parity < 2 && !failed; ++parity) {
      std::vector<ts::TimeSeries> working_a = adarts_repaired;
      std::vector<ts::TimeSeries> working_s = static_repaired;
      for (std::size_t i = static_cast<std::size_t>(parity);
           i < histories.size(); i += 2) {
        failed = failed || !ts::InjectTipBlock(kTipFraction, &working_a[i]).ok();
        failed = failed || !ts::InjectTipBlock(kTipFraction, &working_s[i]).ok();
      }
      if (failed) break;
      auto rec = engine->Recommend(working_a[static_cast<std::size_t>(parity)]);
      auto fixed_a = engine->RepairSet(working_a);
      auto fixed_s = impute::CreateImputer(*static_algo)->ImputeSet(working_s);
      if (!fixed_a.ok() || !fixed_s.ok() || !rec.ok()) {
        failed = true;
        break;
      }
      last_recommendation = *rec;
      for (std::size_t i = static_cast<std::size_t>(parity);
           i < histories.size(); i += 2) {
        adarts_repaired[i] = (*fixed_a)[i];
        static_repaired[i] = (*fixed_s)[i];
      }
    }
    if (failed) {
      std::printf("%-14s repair failed\n", name.c_str());
      continue;
    }
    const impute::Algorithm adarts_algo_value = last_recommendation;
    const auto* adarts_algo = &adarts_algo_value;

    const double adarts_smape = ForecastSmape(adarts_repaired, full);
    const double static_smape = ForecastSmape(static_repaired, full);
    const double gain = static_smape > 0.0
                            ? 100.0 * (static_smape - adarts_smape) / static_smape
                            : 0.0;
    total_gain += gain;
    ++datasets;
    std::printf("%-14s %12s %12s %9s%%  %s\n", name.c_str(),
                Fmt(adarts_smape, 3).c_str(), Fmt(static_smape, 3).c_str(),
                Fmt(gain, 1).c_str(),
                std::string(impute::AlgorithmToString(*adarts_algo)).c_str());
  }
  PrintRule(68);
  if (datasets > 0) {
    std::printf("\nAverage sMAPE improvement with A-DARTS: %.1f%% "
                "(paper: ~55%%, ranging 28-80%%)\n",
                total_gain / datasets);
  }
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
