// Fig. 1 reproduction: no single classifier (kNN / MLP / boosted trees) wins
// across all six dataset categories — the motivating observation for
// ModelRace's multi-winner design.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "ml/classifier.h"
#include "ml/metrics.h"

namespace adarts::bench {
namespace {

double ClassifierF1(ml::ClassifierKind kind, const CategoryExperiment& exp) {
  // "A configuration that seems sensible": family defaults, raw features.
  auto clf = ml::CreateClassifier(kind, {});
  if (!clf->Fit(exp.train).ok()) return 0.0;
  std::vector<int> preds;
  preds.reserve(exp.test.size());
  for (const auto& f : exp.test.features) preds.push_back(clf->Predict(f));
  auto report = ml::ComputeClassificationReport(exp.test.labels, preds,
                                                exp.test.num_classes);
  return report.ok() ? report->f1 : 0.0;
}

int Run() {
  std::printf("=== Fig. 1: Classifier Performance on Six Dataset Categories ===\n");
  std::printf("(F1 of three sensibly-configured classifiers; the point is that\n");
  std::printf(" the winner changes across categories)\n\n");

  const std::vector<std::pair<const char*, ml::ClassifierKind>> classifiers = {
      {"kNN", ml::ClassifierKind::kKnn},
      {"MLP", ml::ClassifierKind::kMlp},
      {"Boosted(CatBoost-class)", ml::ClassifierKind::kGradientBoosting}};

  ExperimentOptions opts;
  opts.variants = 3;
  opts.series_per_variant = 24;

  std::printf("%-10s %-8s %-8s %-8s  winner\n", "Category", "kNN", "MLP",
              "Boosted");
  PrintRule(56);
  std::map<std::string, int> wins;
  for (data::Category c : data::AllCategories()) {
    auto exp = BuildCategoryExperiment(c, opts);
    if (!exp.ok()) {
      std::printf("%-10s experiment failed: %s\n",
                  std::string(data::CategoryToString(c)).c_str(),
                  exp.status().ToString().c_str());
      continue;
    }
    double best = -1.0;
    const char* best_name = "";
    std::vector<double> f1s;
    for (const auto& [name, kind] : classifiers) {
      const double f1 = ClassifierF1(kind, *exp);
      f1s.push_back(f1);
      if (f1 > best) {
        best = f1;
        best_name = name;
      }
    }
    ++wins[best_name];
    std::printf("%-10s %-8s %-8s %-8s  %s\n",
                std::string(data::CategoryToString(c)).c_str(),
                Fmt(f1s[0]).c_str(), Fmt(f1s[1]).c_str(), Fmt(f1s[2]).c_str(),
                best_name);
  }
  PrintRule(56);
  std::printf("\nDistinct winners across categories: %zu (paper: no single "
              "classifier performs consistently best)\n",
              wins.size());
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
