// Fig. 6 reproduction: feature-coverage heatmap. Every feature dimension is
// normalised to [0, 1] over the corpus, bucketed, and each (feature,
// dataset) cell reports the fraction of buckets covered.

#include <cstdio>

#include "bench/bench_util.h"
#include "features/coverage.h"
#include "features/feature_extractor.h"

namespace adarts::bench {
namespace {

int Run() {
  std::printf("=== Fig. 6: Feature Coverage Heatmap ===\n\n");
  constexpr std::size_t kVariantsPerCategory = 3;
  constexpr std::size_t kBuckets = 10;

  const features::FeatureExtractor extractor{features::FeatureExtractorOptions{}};
  std::vector<std::vector<la::Vector>> per_dataset;
  std::vector<std::string> dataset_names;
  for (data::Category c : data::AllCategories()) {
    for (std::size_t v = 0; v < kVariantsPerCategory; ++v) {
      data::GeneratorOptions gopts;
      gopts.num_series = 24;
      gopts.length = 192;
      gopts.variant = static_cast<int>(v);
      auto batch = extractor.ExtractBatch(data::GenerateCategory(c, gopts));
      if (!batch.ok()) {
        std::printf("extraction failed: %s\n", batch.status().ToString().c_str());
        return 1;
      }
      per_dataset.push_back(std::move(*batch));
      dataset_names.push_back(std::string(data::CategoryToString(c)) + "-" +
                              std::to_string(v));
    }
  }

  auto report = features::ComputeFeatureCoverage(per_dataset, kBuckets);
  if (!report.ok()) {
    std::printf("coverage failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // ASCII heatmap: one row per feature, one digit per dataset (0-9 tenths).
  std::printf("rows = %zu features, cols = %zu datasets "
              "(digit = covered buckets, 0-9)\n\n    ",
              report->coverage.rows(), report->coverage.cols());
  for (std::size_t d = 0; d < dataset_names.size(); ++d) {
    std::printf("%c", dataset_names[d][0]);
  }
  std::printf("\n");
  const auto& schema = extractor.Schema();
  for (std::size_t f = 0; f < report->coverage.rows(); ++f) {
    std::printf("%3zu ", f);
    for (std::size_t d = 0; d < report->coverage.cols(); ++d) {
      const int digit =
          static_cast<int>(report->coverage(f, d) * 9.0 + 0.5);
      std::printf("%d", digit);
    }
    std::printf("  %s (%s)\n", schema[f].name.c_str(),
                features::FeatureGroupToString(schema[f].group));
  }

  // Aggregates backing the paper's observations.
  std::size_t fully_present = 0;
  std::size_t covered_somewhere = 0;
  for (std::size_t f = 0; f < report->feature_presence.size(); ++f) {
    if (report->feature_presence[f] >= 1.0) ++fully_present;
    if (report->feature_presence[f] > 0.0) ++covered_somewhere;
  }
  std::printf("\nFeatures covered by at least one dataset: %zu / %zu "
              "(paper: all features covered)\n",
              covered_somewhere, report->feature_presence.size());
  std::printf("Features present in every dataset:        %zu / %zu\n",
              fully_present, report->feature_presence.size());
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
