// Fig. 7 reproduction: average F1 and its standard deviation across the six
// dataset categories for every system. Expected shape: A-DARTS has the
// highest mean F1 and the tightest interval (the paper reports ~20% F1 gain
// over FLAML and ~2.5x less variance than the runner-up).

#include <cstdio>
#include <map>

#include "bench/bench_util.h"

namespace adarts::bench {
namespace {

int Run() {
  std::printf("=== Fig. 7: Average Efficacy Performance (F1 mean +- std over "
              "categories) ===\n\n");

  ExperimentOptions opts;
  opts.variants = 3;
  opts.series_per_variant = 26;

  automl::ModelRaceOptions race;
  race.num_seed_pipelines = 36;
  race.num_partial_sets = 4;

  std::map<std::string, std::vector<double>> f1s;
  for (data::Category c : data::AllCategories()) {
    auto exp = BuildCategoryExperiment(c, opts);
    if (!exp.ok()) {
      std::printf("%s failed: %s\n",
                  std::string(data::CategoryToString(c)).c_str(),
                  exp.status().ToString().c_str());
      continue;
    }
    baselines::BaselineOptions bopts;
    bopts.num_configurations = 24;
    const auto run = [&](const char* name,
                         std::unique_ptr<baselines::ModelSelector> sel) {
      auto s = EvaluateBaseline(sel.get(), *exp);
      f1s[name].push_back(s.ok() ? s->f1 : 0.0);
    };
    run("RAHA", baselines::CreateRahaLite(bopts));
    run("AutoFolio", baselines::CreateAutoFolioLite(bopts));
    run("Tune", baselines::CreateTuneLite(bopts));
    run("FLAML", baselines::CreateFlamlLite(bopts));
    auto adarts_scores = EvaluateAdarts(*exp, race);
    f1s["A-DARTS"].push_back(adarts_scores.ok() ? adarts_scores->f1 : 0.0);
  }

  std::printf("%-12s %10s %10s\n", "System", "mean F1", "std");
  PrintRule(36);
  double adarts_std = 0.0;
  double adarts_mean = 0.0;
  double best_other_mean = 0.0;
  double best_other_std = 0.0;  // std of the runner-up by mean F1
  for (const auto& [name, values] : f1s) {
    const double mean = MeanOf(values);
    const double sd = StdDevOf(values);
    std::printf("%-12s %10s %10s\n", name.c_str(), Fmt(mean, 3).c_str(),
                Fmt(sd, 3).c_str());
    if (name == "A-DARTS") {
      adarts_std = sd;
      adarts_mean = mean;
    } else if (mean > best_other_mean) {
      best_other_mean = mean;
      best_other_std = sd;
    }
  }
  PrintRule(36);
  if (adarts_std > 0.0) {
    std::printf("\nStability: A-DARTS std is %.2fx tighter than the "
                "second-best technique (paper: ~2.5x)\n",
                best_other_std / adarts_std);
  }
  std::printf("Mean-F1 gain of A-DARTS over the best baseline: %+.1f%%\n",
              100.0 * (adarts_mean - best_other_mean) /
                  std::max(best_other_mean, 1e-9));
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
