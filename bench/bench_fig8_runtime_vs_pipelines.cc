// Fig. 8 reproduction. Part (a): wall-clock model-selection time of A-DARTS
// vs FLAML / AutoFolio / Tune as the number of seed pipelines /
// configurations grows. Part (b): A-DARTS F1 (mean +- std over seeds) vs the
// number of seed pipelines — more pipelines means better AND more stable
// recommendations, and duplicate classifier families among the winners.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace adarts::bench {
namespace {

int Run(std::size_t num_threads, const std::string& json_path) {
  const BenchJsonWriter json(json_path);
  std::printf("=== Fig. 8: Recommendation Running Time vs Efficacy ===\n");
  std::printf("(ModelRace threads: %zu)\n\n",
              ThreadPool::ResolveThreadCount(num_threads));

  // One moderately hard category keeps the sweep affordable.
  ExperimentOptions opts;
  opts.variants = 3;
  opts.series_per_variant = 36;
  auto exp = BuildCategoryExperiment(data::Category::kMedical, opts);
  if (!exp.ok()) {
    std::printf("experiment failed: %s\n", exp.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::size_t> sweep = {6, 12, 18, 24, 30, 36};

  std::printf("--- (a) selection + training time (seconds) ---\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "#pipes", "A-DARTS", "FLAML",
              "AutoFolio", "Tune");
  PrintRule(56);
  for (std::size_t n : sweep) {
    automl::ModelRaceOptions race;
    race.num_seed_pipelines = n;
    race.num_partial_sets = 3;
    auto adarts_scores = EvaluateAdarts(*exp, race, num_threads);
    if (adarts_scores.ok()) {
      json.Record("fig8.selection_time",
                  {{"pipelines", std::to_string(n)},
                   {"threads", std::to_string(num_threads)}},
                  adarts_scores->train_seconds, adarts_scores->f1,
                  &adarts_scores->train_stages);
    }
    baselines::BaselineOptions bopts;
    bopts.num_configurations = n;
    auto flaml = baselines::CreateFlamlLite(bopts);
    auto autofolio = baselines::CreateAutoFolioLite(bopts);
    auto tune = baselines::CreateTuneLite(bopts);
    auto f = EvaluateBaseline(flaml.get(), *exp);
    auto a = EvaluateBaseline(autofolio.get(), *exp);
    auto t = EvaluateBaseline(tune.get(), *exp);
    std::printf("%-10zu %10s %10s %10s %10s\n", n,
                adarts_scores.ok() ? Fmt(adarts_scores->train_seconds, 3).c_str()
                                   : "fail",
                f.ok() ? Fmt(f->train_seconds, 3).c_str() : "fail",
                a.ok() ? Fmt(a->train_seconds, 3).c_str() : "fail",
                t.ok() ? Fmt(t->train_seconds, 3).c_str() : "fail");
  }
  std::printf("(paper shape: Tune an order of magnitude faster; A-DARTS "
              "competitive up to ~30 pipelines, then FLAML ~1.3x faster)\n\n");

  std::printf("--- (b) A-DARTS F1 vs number of seed pipelines ---\n");
  std::printf("%-10s %10s %10s %12s %14s\n", "#pipes", "mean F1", "std",
              "#winners", "dup families");
  PrintRule(60);
  for (std::size_t n : sweep) {
    std::vector<double> f1s;
    std::vector<double> secs;
    std::size_t winners = 0;
    bool duplicate_family = false;
    for (std::uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL, 55ULL}) {
      automl::ModelRaceOptions race;
      race.num_seed_pipelines = n;
      race.num_partial_sets = 3;
      race.seed = seed;
      auto scores = EvaluateAdarts(*exp, race, num_threads);
      if (scores.ok()) {
        f1s.push_back(scores->f1);
        secs.push_back(scores->train_seconds);
      }
      // Inspect the committee composition via a direct race.
      auto engine = Adarts::TrainFromLabeled(exp->train, exp->pool, {}, race,
                                             seed);
      if (engine.ok()) {
        winners = std::max(winners, engine->race_report().elites.size());
        std::map<ml::ClassifierKind, int> family_count;
        for (const auto& e : engine->race_report().elites) {
          if (++family_count[e.spec.classifier] > 1) duplicate_family = true;
        }
      }
    }
    std::printf("%-10zu %10s %10s %12zu %14s\n", n, Fmt(MeanOf(f1s), 3).c_str(),
                Fmt(StdDevOf(f1s), 3).c_str(), winners,
                duplicate_family ? "yes" : "no");
    json.Record("fig8.f1_vs_pipelines", {{"pipelines", std::to_string(n)}},
                MeanOf(secs), MeanOf(f1s));
  }
  std::printf("(paper shape: F1 rises and std shrinks with more pipelines; "
              "duplicate classifier families appear among the winners)\n\n");

  std::printf("--- (c) thread scaling of one race (24 pipelines) ---\n");
  std::printf("%-10s %12s %10s\n", "threads", "seconds", "speedup");
  PrintRule(34);
  double serial_seconds = 0.0;
  for (std::size_t threads : {1, 2, 4}) {
    automl::ModelRaceOptions race;
    race.num_seed_pipelines = 24;
    race.num_partial_sets = 3;
    auto scores = EvaluateAdarts(*exp, race, threads);
    if (!scores.ok()) {
      std::printf("%-10zu %12s %10s\n", threads, "fail", "-");
      continue;
    }
    if (threads == 1) serial_seconds = scores->train_seconds;
    json.Record("fig8.thread_scaling", {{"threads", std::to_string(threads)}},
                scores->train_seconds, scores->f1, &scores->train_stages);
    std::printf("%-10zu %12s %9sx\n", threads,
                Fmt(scores->train_seconds, 3).c_str(),
                serial_seconds > 0.0
                    ? Fmt(serial_seconds / scores->train_seconds, 2).c_str()
                    : "-");
  }
  std::printf("(per-candidate fold evaluations run on the shared pool; the "
              "selected elites are identical at every thread count)\n");
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main(int argc, char** argv) {
  // --threads N (default 0 = hardware concurrency) sizes the ModelRace
  // evaluation pool for parts (a) and (b); part (c) sweeps 1/2/4 regardless.
  // --json <path> appends machine-readable records per measurement.
  // --trace <path> exports a Chrome trace-event timeline of the whole run.
  std::size_t num_threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = static_cast<std::size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
  }
  adarts::TraceOptions trace_options;
  trace_options.path = adarts::bench::TracePathFromArgs(argc, argv);
  trace_options.enabled = !trace_options.path.empty();
  adarts::ScopedTrace trace_session(trace_options);
  return adarts::bench::Run(num_threads,
                            adarts::bench::JsonPathFromArgs(argc, argv));
}
