// Fig. 9 reproduction: ModelRace fed with statistical features only,
// topological features only, or both, per dataset category. Expected shape:
// the combination wins on the complex categories (Water, Lightning), while
// statistical-only can suffice on simple ones (e.g. Motion).

#include <cstdio>

#include "bench/bench_util.h"

namespace adarts::bench {
namespace {

int Run() {
  std::printf("=== Fig. 9: Feature Analysis (F1 per feature configuration) "
              "===\n\n");

  ExperimentOptions opts;
  opts.variants = 3;
  opts.series_per_variant = 24;

  automl::ModelRaceOptions race;
  race.num_seed_pipelines = 36;
  race.num_partial_sets = 4;
  const std::uint64_t repeat_seeds[] = {7, 21, 77};

  struct Config {
    const char* name;
    bool statistical;
    bool topological;
  };
  const Config configs[] = {{"statistical", true, false},
                            {"topological", false, true},
                            {"combined", true, true}};

  std::printf("%-10s %14s %14s %14s  best\n", "Category", "statistical",
              "topological", "combined");
  PrintRule(68);
  int combined_best = 0;
  int categories = 0;
  for (data::Category c : data::AllCategories()) {
    double f1s[3] = {0, 0, 0};
    for (int k = 0; k < 3; ++k) {
      features::FeatureExtractorOptions fopts;
      fopts.statistical = configs[k].statistical;
      fopts.topological = configs[k].topological;
      auto exp = BuildCategoryExperiment(c, opts, fopts);
      if (!exp.ok()) continue;
      // Average over race seeds: a single race run is too noisy to compare
      // feature configurations fairly.
      double total = 0.0;
      int runs = 0;
      for (std::uint64_t seed : repeat_seeds) {
        automl::ModelRaceOptions seeded = race;
        seeded.seed = seed;
        auto scores = EvaluateAdarts(*exp, seeded);
        if (scores.ok()) {
          total += scores->f1;
          ++runs;
        }
      }
      f1s[k] = runs > 0 ? total / runs : 0.0;
    }
    int best = 0;
    for (int k = 1; k < 3; ++k) {
      if (f1s[k] > f1s[best]) best = k;
    }
    ++categories;
    if (f1s[2] >= f1s[0] - 0.02 && f1s[2] >= f1s[1] - 0.02) ++combined_best;
    std::printf("%-10s %14s %14s %14s  %s\n",
                std::string(data::CategoryToString(c)).c_str(),
                Fmt(f1s[0]).c_str(), Fmt(f1s[1]).c_str(), Fmt(f1s[2]).c_str(),
                configs[best].name);
  }
  PrintRule(68);
  std::printf("\nCategories where the combined set is best or within 0.02: "
              "%d / %d (paper: both families needed on complex categories)\n",
              combined_best, categories);
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
