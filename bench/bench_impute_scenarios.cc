// Scenario & contamination matrix sweep: every registered missingness
// scenario (ts/scenario.h) crossed with every dataset category and missing
// rate. Per cell the bench reports each algorithm's RMSE, the cell's true
// best algorithm, and the recommender win-rate — did `Adarts::Recommend`
// pick that true best for the cell's masked series? This is the substrate
// experiment behind the whole selection problem (different damage, different
// winner) *and* the stability check on top of it (does the recommendation
// survive a scenario shift it was not trained on).
//
//   bench_impute_scenarios [--quick] [--scenario NAME]... [--category NAME]...
//                          [--rate R]... [--series N] [--length N] [--seed S]
//                          [--json BENCH_scenarios.json] [--trace trace.json]
//
// --json emits one record per (scenario, category, rate) cell with the
// per-algorithm RMSEs and the win-rate in `metrics`; tools/bench_compare
// diffs two such files and turns drift into a red exit code (DESIGN.md §11).
// --quick is the reduced grid the CI scenario-sweep job and the ctest smoke
// case run: a subset of scenarios/categories at one rate on a small corpus.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "ts/metrics.h"
#include "ts/scenario.h"

namespace adarts::bench {
namespace {

struct SweepConfig {
  std::vector<ts::Scenario> scenarios;
  std::vector<data::Category> categories;
  /// Overrides every scenario's default rate grid when non-empty.
  std::vector<double> rates;
  std::size_t series = 10;
  std::size_t length = 192;
  std::uint64_t seed = 97;
};

/// Stable 64-bit name hash (FNV-1a) so per-cell RNG streams do not depend
/// on std::hash's implementation — records must reproduce across toolchains.
std::uint64_t StableHash(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mean imputation RMSE of one algorithm on an already-masked set; any
/// failure (fit, malformed output, metric) surfaces as a Status instead of
/// the old silent -1.0 sentinel.
Result<double> AlgorithmRmse(impute::Algorithm algorithm,
                             const std::vector<ts::TimeSeries>& masked) {
  ADARTS_ASSIGN_OR_RETURN(std::vector<ts::TimeSeries> repaired,
                          impute::CreateImputer(algorithm)->ImputeSet(masked));
  double total = 0.0;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    ADARTS_ASSIGN_OR_RETURN(const double rmse,
                            ts::ImputationRmse(masked[i], repaired[i]));
    total += rmse;
  }
  return total / static_cast<double>(masked.size());
}

struct CellResult {
  std::string best_algorithm;
  double best_rmse = 0.0;
  /// Per-algorithm mean RMSE; only algorithms whose run succeeded appear.
  std::vector<std::pair<std::string, double>> rmse;
  std::size_t algorithm_failures = 0;
  /// Recommender agreement with the cell's true best.
  double win_rate = 0.0;
  std::size_t recommend_wins = 0;
  std::size_t recommend_calls = 0;
  std::size_t recommend_failures = 0;
};

/// Evaluates one (scenario, category, rate) cell: masks a copy of `truth`,
/// races every pool algorithm on it, and measures how often the trained
/// engine recommends the cell's winner. Fails only when *no* algorithm
/// produced a score (individual failures are printed and excluded).
Result<CellResult> EvaluateCell(const ts::Scenario& scenario, double rate,
                                const char* cell_tag,
                                const std::vector<ts::TimeSeries>& truth,
                                const std::vector<impute::Algorithm>& pool,
                                const Adarts* engine, std::uint64_t seed) {
  std::vector<ts::TimeSeries> masked = truth;
  Rng rng(seed);
  ADARTS_RETURN_NOT_OK(ts::ApplyScenario(scenario, rate, &rng, &masked));

  CellResult cell;
  std::optional<std::size_t> best;
  for (std::size_t a = 0; a < pool.size(); ++a) {
    const std::string name(impute::AlgorithmToString(pool[a]));
    const Result<double> rmse = AlgorithmRmse(pool[a], masked);
    if (!rmse.ok()) {
      ++cell.algorithm_failures;
      std::printf("  ! %s %s: %s\n", cell_tag, name.c_str(),
                  rmse.status().ToString().c_str());
      continue;
    }
    cell.rmse.emplace_back(name, *rmse);
    if (!best.has_value() || *rmse < cell.best_rmse) {
      best = a;
      cell.best_rmse = *rmse;
      cell.best_algorithm = name;
    }
  }
  if (!best.has_value()) {
    return Status::Internal("every algorithm failed on this cell");
  }

  if (engine != nullptr) {
    for (const auto& series : masked) {
      const Result<impute::Algorithm> rec = engine->Recommend(series);
      if (!rec.ok()) {
        ++cell.recommend_failures;
        continue;
      }
      ++cell.recommend_calls;
      if (*rec == pool[*best]) ++cell.recommend_wins;
    }
    if (cell.recommend_calls > 0) {
      cell.win_rate = static_cast<double>(cell.recommend_wins) /
                      static_cast<double>(cell.recommend_calls);
    }
  }
  return cell;
}

/// Trains the recommendation engine on the category's complete corpus with
/// the default (single-block) labeling regime — the sweep then measures how
/// that recommendation holds up across scenarios it never saw in training.
Result<Adarts> TrainCategoryEngine(const std::vector<ts::TimeSeries>& corpus,
                                   const std::vector<impute::Algorithm>& pool,
                                   std::uint64_t seed) {
  TrainOptions topts;
  topts.labeling.algorithms = pool;
  topts.labeling.missing_fraction = 0.1;
  topts.labeling.representatives_per_cluster = 4;
  topts.race.num_seed_pipelines = 12;
  topts.race.num_partial_sets = 2;
  topts.race.num_folds = 2;
  topts.seed = seed;
  return Adarts::Train(corpus, topts);
}

int RunSweep(const SweepConfig& config, const BenchJsonWriter& writer) {
  std::printf("=== Scenario & contamination matrix (mean RMSE on "
              "z-normalised sets; win rate = recommender picked the cell's "
              "best) ===\n");

  const std::vector<impute::Algorithm> pool = BenchPool();
  std::map<std::string, int> scenario_wins;
  std::map<std::string, std::pair<double, std::size_t>> scenario_win_rate;
  std::size_t cells_ok = 0;
  std::size_t cells_failed = 0;

  for (const data::Category category : config.categories) {
    const std::string category_name(data::CategoryToString(category));
    data::GeneratorOptions gopts;
    gopts.num_series = config.series;
    gopts.length = config.length;
    gopts.seed = config.seed;
    std::vector<ts::TimeSeries> truth = data::GenerateCategory(category, gopts);
    // Z-normalise so RMSE is comparable across categories.
    for (auto& s : truth) s = s.ZNormalized();

    const Result<Adarts> engine =
        TrainCategoryEngine(truth, pool, config.seed + StableHash(category_name));
    if (!engine.ok()) {
      std::printf("! %s: engine training failed, win rates unavailable: %s\n",
                  category_name.c_str(), engine.status().ToString().c_str());
    }

    std::printf("\n%s\n", category_name.c_str());
    std::printf("%-20s %6s %-14s %10s %9s %6s\n", "scenario", "rate",
                "best", "best_rmse", "win_rate", "fail");
    PrintRule(72);

    for (const ts::Scenario& scenario : config.scenarios) {
      const std::vector<double>& rates =
          config.rates.empty() ? scenario.rates : config.rates;
      for (const double rate : rates) {
        char cell_tag[128];
        std::snprintf(cell_tag, sizeof(cell_tag), "[%s/%s/%s]",
                      std::string(scenario.name).c_str(),
                      category_name.c_str(), Fmt(rate, 2).c_str());
        const std::uint64_t cell_seed =
            config.seed ^ StableHash(scenario.name) ^
            StableHash(category_name) ^
            static_cast<std::uint64_t>(rate * 1000.0);
        Stopwatch watch;
        const Result<CellResult> cell = EvaluateCell(
            scenario, rate, cell_tag, truth, pool,
            engine.ok() ? &*engine : nullptr, cell_seed);
        const double cell_seconds = watch.ElapsedSeconds();
        if (!cell.ok()) {
          ++cells_failed;
          std::printf("  ! %s: %s\n", cell_tag,
                      cell.status().ToString().c_str());
          continue;
        }
        ++cells_ok;
        ++scenario_wins[cell->best_algorithm];
        auto& [rate_sum, rate_count] =
            scenario_win_rate[std::string(scenario.name)];
        if (cell->recommend_calls > 0) {
          rate_sum += cell->win_rate;
          ++rate_count;
        }

        std::printf("%-20s %6s %-14s %10s %9s %6zu\n",
                    std::string(scenario.name).c_str(), Fmt(rate, 2).c_str(),
                    cell->best_algorithm.c_str(),
                    Fmt(cell->best_rmse, 3).c_str(),
                    cell->recommend_calls > 0 ? Fmt(cell->win_rate, 2).c_str()
                                              : "n/a",
                    cell->algorithm_failures + cell->recommend_failures);

        std::vector<std::pair<std::string, double>> metrics;
        metrics.emplace_back("rmse_best", cell->best_rmse);
        if (cell->recommend_calls > 0) {
          metrics.emplace_back("win_rate", cell->win_rate);
        }
        for (const auto& [name, rmse] : cell->rmse) {
          metrics.emplace_back("rmse." + name, rmse);
        }
        metrics.emplace_back(
            "algo_failures", static_cast<double>(cell->algorithm_failures));
        metrics.emplace_back(
            "recommend_failures",
            static_cast<double>(cell->recommend_failures));
        writer.Record("scenarios.cell",
                      {{"scenario", std::string(scenario.name)},
                       {"category", category_name},
                       {"rate", Fmt(rate, 2)}},
                      cell_seconds, cell->best_rmse, nullptr, metrics);
      }
    }
  }

  std::printf("\nScenario wins per algorithm:");
  for (const auto& [name, count] : scenario_wins) {
    std::printf(" %s=%d", name.c_str(), count);
  }
  std::printf("\nMean recommender win rate per scenario:");
  double overall_sum = 0.0;
  std::size_t overall_count = 0;
  for (const auto& [name, acc] : scenario_win_rate) {
    const auto& [sum, count] = acc;
    if (count == 0) continue;
    std::printf(" %s=%s", name.c_str(),
                Fmt(sum / static_cast<double>(count), 2).c_str());
    overall_sum += sum;
    overall_count += count;
  }
  std::printf("\nDistinct winning algorithms: %zu over %zu cells "
              "(%zu cells failed entirely)\n",
              scenario_wins.size(), cells_ok, cells_failed);

  writer.Record(
      "scenarios.summary", {}, 0.0,
      overall_count > 0 ? overall_sum / static_cast<double>(overall_count)
                        : 0.0,
      nullptr,
      {{"cells", static_cast<double>(cells_ok)},
       {"cells_failed", static_cast<double>(cells_failed)},
       {"distinct_winners", static_cast<double>(scenario_wins.size())},
       {"win_rate",
        overall_count > 0 ? overall_sum / static_cast<double>(overall_count)
                          : 0.0}});
  // Failed cells are visible above and excluded from every aggregate; they
  // only fail the bench when nothing at all could be scored.
  return cells_ok > 0 ? 0 : 1;
}

Result<data::Category> CategoryFromName(std::string_view name) {
  for (const data::Category c : data::AllCategories()) {
    if (data::CategoryToString(c) == name) return c;
  }
  return Status::NotFound("unknown category '" + std::string(name) + "'");
}

int Run(int argc, char** argv) {
  SweepConfig config;
  bool quick = false;
  std::vector<std::string> scenario_names;
  std::vector<std::string> category_names;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (const char* v = next("--scenario")) {
      scenario_names.emplace_back(v);
    } else if (const char* v = next("--category")) {
      category_names.emplace_back(v);
    } else if (const char* v = next("--rate")) {
      config.rates.push_back(std::atof(v));
    } else if (const char* v = next("--series")) {
      config.series = std::strtoul(v, nullptr, 10);
    } else if (const char* v = next("--length")) {
      config.length = std::strtoul(v, nullptr, 10);
    } else if (const char* v = next("--seed")) {
      config.seed = std::strtoull(v, nullptr, 10);
    }
  }

  if (quick) {
    // The reduced CI grid: one rate, two categories, a scenario subset that
    // still spans the taxonomy (point-wise, aligned blocks, multi-series
    // overlap, seasonal), on a corpus small enough for every push.
    if (scenario_names.empty()) {
      scenario_names = {"mcar", "blackout", "overlapping_blocks",
                        "seasonal_gaps"};
    }
    if (category_names.empty()) category_names = {"Power", "Climate"};
    if (config.rates.empty()) config.rates = {0.1};
    config.series = 8;
    config.length = 128;
  }

  if (scenario_names.empty()) {
    config.scenarios = ts::AllScenarios();
  } else {
    for (const std::string& name : scenario_names) {
      auto scenario = ts::FindScenario(name);
      if (!scenario.ok()) {
        std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
        return 2;
      }
      config.scenarios.push_back(std::move(*scenario));
    }
  }
  if (category_names.empty()) {
    config.categories = data::AllCategories();
  } else {
    for (const std::string& name : category_names) {
      auto category = CategoryFromName(name);
      if (!category.ok()) {
        std::fprintf(stderr, "%s\n", category.status().ToString().c_str());
        return 2;
      }
      config.categories.push_back(*category);
    }
  }

  const BenchJsonWriter writer(JsonPathFromArgs(argc, argv));
  return RunSweep(config, writer);
}

}  // namespace
}  // namespace adarts::bench

int main(int argc, char** argv) {
  adarts::TraceOptions trace_options;
  trace_options.path = adarts::bench::TracePathFromArgs(argc, argv);
  trace_options.enabled = !trace_options.path.empty();
  adarts::ScopedTrace trace_session(trace_options);
  return adarts::bench::Run(argc, argv);
}
