// ImputeBench-style scenario sweep of the imputation library itself: RMSE
// of every algorithm across missing-block sizes and dataset categories.
// This is the substrate experiment behind the labeling step — it shows that
// different categories/scenarios have different winning algorithms, which
// is the premise of the recommendation problem.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ts/metrics.h"
#include "ts/missing.h"

namespace adarts::bench {
namespace {

double ScenarioRmse(impute::Algorithm algorithm,
                    const std::vector<ts::TimeSeries>& set,
                    double missing_fraction, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ts::TimeSeries> masked = set;
  for (auto& s : masked) {
    const auto block = static_cast<std::size_t>(
        missing_fraction * static_cast<double>(s.length()));
    if (!ts::InjectSingleBlock(std::max<std::size_t>(block, 2), &rng, &s).ok()) {
      return -1.0;
    }
  }
  auto repaired = impute::CreateImputer(algorithm)->ImputeSet(masked);
  if (!repaired.ok()) return -1.0;
  double total = 0.0;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    auto rmse = ts::ImputationRmse(masked[i], (*repaired)[i]);
    if (!rmse.ok()) return -1.0;
    total += *rmse;
  }
  return total / static_cast<double>(masked.size());
}

int Run() {
  std::printf("=== Imputation scenario sweep (RMSE on z-normalised sets; "
              "lower is better, * = scenario winner) ===\n");

  const std::vector<impute::Algorithm> pool = BenchPool();
  const double fractions[] = {0.05, 0.1, 0.2};

  std::map<std::string, int> wins;
  for (data::Category category : data::AllCategories()) {
    data::GeneratorOptions gopts;
    gopts.num_series = 10;
    gopts.length = 192;
    std::vector<ts::TimeSeries> set = data::GenerateCategory(category, gopts);
    // Z-normalise so RMSE is comparable across categories.
    for (auto& s : set) s = s.ZNormalized();

    std::printf("\n%s (block size as fraction of series length)\n",
                std::string(data::CategoryToString(category)).c_str());
    std::printf("%-14s", "algorithm");
    for (double f : fractions) std::printf(" %9.0f%%", 100.0 * f);
    std::printf("\n");
    PrintRule(46);

    std::map<double, std::pair<double, std::string>> best;
    std::map<std::pair<std::string, double>, double> table;
    for (impute::Algorithm a : pool) {
      const std::string name(impute::AlgorithmToString(a));
      for (double f : fractions) {
        const double rmse = ScenarioRmse(a, set, f, 97);
        table[{name, f}] = rmse;
        if (rmse >= 0.0 &&
            (!best.count(f) || rmse < best[f].first)) {
          best[f] = {rmse, name};
        }
      }
    }
    for (impute::Algorithm a : pool) {
      const std::string name(impute::AlgorithmToString(a));
      std::printf("%-14s", name.c_str());
      for (double f : fractions) {
        const double rmse = table[{name, f}];
        if (rmse < 0.0) {
          std::printf(" %10s", "fail");
        } else {
          std::printf(" %9.3f%s", rmse, best[f].second == name ? "*" : " ");
        }
      }
      std::printf("\n");
    }
    for (double f : fractions) ++wins[best[f].second];
  }

  std::printf("\nScenario wins per algorithm:");
  for (const auto& [name, count] : wins) {
    std::printf(" %s=%d", name.c_str(), count);
  }
  std::printf("\nDistinct winning algorithms: %zu (the premise of the "
              "selection problem: no algorithm dominates)\n",
              wins.size());
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
