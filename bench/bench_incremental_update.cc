// Incremental-growth bench: append a delta of series to a trained engine
// via `Adarts::AppendSeries` (assignment + warm-started ModelRace) and
// compare against the control arm — a full `Adarts::Train` over the grown
// corpus. Reports the append-vs-retrain wall-clock speedup and the labeling
// agreement between the two engines' training datasets (row order matches:
// original corpus first, delta last). EXPERIMENTS.md records the headline
// numbers; the CI incremental-smoke job gates the --quick grid against
// bench/baselines/BENCH_incremental.json.
//
//   bench_incremental_update [--series N] [--length N] [--delta N]
//                            [--seed S] [--quick] [--cold] [--synthetic]
//                            [--json BENCH_incremental.json]
//                            [--trace trace.json]
//
// The delta is a *continuation* of the corpus: each block generates
// base+delta series and the tail becomes the appendix, modelling new series
// of the same kind arriving — the regime AppendSeries is designed for.
// --cold disables the warm start (the race explores from scratch over the
// grown dataset) to isolate how much of the speedup the elites contribute.
//
// Two corpus modes:
//  * default: three generator categories (Climate/Water/Power — the
//    high-intra-correlation ones, so the partition is stable under growth).
//    At the default 500-series scale the clustering is robust and the two
//    engines agree on effectively every label.
//  * --synthetic (implied by --quick): three hand-built blocks (two sine
//    families -> trmf, linear ramps -> linear_interp) with near-1
//    intra-block correlation and binary recursive splits, so the partition
//    and the per-cluster winners are decisive even on a tiny corpus. CI
//    gates on this mode's agreement; near-tie noise would make the
//    generator corpus flaky at CI scale.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "data/generators.h"

namespace adarts::bench {
namespace {

struct Config {
  std::size_t series = 500;
  std::size_t length = 192;
  std::size_t delta = 1;
  std::uint64_t seed = 17;
  bool warm_start = true;
  bool synthetic = false;
};

/// One series of the synthetic three-block corpus: two sine families (the
/// matrix-factorization imputers win) and a linear-ramp family
/// (linear_interp reconstructs it exactly through any gap).
ts::TimeSeries MakeBlockSeries(int block, std::size_t idx, std::size_t length,
                               Rng* rng) {
  la::Vector v(length);
  for (std::size_t t = 0; t < length; ++t) {
    const double tt = static_cast<double>(t);
    double x = 0.0;
    if (block == 0) {
      x = std::sin(2.0 * M_PI * tt / 24.0 + 0.05 * static_cast<double>(idx));
    } else if (block == 1) {
      x = std::sin(2.0 * M_PI * tt / 8.0 + 0.05 * static_cast<double>(idx));
    } else {
      x = (1.0 + 0.1 * static_cast<double>(idx)) * tt /
          static_cast<double>(length) * 4.0;
    }
    v[t] = x + rng->Normal(0, 0.03);
  }
  return ts::TimeSeries(std::move(v));
}

/// Builds corpus + delta as one draw: per block, the first `base_per`
/// series form the corpus and the next ones the delta (continuation).
void BuildCorpusAndDelta(const Config& config,
                         std::vector<ts::TimeSeries>* corpus,
                         std::vector<ts::TimeSeries>* delta) {
  const std::size_t base_per = (config.series + 2) / 3;
  const std::size_t extra_per = (config.delta + 2) / 3;
  if (config.synthetic) {
    Rng rng(config.seed);
    for (int b = 0; b < 3; ++b) {
      for (std::size_t i = 0; i < base_per + extra_per; ++i) {
        auto s = MakeBlockSeries(b, i, config.length, &rng);
        if (i < base_per) {
          if (corpus->size() < config.series) corpus->push_back(std::move(s));
        } else if (delta->size() < config.delta) {
          delta->push_back(std::move(s));
        }
      }
    }
    return;
  }
  const data::Category categories[] = {data::Category::kClimate,
                                       data::Category::kWater,
                                       data::Category::kPower};
  for (std::size_t c = 0; c < 3; ++c) {
    data::GeneratorOptions opts;
    opts.num_series = base_per + extra_per;
    opts.length = config.length;
    opts.seed = config.seed + c;
    auto block = data::GenerateCategory(categories[c], opts);
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (i < base_per) {
        if (corpus->size() < config.series) {
          corpus->push_back(std::move(block[i]));
        }
      } else if (delta->size() < config.delta) {
        delta->push_back(std::move(block[i]));
      }
    }
  }
}

/// Training arms share this configuration so the speedup isolates the
/// pipeline difference (assignment + warm race vs clustering + labeling +
/// cold race), not a knob change. The race is small enough that the
/// 500-series control arm finishes in minutes on one core.
TrainOptions BenchTrainOptions(const Config& config) {
  TrainOptions options;
  options.seed = config.seed;
  options.race.num_seed_pipelines = 12;
  options.race.num_partial_sets = 2;
  options.race.num_folds = 2;
  options.race.seed = 11;
  // Extra representatives per cluster make near-tie winners decisive, so
  // the agreement metric measures the pipeline difference, not mask noise.
  options.labeling.representatives_per_cluster = 4;
  // Binary recursive splits: the clustering converges to the corpus's
  // natural blocks instead of slicing it into a size-dependent number of
  // sub-clusters, keeping the partition comparable across the two arms.
  options.clustering.split_fraction = 0.01;
  if (config.synthetic) {
    // A pool with one decisive winner per block family.
    options.labeling.algorithms = {
        impute::Algorithm::kTrmf, impute::Algorithm::kTkcm,
        impute::Algorithm::kLinearInterp, impute::Algorithm::kMeanImpute};
  } else {
    options.labeling.algorithms = BenchPool();
  }
  return options;
}

int Run(const Config& config, const BenchJsonWriter& writer) {
  std::vector<ts::TimeSeries> corpus;
  std::vector<ts::TimeSeries> delta;
  BuildCorpusAndDelta(config, &corpus, &delta);
  std::vector<ts::TimeSeries> grown = corpus;
  grown.insert(grown.end(), delta.begin(), delta.end());

  const TrainOptions train_options = BenchTrainOptions(config);

  std::printf("training base engine on %zu series (length %zu, %s)...\n",
              corpus.size(), config.length,
              config.synthetic ? "synthetic blocks" : "generator categories");
  Stopwatch base_watch;
  auto engine = Adarts::Train(corpus, train_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "base train failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  const double base_seconds = base_watch.ElapsedSeconds();
  std::printf("  base train: %.2fs, %zu clusters\n", base_seconds,
              engine->growth_state().clusters.size());

  UpdateOptions update_options;
  update_options.seed = config.seed + 1;
  update_options.warm_start = config.warm_start;

  std::printf("appending %zu series (%s race)...\n", delta.size(),
              config.warm_start ? "warm-started" : "cold");
  Stopwatch append_watch;
  if (auto st = engine->AppendSeries(delta, update_options); !st.ok()) {
    std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double append_seconds = append_watch.ElapsedSeconds();

  std::printf("full retrain on %zu series (control arm)...\n", grown.size());
  Stopwatch retrain_watch;
  auto control = Adarts::Train(grown, train_options);
  if (!control.ok()) {
    std::fprintf(stderr, "control retrain failed: %s\n",
                 control.status().ToString().c_str());
    return 1;
  }
  const double retrain_seconds = retrain_watch.ElapsedSeconds();

  // Both engines' training rows follow corpus order (original first, delta
  // last), so labels compare position-wise.
  const std::vector<int>& incremental = engine->training_data().labels;
  const std::vector<int>& retrained = control->training_data().labels;
  std::size_t matches = 0;
  const std::size_t rows = incremental.size();
  if (rows != retrained.size()) {
    std::fprintf(stderr, "row count mismatch: append %zu vs retrain %zu\n",
                 rows, retrained.size());
    return 1;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    if (incremental[i] == retrained[i]) ++matches;
  }
  const double agreement =
      rows > 0 ? static_cast<double>(matches) / static_cast<double>(rows)
               : 0.0;
  const double speedup =
      append_seconds > 0.0 ? retrain_seconds / append_seconds : 0.0;

  const auto& counters = engine->train_report().stages.counters;
  const auto counter = [&](const char* name) -> double {
    const auto it = counters.find(name);
    return it != counters.end() ? static_cast<double>(it->second) : 0.0;
  };

  std::printf("\n  append:    %8.3fs  (%g assigned, %g splits, %g warm "
              "elites survived)\n",
              append_seconds, counter("update.assigned"),
              counter("update.splits"), counter("update.race_warm_hits"));
  std::printf("  retrain:   %8.3fs\n", retrain_seconds);
  std::printf("  speedup:   %8.2fx\n", speedup);
  std::printf("  agreement: %8.1f%% (%zu/%zu labels)\n", 100.0 * agreement,
              matches, rows);

  const std::vector<std::pair<std::string, std::string>> params = {
      {"series", std::to_string(config.series)},
      {"delta", std::to_string(config.delta)},
      {"warm", config.warm_start ? "1" : "0"},
      {"synthetic", config.synthetic ? "1" : "0"}};
  writer.Record("incremental.append", params, append_seconds, agreement,
                &engine->train_report().stages,
                {{"speedup", speedup},
                 {"agreement", agreement},
                 {"assigned", counter("update.assigned")},
                 {"splits", counter("update.splits")},
                 {"race_warm_hits", counter("update.race_warm_hits")}});
  writer.Record("incremental.retrain", params, retrain_seconds, agreement);
  return 0;
}

int Main(int argc, char** argv) {
  Config config;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--cold") == 0) {
      config.warm_start = false;
    } else if (std::strcmp(argv[i], "--synthetic") == 0) {
      config.synthetic = true;
    } else if (const char* v = next("--series")) {
      config.series = std::strtoul(v, nullptr, 10);
    } else if (const char* v = next("--length")) {
      config.length = std::strtoul(v, nullptr, 10);
    } else if (const char* v = next("--delta")) {
      config.delta = std::strtoul(v, nullptr, 10);
    } else if (const char* v = next("--seed")) {
      config.seed = std::strtoull(v, nullptr, 10);
    }
  }
  if (quick) {
    // The CI grid: the synthetic stable-block corpus, small enough for
    // every push, decisive enough that agreement sits at 1.0 with margin.
    config.series = 60;
    config.delta = 8;
    config.length = 160;
    config.synthetic = true;
  }
  const BenchJsonWriter writer(JsonPathFromArgs(argc, argv));
  return Run(config, writer);
}

}  // namespace
}  // namespace adarts::bench

int main(int argc, char** argv) {
  adarts::TraceOptions trace_options;
  trace_options.path = adarts::bench::TracePathFromArgs(argc, argv);
  trace_options.enabled = !trace_options.path.empty();
  adarts::ScopedTrace trace_session(trace_options);
  return adarts::bench::Main(argc, argv);
}
