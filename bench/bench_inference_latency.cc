// Section VII-D claim check (google-benchmark): a trained A-DARTS engine's
// recommendation is "almost instantaneous" — feature extraction plus a
// committee vote per faulty series. BM_RecommendBatch adds the set-wise
// story: one RecommendBatch call amortises dispatch over many series and
// sweeps the inference pool size (batch x threads).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "adarts/adarts.h"
#include "bench/bench_util.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "data/generators.h"
#include "ts/missing.h"

namespace adarts {
namespace {

/// --threads N: pool size used while training the shared engine (0 =
/// hardware concurrency). Inference itself is single-threaded by design —
/// the claim under test is per-series recommendation latency.
std::size_t g_train_threads = 0;

/// Wall-clock of the shared engine's one-time training, for the `--json`
/// record (the per-stage breakdown comes from the engine's TrainReport).
double g_train_seconds = 0.0;

/// A process-lifetime engine trained once and shared by all benchmarks
/// (training itself is benchmarked separately in the figure benches).
const Adarts& SharedEngine() {
  static const Adarts& engine = []() -> const Adarts& {
    data::GeneratorOptions gopts;
    gopts.num_series = 12;
    gopts.length = 160;
    std::vector<ts::TimeSeries> corpus;
    for (data::Category c : {data::Category::kClimate, data::Category::kPower,
                             data::Category::kMotion}) {
      for (auto& s : data::GenerateCategory(c, gopts)) {
        corpus.push_back(std::move(s));
      }
    }
    TrainOptions opts;
    opts.labeling.algorithms = {
        impute::Algorithm::kCdRec, impute::Algorithm::kSvdImpute,
        impute::Algorithm::kTkcm, impute::Algorithm::kLinearInterp};
    opts.race.num_seed_pipelines = 12;
    opts.race.num_partial_sets = 2;
    opts.race.num_folds = 2;
    ExecContext ctx(g_train_threads);
    Stopwatch watch;
    auto engine_result = Adarts::Train(corpus, opts, ctx);
    g_train_seconds = watch.ElapsedSeconds();
    ADARTS_CHECK(engine_result.ok());
    return *new Adarts(std::move(*engine_result));
  }();
  return engine;
}

ts::TimeSeries FaultySeries(std::size_t length) {
  data::GeneratorOptions gopts;
  gopts.num_series = 1;
  gopts.length = length;
  gopts.seed = 55;
  ts::TimeSeries s = data::GenerateCategory(data::Category::kClimate, gopts)[0];
  Rng rng(5);
  (void)ts::InjectSingleBlock(length / 10, &rng, &s);
  return s;
}

std::vector<ts::TimeSeries> FaultyBatch(std::size_t count, std::size_t length) {
  data::GeneratorOptions gopts;
  gopts.num_series = count;
  gopts.length = length;
  gopts.seed = 56;
  auto batch = data::GenerateCategory(data::Category::kClimate, gopts);
  Rng rng(6);
  for (auto& s : batch) {
    (void)ts::InjectSingleBlock(length / 10, &rng, &s);
  }
  return batch;
}

void BM_Recommend(benchmark::State& state) {
  const Adarts& engine = SharedEngine();
  const ts::TimeSeries faulty =
      FaultySeries(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto algo = engine.Recommend(faulty);
    benchmark::DoNotOptimize(algo);
  }
}
BENCHMARK(BM_Recommend)->Arg(160)->Arg(320)->Arg(640);

void BM_RecommendRanked(benchmark::State& state) {
  const Adarts& engine = SharedEngine();
  const ts::TimeSeries faulty = FaultySeries(160);
  for (auto _ : state) {
    auto ranking = engine.RecommendRanked(faulty);
    benchmark::DoNotOptimize(ranking);
  }
}
BENCHMARK(BM_RecommendRanked);

void BM_FeatureExtractionShare(benchmark::State& state) {
  const Adarts& engine = SharedEngine();
  const ts::TimeSeries faulty = FaultySeries(160);
  for (auto _ : state) {
    auto f = engine.ExtractFeatures(faulty);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_FeatureExtractionShare);

void BM_RecommendBatch(benchmark::State& state) {
  const Adarts& engine = SharedEngine();
  const std::vector<ts::TimeSeries> batch =
      FaultyBatch(static_cast<std::size_t>(state.range(0)), 160);
  // One context for the whole timing loop: the pool is built once, every
  // iteration reuses it (what a serving process would do).
  ExecContext ctx(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto recs = engine.RecommendBatch(batch, {}, ctx);
    benchmark::DoNotOptimize(recs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RecommendBatch)
    ->ArgNames({"batch", "threads"})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({128, 1})
    ->Args({128, 4});

void BM_EndToEndRepair(benchmark::State& state) {
  const Adarts& engine = SharedEngine();
  const ts::TimeSeries faulty = FaultySeries(160);
  for (auto _ : state) {
    auto repaired = engine.Repair(faulty);
    benchmark::DoNotOptimize(repaired);
  }
}
BENCHMARK(BM_EndToEndRepair);

}  // namespace
}  // namespace adarts

int main(int argc, char** argv) {
  // Strip our --threads/--json/--trace flags before google-benchmark sees
  // them.
  const std::string json_path = adarts::bench::JsonPathFromArgs(argc, argv);
  adarts::TraceOptions trace_options;
  trace_options.path = adarts::bench::TracePathFromArgs(argc, argv);
  trace_options.enabled = !trace_options.path.empty();
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      adarts::g_train_threads =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      adarts::g_train_threads =
          static_cast<std::size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;  // value consumed by JsonPathFromArgs above
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      // consumed by JsonPathFromArgs above
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      ++i;  // value consumed by TracePathFromArgs above
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      // consumed by TracePathFromArgs above
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  // Spans from the shared-engine training and every timed repair/recommend
  // land in one timeline, exported when `trace_session` dies at return.
  adarts::ScopedTrace trace_session(trace_options);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) {
    // Where the shared engine's one-time training cost went, from its
    // TrainReport — the committee size doubles as the result checksum.
    const adarts::Adarts& engine = adarts::SharedEngine();
    const adarts::bench::BenchJsonWriter json(json_path);
    json.Record("inference_latency.shared_engine_train",
                {{"threads", std::to_string(adarts::g_train_threads)}},
                adarts::g_train_seconds,
                static_cast<double>(engine.committee_size()),
                &engine.train_report().stages);
  }
  return 0;
}
