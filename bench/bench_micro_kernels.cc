// Micro-benchmarks (google-benchmark) of the numeric kernels underlying the
// imputation algorithms and the feature extractor. `--json <path>` mirrors
// every per-iteration run into the repo-wide BenchJsonWriter JSONL format so
// tools/bench_compare can gate kernel regressions against
// bench/baselines/BENCH_kernels.json like any other bench.

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "features/feature_extractor.h"
#include "impute/cdrec.h"
#include "impute/imputer.h"
#include "la/decompositions.h"
#include "la/matrix.h"
#include "tda/delay_embedding.h"
#include "tda/persistence.h"
#include "ts/correlation.h"
#include "ts/fft.h"
#include "ts/missing.h"

namespace adarts {
namespace {

la::Matrix RandomMatrix(std::size_t rows, std::size_t cols) {
  Rng rng(1);
  la::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.Normal(0, 1);
  }
  return m;
}

la::Vector SineSignal(std::size_t n) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 24.0);
  }
  return v;
}

void BM_JacobiSvd(benchmark::State& state) {
  const la::Matrix m =
      RandomMatrix(static_cast<std::size_t>(state.range(0)),
                   static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto svd = la::ComputeSvd(m);
    benchmark::DoNotOptimize(svd);
  }
}
BENCHMARK(BM_JacobiSvd)->Args({128, 16})->Args({256, 32})->Args({64, 64});

void BM_CentroidDecomposition(benchmark::State& state) {
  const la::Matrix m =
      RandomMatrix(static_cast<std::size_t>(state.range(0)), 16);
  for (auto _ : state) {
    auto cd = impute::ComputeCentroidDecomposition(m, 3);
    benchmark::DoNotOptimize(cd);
  }
}
BENCHMARK(BM_CentroidDecomposition)->Arg(128)->Arg(512);

void BM_Fft(benchmark::State& state) {
  const la::Vector signal = SineSignal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto spec = ts::PowerSpectrum(signal);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_NccAllLags(benchmark::State& state) {
  const la::Vector a = SineSignal(static_cast<std::size_t>(state.range(0)));
  const la::Vector b = SineSignal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto ncc = ts::NccAllLags(a, b);
    benchmark::DoNotOptimize(ncc);
  }
}
BENCHMARK(BM_NccAllLags)->Arg(128)->Arg(512);

void BM_RipsPersistence(benchmark::State& state) {
  const la::Vector signal = SineSignal(256);
  auto cloud = tda::DelayEmbed(signal, 3, 4);
  const tda::PointCloud landmarks = tda::MaxMinLandmarks(
      *cloud, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto diagram = tda::ComputeRipsPersistence(landmarks);
    benchmark::DoNotOptimize(diagram);
  }
}
BENCHMARK(BM_RipsPersistence)->Arg(16)->Arg(24)->Arg(32);

void BM_FeatureExtraction(benchmark::State& state) {
  const features::FeatureExtractor extractor{
      features::FeatureExtractorOptions{}};
  const ts::TimeSeries series(SineSignal(
      static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto f = extractor.Extract(series);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(128)->Arg(256)->Arg(512);

void BM_Imputer(benchmark::State& state) {
  const auto algo = static_cast<impute::Algorithm>(state.range(0));
  const auto imputer = impute::CreateImputer(algo);
  std::vector<ts::TimeSeries> set;
  Rng rng(3);
  for (int s = 0; s < 8; ++s) {
    la::Vector v = SineSignal(192);
    for (double& x : v) x += rng.Normal(0, 0.05);
    ts::TimeSeries series(std::move(v));
    (void)ts::InjectSingleBlock(19, &rng, &series);
    set.push_back(std::move(series));
  }
  for (auto _ : state) {
    auto repaired = imputer->ImputeSet(set);
    benchmark::DoNotOptimize(repaired);
  }
  state.SetLabel(std::string(impute::AlgorithmToString(algo)));
}
BENCHMARK(BM_Imputer)->DenseRange(0, impute::kNumAlgorithms - 1);

}  // namespace
}  // namespace adarts

namespace {

/// Console output as usual, plus one BenchJsonWriter record per completed
/// run. `seconds` is the per-iteration real time; the checksum slot is 0
/// (kernel benches measure time, not result quality).
class JsonBridgeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonBridgeReporter(adarts::bench::BenchJsonWriter writer)
      : writer_(std::move(writer)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    if (!writer_.enabled()) return;
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double seconds =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      writer_.Record("kernels." + run.benchmark_name(), {}, seconds, 0.0);
    }
  }

 private:
  adarts::bench::BenchJsonWriter writer_;
};

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark rejects flags it does not recognise, so --json is
  // peeled out of argv before Initialize sees it.
  const std::string json_path = adarts::bench::JsonPathFromArgs(argc, argv);
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      ++i;  // skip the path operand too
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) continue;
    filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  filtered.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, filtered.data())) {
    return 1;
  }
  JsonBridgeReporter reporter{adarts::bench::BenchJsonWriter(json_path)};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
