// Table I reproduction: qualitative capability matrix of the compared model
// selection techniques, as implemented in this repository.

#include <cstdio>

int main() {
  std::printf("=== Table I: Comparison of model-selection techniques ===\n\n");
  std::printf("%-12s %-10s | %-8s %-9s %-8s | %-10s %-8s\n", "Technique",
              "LowRes", "multi", "multiple", "multiple", "feature",
              "feature");
  std::printf("%-12s %-10s | %-8s %-9s %-8s | %-10s %-8s\n", "", "",
              "models", "instances", "winners", "extract", "scaling");
  for (int i = 0; i < 78; ++i) std::putchar('-');
  std::putchar('\n');
  std::printf("%-12s %-10s | %-8s %-9s %-8s | %-10s %-8s\n", "FLAML", "yes",
              "yes", "no", "no", "(ext)", "no");
  std::printf("%-12s %-10s | %-8s %-9s %-8s | %-10s %-8s\n", "Tune", "yes",
              "no", "no", "no", "(ext)", "no");
  std::printf("%-12s %-10s | %-8s %-9s %-8s | %-10s %-8s\n", "AutoFolio",
              "yes", "no", "no", "no", "(ext)", "no");
  std::printf("%-12s %-10s | %-8s %-9s %-8s | %-10s %-8s\n", "RAHA", "no",
              "yes", "(ext)", "no", "yes", "no");
  std::printf("%-12s %-10s | %-8s %-9s %-8s | %-10s %-8s\n", "A-DARTS",
              "yes", "yes", "yes", "yes", "yes", "yes");
  std::printf("\n(ext) = requires a non-trivial extension; the -lite "
              "reimplementations in src/baselines/ are fed A-DARTS's "
              "extracted features.\n");
  return 0;
}
