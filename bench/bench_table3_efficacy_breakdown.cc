// Table III reproduction: Accuracy / Precision / Recall / F1 / MRR of
// A-DARTS and the four baselines, per dataset category. Expected shape:
// A-DARTS wins every category, with the largest gaps on the
// high-variability categories (Water, Lightning); only A-DARTS and RAHA
// report MRR.

#include <cstdio>

#include "bench/bench_util.h"

namespace adarts::bench {
namespace {

void PrintRow(const char* system, const SystemScores& s) {
  std::printf("  %-12s %6s %6s %6s %6s %8s\n", system, Fmt(s.accuracy).c_str(),
              Fmt(s.precision).c_str(), Fmt(s.recall).c_str(),
              Fmt(s.f1).c_str(), s.has_mrr ? Fmt(s.mrr).c_str() : "-");
}

int Run() {
  std::printf(
      "=== Table III: Efficacy comparison of the recommendation per dataset "
      "===\n\n");

  ExperimentOptions opts;
  opts.variants = 3;  // one per structural mode of each category generator
  opts.series_per_variant = 44;

  automl::ModelRaceOptions race;
  race.num_seed_pipelines = 36;
  race.num_partial_sets = 4;
  race.num_folds = 3;
  constexpr int kRaceRepeats = 3;

  double adarts_f1_total = 0.0;
  double best_baseline_f1_total = 0.0;
  double adarts_mrr_total = 0.0;
  double raha_mrr_total = 0.0;
  int categories_won = 0;
  int categories = 0;

  for (data::Category c : data::AllCategories()) {
    auto exp = BuildCategoryExperiment(c, opts);
    if (!exp.ok()) {
      std::printf("%s: experiment failed: %s\n",
                  std::string(data::CategoryToString(c)).c_str(),
                  exp.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", std::string(data::CategoryToString(c)).c_str());
    std::printf("  %-12s %6s %6s %6s %6s %8s\n", "System", "A", "P", "R",
                "F1", "MRR");
    PrintRule(52);

    baselines::BaselineOptions bopts;
    bopts.num_configurations = 24;
    double best_baseline_f1 = 0.0;
    double raha_mrr = 0.0;

    const auto run_baseline = [&](const char* name,
                                  std::unique_ptr<baselines::ModelSelector>
                                      selector) {
      auto scores = EvaluateBaseline(selector.get(), *exp);
      if (!scores.ok()) {
        std::printf("  %-12s failed: %s\n", name,
                    scores.status().ToString().c_str());
        return;
      }
      PrintRow(name, *scores);
      best_baseline_f1 = std::max(best_baseline_f1, scores->f1);
      if (scores->has_mrr) raha_mrr = scores->mrr;
    };
    run_baseline("RAHA", baselines::CreateRahaLite(bopts));
    run_baseline("AutoFolio", baselines::CreateAutoFolioLite(bopts));
    run_baseline("Tune", baselines::CreateTuneLite(bopts));
    run_baseline("FLAML", baselines::CreateFlamlLite(bopts));

    auto adarts_scores = EvaluateAdartsAveraged(*exp, race, kRaceRepeats);
    if (!adarts_scores.ok()) {
      std::printf("  A-DARTS failed: %s\n",
                  adarts_scores.status().ToString().c_str());
      continue;
    }
    PrintRow("A-DARTS", *adarts_scores);
    std::printf("\n");

    ++categories;
    adarts_f1_total += adarts_scores->f1;
    best_baseline_f1_total += best_baseline_f1;
    adarts_mrr_total += adarts_scores->mrr;
    raha_mrr_total += raha_mrr;
    if (adarts_scores->f1 >= best_baseline_f1) ++categories_won;
  }

  if (categories > 0) {
    PrintRule(52);
    std::printf("Categories where A-DARTS matches or beats every baseline: "
                "%d / %d\n",
                categories_won, categories);
    std::printf("Average F1: A-DARTS %s vs best-baseline-per-category %s\n",
                Fmt(adarts_f1_total / categories).c_str(),
                Fmt(best_baseline_f1_total / categories).c_str());
    std::printf("Average MRR: A-DARTS %s vs RAHA %s "
                "(paper: 0.87 vs 0.68)\n",
                Fmt(adarts_mrr_total / categories).c_str(),
                Fmt(raha_mrr_total / categories).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace adarts::bench

int main() { return adarts::bench::Run(); }
