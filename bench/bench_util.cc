#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "cluster/incremental.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "labeling/labeler.h"
#include "ml/metrics.h"
#include "ts/missing.h"

namespace adarts::bench {

std::vector<impute::Algorithm> BenchPool() {
  // One representative per behavioural family (matrix completion, linear
  // dynamics, temporal factorization, multi-view blending, pattern
  // matching, cross-series regression, local interpolation): distinct
  // enough that each category has decisive winners.
  return {impute::Algorithm::kCdRec, impute::Algorithm::kDynaMmo,
          impute::Algorithm::kTrmf,  impute::Algorithm::kStMvl,
          impute::Algorithm::kTkcm,  impute::Algorithm::kIim,
          impute::Algorithm::kLinearInterp};
}

Result<CategoryExperiment> BuildCategoryExperiment(
    data::Category category, const ExperimentOptions& options,
    const features::FeatureExtractorOptions& feature_options) {
  CategoryExperiment experiment;
  experiment.pool = BenchPool();

  labeling::LabelingOptions lopts;
  lopts.algorithms = experiment.pool;
  lopts.missing_fraction = options.missing_fraction;
  lopts.seed = options.seed;
  // Averaging over more representatives makes near-tie cluster winners
  // decisive, which is what keeps the labels learnable.
  lopts.representatives_per_cluster = 4;

  const features::FeatureExtractor extractor(feature_options);
  ml::Dataset labeled;
  labeled.num_classes = static_cast<int>(experiment.pool.size());

  Rng rng(options.seed);
  for (std::size_t v = 0; v < options.variants; ++v) {
    data::GeneratorOptions gopts;
    gopts.num_series = options.series_per_variant;
    gopts.length = options.length;
    gopts.variant = static_cast<int>(v);
    gopts.seed = options.seed;
    const std::vector<ts::TimeSeries> corpus =
        data::GenerateCategory(category, gopts);

    lopts.seed = options.seed + v * 131;
    // Labels are produced the way the paper produces its training data:
    // cluster the variant's series and label whole clusters at once via
    // their representatives (Section VI). Cluster-level labels are the
    // ground truth of the efficacy experiments.
    cluster::IncrementalOptions copts;
    copts.correlation_threshold = 0.8;
    copts.seed = options.seed + v;
    ADARTS_ASSIGN_OR_RETURN(cluster::Clustering clustering,
                            cluster::IncrementalClustering(corpus, copts));
    ADARTS_ASSIGN_OR_RETURN(
        labeling::LabelingResult labels,
        labeling::LabelByClusters(corpus, clustering, lopts));
    // Features come from masked copies: inference-time series are faulty.
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      ts::TimeSeries masked = corpus[i];
      ADARTS_RETURN_NOT_OK(ts::InjectPattern(ts::MissingPattern::kSingleBlock,
                                             options.missing_fraction, &rng,
                                             &masked));
      ADARTS_ASSIGN_OR_RETURN(la::Vector f, extractor.Extract(masked));
      labeled.features.push_back(std::move(f));
      labeled.labels.push_back(labels.labels[i]);
    }
  }

  ADARTS_ASSIGN_OR_RETURN(
      ml::TrainTestSplit split,
      ml::StratifiedSplit(labeled, options.train_fraction, &rng));
  experiment.train = std::move(split.train);
  experiment.test = std::move(split.test);
  return experiment;
}

namespace {

Result<SystemScores> ScoreProbas(const ml::Dataset& test,
                                 const std::vector<la::Vector>& probas,
                                 bool has_mrr, double train_seconds) {
  std::vector<int> preds(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    preds[i] = static_cast<int>(
        std::max_element(probas[i].begin(), probas[i].end()) -
        probas[i].begin());
  }
  ADARTS_ASSIGN_OR_RETURN(
      ml::ClassificationReport report,
      ml::ComputeClassificationReport(test.labels, preds, test.num_classes));
  SystemScores scores;
  scores.accuracy = report.accuracy;
  scores.precision = report.precision;
  scores.recall = report.recall;
  scores.f1 = report.f1;
  scores.train_seconds = train_seconds;
  scores.has_mrr = has_mrr;
  if (has_mrr) {
    ADARTS_ASSIGN_OR_RETURN(scores.mrr,
                            ml::MeanReciprocalRank(test.labels, probas));
  }
  return scores;
}

}  // namespace

Result<SystemScores> EvaluateAdarts(const CategoryExperiment& experiment,
                                    const automl::ModelRaceOptions& race,
                                    std::size_t num_threads) {
  Stopwatch watch;
  ExecContext ctx(num_threads);
  ADARTS_ASSIGN_OR_RETURN(
      Adarts engine,
      Adarts::TrainFromLabeled(experiment.train, experiment.pool, {}, race,
                               race.seed, ctx));
  const double train_seconds = watch.ElapsedSeconds();
  std::vector<la::Vector> probas;
  probas.reserve(experiment.test.size());
  for (const auto& f : experiment.test.features) {
    probas.push_back(engine.PredictProba(f));
  }
  ADARTS_ASSIGN_OR_RETURN(
      SystemScores scores,
      ScoreProbas(experiment.test, probas, /*has_mrr=*/true, train_seconds));
  scores.train_stages = engine.train_report().stages;
  return scores;
}

Result<SystemScores> EvaluateAdartsAveraged(
    const CategoryExperiment& experiment, const automl::ModelRaceOptions& race,
    int repeats, std::size_t num_threads) {
  SystemScores mean;
  int runs = 0;
  for (int r = 0; r < repeats; ++r) {
    automl::ModelRaceOptions seeded = race;
    seeded.seed = race.seed + static_cast<std::uint64_t>(r) * 1013;
    auto scores = EvaluateAdarts(experiment, seeded, num_threads);
    if (!scores.ok()) continue;
    mean.accuracy += scores->accuracy;
    mean.precision += scores->precision;
    mean.recall += scores->recall;
    mean.f1 += scores->f1;
    mean.mrr += scores->mrr;
    mean.train_seconds += scores->train_seconds;
    mean.train_stages = std::move(scores->train_stages);
    ++runs;
  }
  if (runs == 0) return Status::Internal("every A-DARTS run failed");
  const double n = static_cast<double>(runs);
  mean.accuracy /= n;
  mean.precision /= n;
  mean.recall /= n;
  mean.f1 /= n;
  mean.mrr /= n;
  mean.train_seconds /= n;
  mean.has_mrr = true;
  return mean;
}

Result<SystemScores> EvaluateBaseline(baselines::ModelSelector* selector,
                                      const CategoryExperiment& experiment) {
  Stopwatch watch;
  ADARTS_RETURN_NOT_OK(selector->Train(experiment.train));
  const double train_seconds = watch.ElapsedSeconds();
  std::vector<la::Vector> probas;
  probas.reserve(experiment.test.size());
  for (const auto& f : experiment.test.features) {
    probas.push_back(selector->PredictProba(f));
  }
  return ScoreProbas(experiment.test, probas, selector->SupportsRanking(),
                     train_seconds);
}

double MeanOf(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDevOf(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = MeanOf(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

std::string Fmt(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void BenchJsonWriter::Record(
    const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& params,
    double seconds, double checksum, const StageMetrics* stages,
    const std::vector<std::pair<std::string, double>>& metrics) const {
  if (path_.empty()) return;
  std::string line = "{\"bench\":\"" + JsonEscape(bench) + "\",\"params\":{";
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += JsonEscape(key);
    line += "\":\"";
    line += JsonEscape(value);
    line += '"';
  }
  line += "},\"seconds\":" + Fmt(seconds, 6) +
          ",\"checksum\":" + Fmt(checksum, 6);
  if (!metrics.empty()) {
    line += ",\"metrics\":{";
    first = true;
    for (const auto& [key, value] : metrics) {
      if (!first) line += ',';
      first = false;
      line += '"';
      line += JsonEscape(key);
      line += "\":";
      line += Fmt(value, 6);
    }
    line += "}";
  }
  if (stages != nullptr && !stages->empty()) {
    line += ",\"stages\":" + stages->ToJson();
  }
  line += "}\n";
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "bench json: cannot open %s for append\n",
                 path_.c_str());
    return;
  }
  std::fputs(line.c_str(), f);
  std::fclose(f);
}

std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return argv[i] + 7;
    }
  }
  return "";
}

std::string TracePathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      return argv[i] + 8;
    }
  }
  return "";
}

}  // namespace adarts::bench
