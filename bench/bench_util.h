#ifndef ADARTS_BENCH_BENCH_UTIL_H_
#define ADARTS_BENCH_BENCH_UTIL_H_

#include <string>
#include <utility>
#include <vector>

#include "adarts/adarts.h"
#include "baselines/baselines.h"
#include "common/metrics.h"
#include "data/generators.h"
#include "ml/dataset.h"

namespace adarts::bench {

/// The default algorithm pool used by the paper-reproduction benches: a
/// diverse subset of the registry (matrix-completion, pattern, regression
/// and smoothing families all represented) so that different categories
/// genuinely have different winners.
std::vector<impute::Algorithm> BenchPool();

/// Knobs for building one category's labeled experiment.
struct ExperimentOptions {
  std::size_t variants = 4;            ///< datasets per category
  std::size_t series_per_variant = 30;
  std::size_t length = 192;
  double missing_fraction = 0.1;
  double train_fraction = 0.65;        ///< the paper's 65/35 holdout
  std::uint64_t seed = 7;
};

/// A labeled train/test experiment for one dataset category: ground-truth
/// labels from the exhaustive imputation bench, features extracted from
/// masked copies.
struct CategoryExperiment {
  ml::Dataset train;
  ml::Dataset test;
  std::vector<impute::Algorithm> pool;
};

/// Builds the experiment for `category` (generation + labeling + feature
/// extraction + stratified holdout).
Result<CategoryExperiment> BuildCategoryExperiment(
    data::Category category, const ExperimentOptions& options,
    const features::FeatureExtractorOptions& feature_options = {});

/// One system's evaluation on a category experiment.
struct SystemScores {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double mrr = 0.0;
  bool has_mrr = false;
  double train_seconds = 0.0;
  /// For A-DARTS runs: the training `ExecContext`'s StageMetrics snapshot
  /// (where the train_seconds went, race counters); empty for baselines.
  StageMetrics train_stages;
};

/// Trains A-DARTS (ModelRace + soft voting) on the experiment's train side
/// and scores it on the test side. Training runs on an `ExecContext` with
/// `num_threads` workers (0 = hardware concurrency); the context's stage
/// metrics land in `SystemScores::train_stages`.
Result<SystemScores> EvaluateAdarts(const CategoryExperiment& experiment,
                                    const automl::ModelRaceOptions& race,
                                    std::size_t num_threads = 0);

/// EvaluateAdarts averaged over `repeats` race seeds (race selection is
/// stochastic; reported numbers are means over repeated runs).
/// `train_stages` carries the last successful run's snapshot.
Result<SystemScores> EvaluateAdartsAveraged(
    const CategoryExperiment& experiment, const automl::ModelRaceOptions& race,
    int repeats, std::size_t num_threads = 0);

/// Trains one baseline selector and scores it.
Result<SystemScores> EvaluateBaseline(baselines::ModelSelector* selector,
                                      const CategoryExperiment& experiment);

/// Mean / sample standard deviation of a vector.
double MeanOf(const std::vector<double>& v);
double StdDevOf(const std::vector<double>& v);

/// Fixed-width cell printing helpers for the table output.
void PrintRule(int width);
std::string Fmt(double v, int precision = 2);

/// Machine-readable bench output: one JSON object per measurement, appended
/// as a line to the `--json <path>` file so repeated runs and several
/// benches can share one log. Record format:
///
///   {"bench":"fig8.selection_time","params":{"pipelines":"24"},
///    "seconds":1.234567,"checksum":0.873000,
///    "metrics":{"win_rate":0.80,"rmse_best":0.41},
///    "stages":{"counters":{...},"spans_seconds":{...}}}
///
/// `checksum` is a bench-chosen result digest (an F1, a correlation, a
/// cluster count...) that makes regressions in *results* — not just in
/// runtime — diffable across commits. `metrics` carries any named result
/// numbers beyond the single digest (tools/bench_compare gates on them
/// direction-aware); `stages` is present when the bench passes the run's
/// StageMetrics snapshot.
class BenchJsonWriter {
 public:
  /// An empty path disables the writer; `Record` becomes a no-op.
  explicit BenchJsonWriter(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  void Record(const std::string& bench,
              const std::vector<std::pair<std::string, std::string>>& params,
              double seconds, double checksum,
              const StageMetrics* stages = nullptr,
              const std::vector<std::pair<std::string, double>>& metrics = {})
      const;

 private:
  std::string path_;
};

/// Scans argv for `--json <path>` / `--json=<path>`; empty when absent.
std::string JsonPathFromArgs(int argc, char** argv);

/// Scans argv for `--trace <path>` / `--trace=<path>`; empty when absent.
/// Benches wrap their run in a `ScopedTrace` built from this path so the
/// whole measurement exports one Chrome trace-event timeline.
std::string TracePathFromArgs(int argc, char** argv);

}  // namespace adarts::bench

#endif  // ADARTS_BENCH_BENCH_UTIL_H_
