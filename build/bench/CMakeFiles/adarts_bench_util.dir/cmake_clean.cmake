file(REMOVE_RECURSE
  "CMakeFiles/adarts_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/adarts_bench_util.dir/bench_util.cc.o.d"
  "libadarts_bench_util.a"
  "libadarts_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
