file(REMOVE_RECURSE
  "libadarts_bench_util.a"
)
