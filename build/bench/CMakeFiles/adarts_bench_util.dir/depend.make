# Empty dependencies file for adarts_bench_util.
# This may be replaced when dependencies are built.
