# Empty dependencies file for bench_fig10_score_function.
# This may be replaced when dependencies are built.
