file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_clustering.dir/bench_fig11_clustering.cc.o"
  "CMakeFiles/bench_fig11_clustering.dir/bench_fig11_clustering.cc.o.d"
  "bench_fig11_clustering"
  "bench_fig11_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
