file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_downstream_forecasting.dir/bench_fig12_downstream_forecasting.cc.o"
  "CMakeFiles/bench_fig12_downstream_forecasting.dir/bench_fig12_downstream_forecasting.cc.o.d"
  "bench_fig12_downstream_forecasting"
  "bench_fig12_downstream_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_downstream_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
