# Empty dependencies file for bench_fig12_downstream_forecasting.
# This may be replaced when dependencies are built.
