file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_classifier_instability.dir/bench_fig1_classifier_instability.cc.o"
  "CMakeFiles/bench_fig1_classifier_instability.dir/bench_fig1_classifier_instability.cc.o.d"
  "bench_fig1_classifier_instability"
  "bench_fig1_classifier_instability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_classifier_instability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
