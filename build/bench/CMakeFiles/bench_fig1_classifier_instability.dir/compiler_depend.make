# Empty compiler generated dependencies file for bench_fig1_classifier_instability.
# This may be replaced when dependencies are built.
