# Empty compiler generated dependencies file for bench_fig6_feature_coverage.
# This may be replaced when dependencies are built.
