file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_average_efficacy.dir/bench_fig7_average_efficacy.cc.o"
  "CMakeFiles/bench_fig7_average_efficacy.dir/bench_fig7_average_efficacy.cc.o.d"
  "bench_fig7_average_efficacy"
  "bench_fig7_average_efficacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_average_efficacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
