# Empty compiler generated dependencies file for bench_fig7_average_efficacy.
# This may be replaced when dependencies are built.
