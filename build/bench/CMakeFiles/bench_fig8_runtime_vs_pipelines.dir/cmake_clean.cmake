file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_runtime_vs_pipelines.dir/bench_fig8_runtime_vs_pipelines.cc.o"
  "CMakeFiles/bench_fig8_runtime_vs_pipelines.dir/bench_fig8_runtime_vs_pipelines.cc.o.d"
  "bench_fig8_runtime_vs_pipelines"
  "bench_fig8_runtime_vs_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_runtime_vs_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
