# Empty dependencies file for bench_fig8_runtime_vs_pipelines.
# This may be replaced when dependencies are built.
