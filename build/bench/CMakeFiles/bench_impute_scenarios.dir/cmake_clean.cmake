file(REMOVE_RECURSE
  "CMakeFiles/bench_impute_scenarios.dir/bench_impute_scenarios.cc.o"
  "CMakeFiles/bench_impute_scenarios.dir/bench_impute_scenarios.cc.o.d"
  "bench_impute_scenarios"
  "bench_impute_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impute_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
