# Empty compiler generated dependencies file for bench_impute_scenarios.
# This may be replaced when dependencies are built.
