file(REMOVE_RECURSE
  "CMakeFiles/bench_inference_latency.dir/bench_inference_latency.cc.o"
  "CMakeFiles/bench_inference_latency.dir/bench_inference_latency.cc.o.d"
  "bench_inference_latency"
  "bench_inference_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inference_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
