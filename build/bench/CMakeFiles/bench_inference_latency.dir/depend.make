# Empty dependencies file for bench_inference_latency.
# This may be replaced when dependencies are built.
