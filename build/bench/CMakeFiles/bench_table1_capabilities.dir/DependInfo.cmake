
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_capabilities.cc" "bench/CMakeFiles/bench_table1_capabilities.dir/bench_table1_capabilities.cc.o" "gcc" "bench/CMakeFiles/bench_table1_capabilities.dir/bench_table1_capabilities.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/adarts_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/adarts/CMakeFiles/adarts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/automl/CMakeFiles/adarts_automl.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/adarts_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/adarts_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/impute/CMakeFiles/adarts_impute.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/adarts_features.dir/DependInfo.cmake"
  "/root/repo/build/src/tda/CMakeFiles/adarts_tda.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/adarts_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/adarts_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adarts_data.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/adarts_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/adarts_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/adarts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adarts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
