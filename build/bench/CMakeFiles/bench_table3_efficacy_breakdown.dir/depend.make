# Empty dependencies file for bench_table3_efficacy_breakdown.
# This may be replaced when dependencies are built.
