file(REMOVE_RECURSE
  "CMakeFiles/feature_explorer.dir/feature_explorer.cpp.o"
  "CMakeFiles/feature_explorer.dir/feature_explorer.cpp.o.d"
  "feature_explorer"
  "feature_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
