file(REMOVE_RECURSE
  "CMakeFiles/forecasting_pipeline.dir/forecasting_pipeline.cpp.o"
  "CMakeFiles/forecasting_pipeline.dir/forecasting_pipeline.cpp.o.d"
  "forecasting_pipeline"
  "forecasting_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecasting_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
