# Empty compiler generated dependencies file for forecasting_pipeline.
# This may be replaced when dependencies are built.
