file(REMOVE_RECURSE
  "CMakeFiles/adarts_core.dir/adarts.cc.o"
  "CMakeFiles/adarts_core.dir/adarts.cc.o.d"
  "CMakeFiles/adarts_core.dir/serialization.cc.o"
  "CMakeFiles/adarts_core.dir/serialization.cc.o.d"
  "libadarts_core.a"
  "libadarts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
