file(REMOVE_RECURSE
  "libadarts_core.a"
)
