# Empty compiler generated dependencies file for adarts_core.
# This may be replaced when dependencies are built.
