
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automl/model_race.cc" "src/automl/CMakeFiles/adarts_automl.dir/model_race.cc.o" "gcc" "src/automl/CMakeFiles/adarts_automl.dir/model_race.cc.o.d"
  "/root/repo/src/automl/pipeline.cc" "src/automl/CMakeFiles/adarts_automl.dir/pipeline.cc.o" "gcc" "src/automl/CMakeFiles/adarts_automl.dir/pipeline.cc.o.d"
  "/root/repo/src/automl/recommender.cc" "src/automl/CMakeFiles/adarts_automl.dir/recommender.cc.o" "gcc" "src/automl/CMakeFiles/adarts_automl.dir/recommender.cc.o.d"
  "/root/repo/src/automl/synthesizer.cc" "src/automl/CMakeFiles/adarts_automl.dir/synthesizer.cc.o" "gcc" "src/automl/CMakeFiles/adarts_automl.dir/synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/adarts_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/adarts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adarts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
