file(REMOVE_RECURSE
  "CMakeFiles/adarts_automl.dir/model_race.cc.o"
  "CMakeFiles/adarts_automl.dir/model_race.cc.o.d"
  "CMakeFiles/adarts_automl.dir/pipeline.cc.o"
  "CMakeFiles/adarts_automl.dir/pipeline.cc.o.d"
  "CMakeFiles/adarts_automl.dir/recommender.cc.o"
  "CMakeFiles/adarts_automl.dir/recommender.cc.o.d"
  "CMakeFiles/adarts_automl.dir/synthesizer.cc.o"
  "CMakeFiles/adarts_automl.dir/synthesizer.cc.o.d"
  "libadarts_automl.a"
  "libadarts_automl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_automl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
