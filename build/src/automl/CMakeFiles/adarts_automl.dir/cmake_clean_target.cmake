file(REMOVE_RECURSE
  "libadarts_automl.a"
)
