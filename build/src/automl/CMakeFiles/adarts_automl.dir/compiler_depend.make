# Empty compiler generated dependencies file for adarts_automl.
# This may be replaced when dependencies are built.
