
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/autofolio_lite.cc" "src/baselines/CMakeFiles/adarts_baselines.dir/autofolio_lite.cc.o" "gcc" "src/baselines/CMakeFiles/adarts_baselines.dir/autofolio_lite.cc.o.d"
  "/root/repo/src/baselines/baselines.cc" "src/baselines/CMakeFiles/adarts_baselines.dir/baselines.cc.o" "gcc" "src/baselines/CMakeFiles/adarts_baselines.dir/baselines.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/adarts_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/adarts_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/flaml_lite.cc" "src/baselines/CMakeFiles/adarts_baselines.dir/flaml_lite.cc.o" "gcc" "src/baselines/CMakeFiles/adarts_baselines.dir/flaml_lite.cc.o.d"
  "/root/repo/src/baselines/raha_lite.cc" "src/baselines/CMakeFiles/adarts_baselines.dir/raha_lite.cc.o" "gcc" "src/baselines/CMakeFiles/adarts_baselines.dir/raha_lite.cc.o.d"
  "/root/repo/src/baselines/tune_lite.cc" "src/baselines/CMakeFiles/adarts_baselines.dir/tune_lite.cc.o" "gcc" "src/baselines/CMakeFiles/adarts_baselines.dir/tune_lite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/adarts_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/adarts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adarts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
