file(REMOVE_RECURSE
  "CMakeFiles/adarts_baselines.dir/autofolio_lite.cc.o"
  "CMakeFiles/adarts_baselines.dir/autofolio_lite.cc.o.d"
  "CMakeFiles/adarts_baselines.dir/baselines.cc.o"
  "CMakeFiles/adarts_baselines.dir/baselines.cc.o.d"
  "CMakeFiles/adarts_baselines.dir/common.cc.o"
  "CMakeFiles/adarts_baselines.dir/common.cc.o.d"
  "CMakeFiles/adarts_baselines.dir/flaml_lite.cc.o"
  "CMakeFiles/adarts_baselines.dir/flaml_lite.cc.o.d"
  "CMakeFiles/adarts_baselines.dir/raha_lite.cc.o"
  "CMakeFiles/adarts_baselines.dir/raha_lite.cc.o.d"
  "CMakeFiles/adarts_baselines.dir/tune_lite.cc.o"
  "CMakeFiles/adarts_baselines.dir/tune_lite.cc.o.d"
  "libadarts_baselines.a"
  "libadarts_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
