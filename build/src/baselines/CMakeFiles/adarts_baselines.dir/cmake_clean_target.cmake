file(REMOVE_RECURSE
  "libadarts_baselines.a"
)
