# Empty compiler generated dependencies file for adarts_baselines.
# This may be replaced when dependencies are built.
