
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/clustering.cc" "src/cluster/CMakeFiles/adarts_cluster.dir/clustering.cc.o" "gcc" "src/cluster/CMakeFiles/adarts_cluster.dir/clustering.cc.o.d"
  "/root/repo/src/cluster/incremental.cc" "src/cluster/CMakeFiles/adarts_cluster.dir/incremental.cc.o" "gcc" "src/cluster/CMakeFiles/adarts_cluster.dir/incremental.cc.o.d"
  "/root/repo/src/cluster/kshape.cc" "src/cluster/CMakeFiles/adarts_cluster.dir/kshape.cc.o" "gcc" "src/cluster/CMakeFiles/adarts_cluster.dir/kshape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/adarts_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/adarts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adarts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
