file(REMOVE_RECURSE
  "CMakeFiles/adarts_cluster.dir/clustering.cc.o"
  "CMakeFiles/adarts_cluster.dir/clustering.cc.o.d"
  "CMakeFiles/adarts_cluster.dir/incremental.cc.o"
  "CMakeFiles/adarts_cluster.dir/incremental.cc.o.d"
  "CMakeFiles/adarts_cluster.dir/kshape.cc.o"
  "CMakeFiles/adarts_cluster.dir/kshape.cc.o.d"
  "libadarts_cluster.a"
  "libadarts_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
