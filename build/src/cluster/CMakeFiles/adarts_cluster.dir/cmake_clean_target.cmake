file(REMOVE_RECURSE
  "libadarts_cluster.a"
)
