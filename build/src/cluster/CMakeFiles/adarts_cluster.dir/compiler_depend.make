# Empty compiler generated dependencies file for adarts_cluster.
# This may be replaced when dependencies are built.
