file(REMOVE_RECURSE
  "CMakeFiles/adarts_common.dir/rng.cc.o"
  "CMakeFiles/adarts_common.dir/rng.cc.o.d"
  "CMakeFiles/adarts_common.dir/status.cc.o"
  "CMakeFiles/adarts_common.dir/status.cc.o.d"
  "libadarts_common.a"
  "libadarts_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
