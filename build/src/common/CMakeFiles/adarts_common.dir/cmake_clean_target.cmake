file(REMOVE_RECURSE
  "libadarts_common.a"
)
