# Empty compiler generated dependencies file for adarts_common.
# This may be replaced when dependencies are built.
