file(REMOVE_RECURSE
  "CMakeFiles/adarts_data.dir/forecast_data.cc.o"
  "CMakeFiles/adarts_data.dir/forecast_data.cc.o.d"
  "CMakeFiles/adarts_data.dir/generators.cc.o"
  "CMakeFiles/adarts_data.dir/generators.cc.o.d"
  "libadarts_data.a"
  "libadarts_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
