file(REMOVE_RECURSE
  "libadarts_data.a"
)
