# Empty compiler generated dependencies file for adarts_data.
# This may be replaced when dependencies are built.
