file(REMOVE_RECURSE
  "CMakeFiles/adarts_features.dir/coverage.cc.o"
  "CMakeFiles/adarts_features.dir/coverage.cc.o.d"
  "CMakeFiles/adarts_features.dir/feature_extractor.cc.o"
  "CMakeFiles/adarts_features.dir/feature_extractor.cc.o.d"
  "libadarts_features.a"
  "libadarts_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
