file(REMOVE_RECURSE
  "libadarts_features.a"
)
