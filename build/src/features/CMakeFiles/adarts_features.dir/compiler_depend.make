# Empty compiler generated dependencies file for adarts_features.
# This may be replaced when dependencies are built.
