file(REMOVE_RECURSE
  "CMakeFiles/adarts_forecast.dir/forecaster.cc.o"
  "CMakeFiles/adarts_forecast.dir/forecaster.cc.o.d"
  "libadarts_forecast.a"
  "libadarts_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
