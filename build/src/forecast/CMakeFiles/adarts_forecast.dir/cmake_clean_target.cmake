file(REMOVE_RECURSE
  "libadarts_forecast.a"
)
