# Empty compiler generated dependencies file for adarts_forecast.
# This may be replaced when dependencies are built.
