
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impute/cdrec.cc" "src/impute/CMakeFiles/adarts_impute.dir/cdrec.cc.o" "gcc" "src/impute/CMakeFiles/adarts_impute.dir/cdrec.cc.o.d"
  "/root/repo/src/impute/factorization.cc" "src/impute/CMakeFiles/adarts_impute.dir/factorization.cc.o" "gcc" "src/impute/CMakeFiles/adarts_impute.dir/factorization.cc.o.d"
  "/root/repo/src/impute/imputer.cc" "src/impute/CMakeFiles/adarts_impute.dir/imputer.cc.o" "gcc" "src/impute/CMakeFiles/adarts_impute.dir/imputer.cc.o.d"
  "/root/repo/src/impute/masked_matrix.cc" "src/impute/CMakeFiles/adarts_impute.dir/masked_matrix.cc.o" "gcc" "src/impute/CMakeFiles/adarts_impute.dir/masked_matrix.cc.o.d"
  "/root/repo/src/impute/pattern.cc" "src/impute/CMakeFiles/adarts_impute.dir/pattern.cc.o" "gcc" "src/impute/CMakeFiles/adarts_impute.dir/pattern.cc.o.d"
  "/root/repo/src/impute/simple.cc" "src/impute/CMakeFiles/adarts_impute.dir/simple.cc.o" "gcc" "src/impute/CMakeFiles/adarts_impute.dir/simple.cc.o.d"
  "/root/repo/src/impute/subspace.cc" "src/impute/CMakeFiles/adarts_impute.dir/subspace.cc.o" "gcc" "src/impute/CMakeFiles/adarts_impute.dir/subspace.cc.o.d"
  "/root/repo/src/impute/svd_family.cc" "src/impute/CMakeFiles/adarts_impute.dir/svd_family.cc.o" "gcc" "src/impute/CMakeFiles/adarts_impute.dir/svd_family.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/adarts_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/adarts_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/adarts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adarts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tda/CMakeFiles/adarts_tda.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
