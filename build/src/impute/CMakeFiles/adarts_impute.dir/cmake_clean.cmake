file(REMOVE_RECURSE
  "CMakeFiles/adarts_impute.dir/cdrec.cc.o"
  "CMakeFiles/adarts_impute.dir/cdrec.cc.o.d"
  "CMakeFiles/adarts_impute.dir/factorization.cc.o"
  "CMakeFiles/adarts_impute.dir/factorization.cc.o.d"
  "CMakeFiles/adarts_impute.dir/imputer.cc.o"
  "CMakeFiles/adarts_impute.dir/imputer.cc.o.d"
  "CMakeFiles/adarts_impute.dir/masked_matrix.cc.o"
  "CMakeFiles/adarts_impute.dir/masked_matrix.cc.o.d"
  "CMakeFiles/adarts_impute.dir/pattern.cc.o"
  "CMakeFiles/adarts_impute.dir/pattern.cc.o.d"
  "CMakeFiles/adarts_impute.dir/simple.cc.o"
  "CMakeFiles/adarts_impute.dir/simple.cc.o.d"
  "CMakeFiles/adarts_impute.dir/subspace.cc.o"
  "CMakeFiles/adarts_impute.dir/subspace.cc.o.d"
  "CMakeFiles/adarts_impute.dir/svd_family.cc.o"
  "CMakeFiles/adarts_impute.dir/svd_family.cc.o.d"
  "libadarts_impute.a"
  "libadarts_impute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_impute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
