file(REMOVE_RECURSE
  "libadarts_impute.a"
)
