# Empty compiler generated dependencies file for adarts_impute.
# This may be replaced when dependencies are built.
