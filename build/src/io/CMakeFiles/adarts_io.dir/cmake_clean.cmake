file(REMOVE_RECURSE
  "CMakeFiles/adarts_io.dir/csv.cc.o"
  "CMakeFiles/adarts_io.dir/csv.cc.o.d"
  "libadarts_io.a"
  "libadarts_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
