file(REMOVE_RECURSE
  "libadarts_io.a"
)
