# Empty dependencies file for adarts_io.
# This may be replaced when dependencies are built.
