file(REMOVE_RECURSE
  "CMakeFiles/adarts_la.dir/decompositions.cc.o"
  "CMakeFiles/adarts_la.dir/decompositions.cc.o.d"
  "CMakeFiles/adarts_la.dir/matrix.cc.o"
  "CMakeFiles/adarts_la.dir/matrix.cc.o.d"
  "CMakeFiles/adarts_la.dir/pca.cc.o"
  "CMakeFiles/adarts_la.dir/pca.cc.o.d"
  "CMakeFiles/adarts_la.dir/vector_ops.cc.o"
  "CMakeFiles/adarts_la.dir/vector_ops.cc.o.d"
  "libadarts_la.a"
  "libadarts_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
