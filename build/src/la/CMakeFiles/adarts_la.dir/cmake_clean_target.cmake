file(REMOVE_RECURSE
  "libadarts_la.a"
)
