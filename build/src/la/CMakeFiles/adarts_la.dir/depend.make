# Empty dependencies file for adarts_la.
# This may be replaced when dependencies are built.
