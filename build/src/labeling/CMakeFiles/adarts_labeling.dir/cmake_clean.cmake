file(REMOVE_RECURSE
  "CMakeFiles/adarts_labeling.dir/labeler.cc.o"
  "CMakeFiles/adarts_labeling.dir/labeler.cc.o.d"
  "libadarts_labeling.a"
  "libadarts_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
