file(REMOVE_RECURSE
  "libadarts_labeling.a"
)
