# Empty compiler generated dependencies file for adarts_labeling.
# This may be replaced when dependencies are built.
