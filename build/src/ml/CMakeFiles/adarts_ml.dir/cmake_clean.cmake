file(REMOVE_RECURSE
  "CMakeFiles/adarts_ml.dir/classifier.cc.o"
  "CMakeFiles/adarts_ml.dir/classifier.cc.o.d"
  "CMakeFiles/adarts_ml.dir/classifiers.cc.o"
  "CMakeFiles/adarts_ml.dir/classifiers.cc.o.d"
  "CMakeFiles/adarts_ml.dir/dataset.cc.o"
  "CMakeFiles/adarts_ml.dir/dataset.cc.o.d"
  "CMakeFiles/adarts_ml.dir/metrics.cc.o"
  "CMakeFiles/adarts_ml.dir/metrics.cc.o.d"
  "CMakeFiles/adarts_ml.dir/scaler.cc.o"
  "CMakeFiles/adarts_ml.dir/scaler.cc.o.d"
  "CMakeFiles/adarts_ml.dir/tree.cc.o"
  "CMakeFiles/adarts_ml.dir/tree.cc.o.d"
  "libadarts_ml.a"
  "libadarts_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
