file(REMOVE_RECURSE
  "libadarts_ml.a"
)
