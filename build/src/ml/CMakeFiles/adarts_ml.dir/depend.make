# Empty dependencies file for adarts_ml.
# This may be replaced when dependencies are built.
