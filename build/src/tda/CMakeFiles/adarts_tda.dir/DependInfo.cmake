
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tda/delay_embedding.cc" "src/tda/CMakeFiles/adarts_tda.dir/delay_embedding.cc.o" "gcc" "src/tda/CMakeFiles/adarts_tda.dir/delay_embedding.cc.o.d"
  "/root/repo/src/tda/diagram_stats.cc" "src/tda/CMakeFiles/adarts_tda.dir/diagram_stats.cc.o" "gcc" "src/tda/CMakeFiles/adarts_tda.dir/diagram_stats.cc.o.d"
  "/root/repo/src/tda/persistence.cc" "src/tda/CMakeFiles/adarts_tda.dir/persistence.cc.o" "gcc" "src/tda/CMakeFiles/adarts_tda.dir/persistence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/adarts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adarts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
