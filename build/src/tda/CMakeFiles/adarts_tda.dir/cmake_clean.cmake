file(REMOVE_RECURSE
  "CMakeFiles/adarts_tda.dir/delay_embedding.cc.o"
  "CMakeFiles/adarts_tda.dir/delay_embedding.cc.o.d"
  "CMakeFiles/adarts_tda.dir/diagram_stats.cc.o"
  "CMakeFiles/adarts_tda.dir/diagram_stats.cc.o.d"
  "CMakeFiles/adarts_tda.dir/persistence.cc.o"
  "CMakeFiles/adarts_tda.dir/persistence.cc.o.d"
  "libadarts_tda.a"
  "libadarts_tda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_tda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
