file(REMOVE_RECURSE
  "libadarts_tda.a"
)
