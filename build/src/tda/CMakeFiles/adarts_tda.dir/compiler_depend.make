# Empty compiler generated dependencies file for adarts_tda.
# This may be replaced when dependencies are built.
