
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/acf.cc" "src/ts/CMakeFiles/adarts_ts.dir/acf.cc.o" "gcc" "src/ts/CMakeFiles/adarts_ts.dir/acf.cc.o.d"
  "/root/repo/src/ts/correlation.cc" "src/ts/CMakeFiles/adarts_ts.dir/correlation.cc.o" "gcc" "src/ts/CMakeFiles/adarts_ts.dir/correlation.cc.o.d"
  "/root/repo/src/ts/fft.cc" "src/ts/CMakeFiles/adarts_ts.dir/fft.cc.o" "gcc" "src/ts/CMakeFiles/adarts_ts.dir/fft.cc.o.d"
  "/root/repo/src/ts/metrics.cc" "src/ts/CMakeFiles/adarts_ts.dir/metrics.cc.o" "gcc" "src/ts/CMakeFiles/adarts_ts.dir/metrics.cc.o.d"
  "/root/repo/src/ts/missing.cc" "src/ts/CMakeFiles/adarts_ts.dir/missing.cc.o" "gcc" "src/ts/CMakeFiles/adarts_ts.dir/missing.cc.o.d"
  "/root/repo/src/ts/time_series.cc" "src/ts/CMakeFiles/adarts_ts.dir/time_series.cc.o" "gcc" "src/ts/CMakeFiles/adarts_ts.dir/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/adarts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adarts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
