file(REMOVE_RECURSE
  "CMakeFiles/adarts_ts.dir/acf.cc.o"
  "CMakeFiles/adarts_ts.dir/acf.cc.o.d"
  "CMakeFiles/adarts_ts.dir/correlation.cc.o"
  "CMakeFiles/adarts_ts.dir/correlation.cc.o.d"
  "CMakeFiles/adarts_ts.dir/fft.cc.o"
  "CMakeFiles/adarts_ts.dir/fft.cc.o.d"
  "CMakeFiles/adarts_ts.dir/metrics.cc.o"
  "CMakeFiles/adarts_ts.dir/metrics.cc.o.d"
  "CMakeFiles/adarts_ts.dir/missing.cc.o"
  "CMakeFiles/adarts_ts.dir/missing.cc.o.d"
  "CMakeFiles/adarts_ts.dir/time_series.cc.o"
  "CMakeFiles/adarts_ts.dir/time_series.cc.o.d"
  "libadarts_ts.a"
  "libadarts_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
