file(REMOVE_RECURSE
  "libadarts_ts.a"
)
