# Empty compiler generated dependencies file for adarts_ts.
# This may be replaced when dependencies are built.
