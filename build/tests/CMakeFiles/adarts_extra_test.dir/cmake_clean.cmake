file(REMOVE_RECURSE
  "CMakeFiles/adarts_extra_test.dir/adarts_extra_test.cc.o"
  "CMakeFiles/adarts_extra_test.dir/adarts_extra_test.cc.o.d"
  "adarts_extra_test"
  "adarts_extra_test.pdb"
  "adarts_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
