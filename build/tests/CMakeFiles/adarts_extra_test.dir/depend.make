# Empty dependencies file for adarts_extra_test.
# This may be replaced when dependencies are built.
