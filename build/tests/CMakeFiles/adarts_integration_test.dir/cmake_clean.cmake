file(REMOVE_RECURSE
  "CMakeFiles/adarts_integration_test.dir/adarts_integration_test.cc.o"
  "CMakeFiles/adarts_integration_test.dir/adarts_integration_test.cc.o.d"
  "adarts_integration_test"
  "adarts_integration_test.pdb"
  "adarts_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
