# Empty compiler generated dependencies file for adarts_integration_test.
# This may be replaced when dependencies are built.
