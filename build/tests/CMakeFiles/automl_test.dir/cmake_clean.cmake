file(REMOVE_RECURSE
  "CMakeFiles/automl_test.dir/automl_test.cc.o"
  "CMakeFiles/automl_test.dir/automl_test.cc.o.d"
  "automl_test"
  "automl_test.pdb"
  "automl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
