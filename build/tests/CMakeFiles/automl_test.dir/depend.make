# Empty dependencies file for automl_test.
# This may be replaced when dependencies are built.
