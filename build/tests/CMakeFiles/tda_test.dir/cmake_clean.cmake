file(REMOVE_RECURSE
  "CMakeFiles/tda_test.dir/tda_test.cc.o"
  "CMakeFiles/tda_test.dir/tda_test.cc.o.d"
  "tda_test"
  "tda_test.pdb"
  "tda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
