# Empty dependencies file for tda_test.
# This may be replaced when dependencies are built.
