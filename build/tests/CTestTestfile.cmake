# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/ts_test[1]_include.cmake")
include("/root/repo/build/tests/tda_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/impute_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/labeling_test[1]_include.cmake")
include("/root/repo/build/tests/automl_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/adarts_integration_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/adarts_extra_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
