file(REMOVE_RECURSE
  "CMakeFiles/adarts_cli.dir/adarts_cli.cc.o"
  "CMakeFiles/adarts_cli.dir/adarts_cli.cc.o.d"
  "adarts_cli"
  "adarts_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adarts_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
