# Empty compiler generated dependencies file for adarts_cli.
# This may be replaced when dependencies are built.
