// Feature explorer: inspect what the statistical + topological extractor
// sees in different kinds of series — the signal A-DARTS's classifiers
// learn from (Section V-B).
//
//   $ ./build/examples/feature_explorer

#include <cstdio>
#include <map>

#include "common/rng.h"
#include "data/generators.h"
#include "features/feature_extractor.h"
#include "tda/delay_embedding.h"
#include "tda/diagram_stats.h"
#include "tda/persistence.h"

int main() {
  using namespace adarts;

  const features::FeatureExtractor extractor{
      features::FeatureExtractorOptions{}};
  std::printf("Extractor: %zu features\n", extractor.NumFeatures());
  std::map<std::string, int> group_counts;
  for (const auto& info : extractor.Schema()) {
    ++group_counts[features::FeatureGroupToString(info.group)];
  }
  for (const auto& [group, count] : group_counts) {
    std::printf("  %-12s %d features\n", group.c_str(), count);
  }

  // Extract for one series of each category and show the most contrasting
  // features.
  std::printf("\nPer-category feature snapshot (one series each):\n");
  const char* highlight[] = {"seasonality_strength", "spectral_entropy",
                             "trend_change_rate", "outlier_fraction_3sigma",
                             "h1_max_persistence", "h1_count"};
  std::printf("%-10s", "Category");
  for (const char* name : highlight) std::printf(" %10.10s", name);
  std::printf("\n");
  for (data::Category c : data::AllCategories()) {
    data::GeneratorOptions gen;
    gen.num_series = 1;
    gen.length = 256;
    const auto series = data::GenerateCategory(c, gen);
    auto f = extractor.Extract(series[0]);
    if (!f.ok()) continue;
    std::printf("%-10s", std::string(data::CategoryToString(c)).c_str());
    for (const char* name : highlight) {
      double value = 0.0;
      for (std::size_t i = 0; i < extractor.Schema().size(); ++i) {
        if (extractor.Schema()[i].name == name) value = (*f)[i];
      }
      std::printf(" %10.3f", value);
    }
    std::printf("\n");
  }

  // A closer look at the topological pipeline on one periodic series.
  std::printf("\nTopological pipeline walkthrough (climate series):\n");
  data::GeneratorOptions gen;
  gen.num_series = 1;
  gen.length = 256;
  const auto climate = data::GenerateCategory(data::Category::kClimate, gen);
  const la::Vector z = climate[0].ZNormalized().values();
  auto cloud = tda::DelayEmbed(z, 3, 8);
  if (cloud.ok()) {
    std::printf("  delay embedding: %zu points in R^3 (tau = 8)\n",
                cloud->size());
    const tda::PointCloud landmarks = tda::MaxMinLandmarks(*cloud, 24);
    std::printf("  landmark subsample: %zu points\n", landmarks.size());
    auto diagram = tda::ComputeRipsPersistence(landmarks);
    if (diagram.ok()) {
      const auto h0 = tda::ComputeDiagramStats(*diagram, 0);
      const auto h1 = tda::ComputeDiagramStats(*diagram, 1);
      std::printf("  H0: %.0f components, total persistence %.3f\n", h0.count,
                  h0.total_persistence);
      std::printf("  H1: %.0f loops, max persistence %.3f "
                  "(the periodic orbit shows up as a long-lived loop)\n",
                  h1.count, h1.max_persistence);
    }
  }
  return 0;
}
