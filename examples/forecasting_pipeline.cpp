// Forecasting pipeline: the downstream scenario of the paper's Section
// VII-F. A fleet of series loses its most recent 20% of observations; the
// history is repaired (with the algorithm A-DARTS recommends vs a naive
// mean fill) and a forecaster predicts the next 12 steps. Repair quality
// translates directly into forecast quality.
//
//   $ ./build/examples/forecasting_pipeline

#include <cstdio>

#include "adarts/adarts.h"
#include "data/forecast_data.h"
#include "forecast/forecaster.h"
#include "impute/imputer.h"
#include "ts/metrics.h"
#include "ts/missing.h"

namespace {

constexpr std::size_t kHistory = 240;
constexpr std::size_t kHorizon = 12;

double AvgSmape(const std::vector<adarts::ts::TimeSeries>& histories,
                const std::vector<adarts::ts::TimeSeries>& full,
                const adarts::forecast::Forecaster& forecaster) {
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < histories.size(); ++i) {
    auto pred = forecaster.Forecast(histories[i].values(), kHorizon);
    if (!pred.ok()) continue;
    adarts::la::Vector actual(kHorizon);
    for (std::size_t h = 0; h < kHorizon; ++h) {
      actual[h] = full[i].value(kHistory + h);
    }
    auto smape = adarts::ts::Smape(actual, *pred);
    if (smape.ok()) {
      total += *smape;
      ++n;
    }
  }
  return n > 0 ? total / static_cast<double>(n) : -1.0;
}

}  // namespace

int main() {
  using namespace adarts;

  std::printf("Dataset: 'Tourism' (independently shifted seasonal series)\n");
  const auto full =
      data::GenerateForecastDataset("Tourism", 10, kHistory + kHorizon, 4);
  std::vector<ts::TimeSeries> histories;
  for (const auto& s : full) {
    histories.emplace_back(la::Vector(
        s.values().begin(),
        s.values().begin() + static_cast<std::ptrdiff_t>(kHistory)));
  }

  // --- Train A-DARTS for the tip-of-series repair scenario.
  TrainOptions options;
  options.labeling.pattern = ts::MissingPattern::kTipOfSeries;
  options.labeling.missing_fraction = 0.2;
  options.labeling.representatives_per_cluster = 5;
  options.race.num_seed_pipelines = 14;
  options.race.num_partial_sets = 2;
  options.race.num_folds = 2;
  auto engine = Adarts::Train(histories, options);
  if (!engine.ok()) {
    std::printf("training failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // --- An outage hits half of the fleet's tails.
  std::vector<ts::TimeSeries> faulty = histories;
  for (std::size_t i = 0; i < faulty.size(); i += 2) {
    if (auto st = ts::InjectTipBlock(0.2, &faulty[i]); !st.ok()) {
      std::printf("mask failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("Masked the final 20%% of %zu of %zu series\n",
              (faulty.size() + 1) / 2, faulty.size());

  // --- Repair with the recommendation vs a naive mean fill.
  auto recommended = engine->Recommend(faulty[0]);
  auto smart = engine->RepairSet(faulty);
  auto naive =
      impute::CreateImputer(impute::Algorithm::kMeanImpute)->ImputeSet(faulty);
  if (!smart.ok() || !naive.ok() || !recommended.ok()) {
    std::printf("repair failed\n");
    return 1;
  }
  std::printf("A-DARTS recommends: %s\n",
              std::string(impute::AlgorithmToString(*recommended)).c_str());

  // --- Forecast the horizon from both repaired fleets.
  const auto forecaster = forecast::CreateAutoRegressive(24);
  const double smart_smape = AvgSmape(*smart, full, *forecaster);
  const double naive_smape = AvgSmape(*naive, full, *forecaster);
  const double clean_smape = AvgSmape(histories, full, *forecaster);

  std::printf("\nForecast sMAPE over a %zu-step horizon (lower is better):\n",
              kHorizon);
  std::printf("  pristine history (upper bound): %.4f\n", clean_smape);
  std::printf("  A-DARTS repair:                 %.4f\n", smart_smape);
  std::printf("  naive mean-fill repair:         %.4f\n", naive_smape);
  if (naive_smape > 0.0) {
    std::printf("  improvement over naive:         %.1f%%\n",
                100.0 * (naive_smape - smart_smape) / naive_smape);
  }
  return 0;
}
