// Quickstart: train an A-DARTS engine on a small corpus, then repair a new
// faulty series with the recommended imputation algorithm.
//
//   $ ./build/examples/quickstart
//   $ ./build/examples/quickstart --trace trace.json   # + profiling timeline
//
// The optional --trace flag records every engine stage (clustering, labeling,
// ModelRace fold evaluations, committee refits, per-series recommendations)
// into a Chrome trace-event JSON you can open in chrome://tracing or
// ui.perfetto.dev, or summarize with tools/trace_stats.

#include <cstdio>
#include <cstring>

#include "adarts/adarts.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "common/trace.h"
#include "data/generators.h"
#include "ts/metrics.h"
#include "ts/missing.h"

int main(int argc, char** argv) {
  using namespace adarts;

  TraceOptions trace_options;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_options.path = argv[i + 1];
      trace_options.enabled = true;
    }
  }
  ScopedTrace trace_session(trace_options);

  // --- 1. A training corpus: complete series from a few domains. In a real
  // deployment this is your historical, gap-free sensor data.
  std::printf("Generating training corpus...\n");
  data::GeneratorOptions gen;
  gen.num_series = 16;
  gen.length = 192;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c : {data::Category::kClimate, data::Category::kPower,
                           data::Category::kMedical}) {
    for (auto& s : data::GenerateCategory(c, gen)) {
      corpus.push_back(std::move(s));
    }
  }
  std::printf("  %zu series of length %zu\n", corpus.size(), gen.length);

  // --- 2. Train: clustering -> cluster-level labeling -> feature
  // extraction -> ModelRace -> soft-voting committee. One call, one
  // ExecContext: the context owns the shared worker pool (0 = hardware
  // concurrency), carries an optional cancellation deadline, and collects
  // per-stage metrics as the run goes.
  std::printf("Training the recommendation engine (one-time step)...\n");
  TrainOptions options;
  options.race.num_seed_pipelines = 16;
  options.race.num_partial_sets = 2;
  ExecContext ctx;
  auto engine = Adarts::Train(corpus, options, ctx);
  if (!engine.ok()) {
    std::printf("training failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("  committee of %zu winning pipelines over a pool of %zu "
              "imputation algorithms\n",
              engine->committee_size(), engine->algorithm_pool().size());

  // Where the training time went, from the run's StageMetrics snapshot.
  const StageMetrics& stages = engine->train_report().stages;
  std::printf("  stages: labeling %.2fs, features %.2fs, race %.2fs "
              "(%llu pipelines evaluated), committee %.2fs\n",
              stages.SpanSeconds("train.labeling_seconds"),
              stages.SpanSeconds("train.features_seconds"),
              stages.SpanSeconds("train.race_seconds"),
              static_cast<unsigned long long>(
                  stages.Counter("race.pipelines_evaluated")),
              stages.SpanSeconds("train.committee_seconds"));

  // --- 3. A new faulty series arrives (here: a fresh climate series with a
  // sensor outage we injected ourselves so we can score the repair).
  gen.num_series = 1;
  gen.seed = 2024;
  ts::TimeSeries faulty =
      data::GenerateCategory(data::Category::kClimate, gen)[0];
  Rng rng(7);
  if (auto st = ts::InjectSingleBlock(20, &rng, &faulty); !st.ok()) {
    std::printf("mask injection failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nNew faulty series: %zu values, %zu missing\n",
              faulty.length(), faulty.MissingCount());

  // --- 4. Ask for a recommendation, then repair.
  auto ranking = engine->RecommendRanked(faulty);
  if (!ranking.ok()) {
    std::printf("recommendation failed: %s\n",
                ranking.status().ToString().c_str());
    return 1;
  }
  std::printf("Recommended algorithms (best first):");
  for (std::size_t i = 0; i < 3 && i < ranking->size(); ++i) {
    std::printf(" %s", std::string(impute::AlgorithmToString((*ranking)[i])).c_str());
  }
  std::printf(" ...\n");

  auto repaired = engine->Repair(faulty);
  if (!repaired.ok()) {
    std::printf("repair failed: %s\n", repaired.status().ToString().c_str());
    return 1;
  }
  auto rmse = ts::ImputationRmse(faulty, *repaired);
  std::printf("Repaired: all gaps filled, RMSE vs hidden truth = %.4f\n",
              rmse.ok() ? *rmse : -1.0);

  // Latency distributions the run accumulated (p50/p99 per span family).
  const StageMetrics run_metrics = ctx.metrics().Snapshot();
  for (const auto& [name, h] : run_metrics.histograms) {
    std::printf("  %-18s count=%llu p50=%.3fms p99=%.3fms max=%.3fms\n",
                name.c_str(), static_cast<unsigned long long>(h.count),
                static_cast<double>(h.p50_ns) / 1e6,
                static_cast<double>(h.p99_ns) / 1e6,
                static_cast<double>(h.max_ns) / 1e6);
  }
  if (trace_session.active()) {
    std::printf("Trace timeline written to %s (open in ui.perfetto.dev or "
                "summarize with trace_stats)\n",
                trace_options.path.c_str());
  }
  return 0;
}
