// Quickstart: train an A-DARTS engine on a small corpus, then repair a new
// faulty series with the recommended imputation algorithm.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "adarts/adarts.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "data/generators.h"
#include "ts/metrics.h"
#include "ts/missing.h"

int main() {
  using namespace adarts;

  // --- 1. A training corpus: complete series from a few domains. In a real
  // deployment this is your historical, gap-free sensor data.
  std::printf("Generating training corpus...\n");
  data::GeneratorOptions gen;
  gen.num_series = 16;
  gen.length = 192;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c : {data::Category::kClimate, data::Category::kPower,
                           data::Category::kMedical}) {
    for (auto& s : data::GenerateCategory(c, gen)) {
      corpus.push_back(std::move(s));
    }
  }
  std::printf("  %zu series of length %zu\n", corpus.size(), gen.length);

  // --- 2. Train: clustering -> cluster-level labeling -> feature
  // extraction -> ModelRace -> soft-voting committee. One call, one
  // ExecContext: the context owns the shared worker pool (0 = hardware
  // concurrency), carries an optional cancellation deadline, and collects
  // per-stage metrics as the run goes.
  std::printf("Training the recommendation engine (one-time step)...\n");
  TrainOptions options;
  options.race.num_seed_pipelines = 16;
  options.race.num_partial_sets = 2;
  ExecContext ctx;
  auto engine = Adarts::Train(corpus, options, ctx);
  if (!engine.ok()) {
    std::printf("training failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("  committee of %zu winning pipelines over a pool of %zu "
              "imputation algorithms\n",
              engine->committee_size(), engine->algorithm_pool().size());

  // Where the training time went, from the run's StageMetrics snapshot.
  const StageMetrics& stages = engine->train_report().stages;
  std::printf("  stages: labeling %.2fs, features %.2fs, race %.2fs "
              "(%llu pipelines evaluated), committee %.2fs\n",
              stages.SpanSeconds("train.labeling_seconds"),
              stages.SpanSeconds("train.features_seconds"),
              stages.SpanSeconds("train.race_seconds"),
              static_cast<unsigned long long>(
                  stages.Counter("race.pipelines_evaluated")),
              stages.SpanSeconds("train.committee_seconds"));

  // --- 3. A new faulty series arrives (here: a fresh climate series with a
  // sensor outage we injected ourselves so we can score the repair).
  gen.num_series = 1;
  gen.seed = 2024;
  ts::TimeSeries faulty =
      data::GenerateCategory(data::Category::kClimate, gen)[0];
  Rng rng(7);
  if (auto st = ts::InjectSingleBlock(20, &rng, &faulty); !st.ok()) {
    std::printf("mask injection failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nNew faulty series: %zu values, %zu missing\n",
              faulty.length(), faulty.MissingCount());

  // --- 4. Ask for a recommendation, then repair.
  auto ranking = engine->RecommendRanked(faulty);
  if (!ranking.ok()) {
    std::printf("recommendation failed: %s\n",
                ranking.status().ToString().c_str());
    return 1;
  }
  std::printf("Recommended algorithms (best first):");
  for (std::size_t i = 0; i < 3 && i < ranking->size(); ++i) {
    std::printf(" %s", std::string(impute::AlgorithmToString((*ranking)[i])).c_str());
  }
  std::printf(" ...\n");

  auto repaired = engine->Repair(faulty);
  if (!repaired.ok()) {
    std::printf("repair failed: %s\n", repaired.status().ToString().c_str());
    return 1;
  }
  auto rmse = ts::ImputationRmse(faulty, *repaired);
  std::printf("Repaired: all gaps filled, RMSE vs hidden truth = %.4f\n",
              rmse.ok() ? *rmse : -1.0);
  return 0;
}
