// Sensor-fleet scenario: an IoT operator maintains heterogeneous fleets
// (power meters, weather stations, medical monitors). A-DARTS is trained
// once on historical data from every fleet; afterwards, outages anywhere in
// any fleet are repaired with the per-fleet best algorithm.
//
// The example also demonstrates the cost story of Section VI: cluster-level
// labeling needs far fewer imputation-benchmark runs than per-series
// labeling while producing a comparable training signal.
//
//   $ ./build/examples/sensor_fleet

#include <cstdio>
#include <map>

#include "adarts/adarts.h"
#include "cluster/incremental.h"
#include "common/rng.h"
#include "data/generators.h"
#include "labeling/labeler.h"
#include "ts/metrics.h"
#include "ts/missing.h"

int main() {
  using namespace adarts;

  // --- Historical (complete) data from three fleets.
  std::printf("== Fleet inventory ==\n");
  data::GeneratorOptions gen;
  gen.num_series = 18;
  gen.length = 192;
  std::map<std::string, std::vector<ts::TimeSeries>> fleets;
  fleets["power-meters"] = data::GenerateCategory(data::Category::kPower, gen);
  fleets["weather-stations"] =
      data::GenerateCategory(data::Category::kClimate, gen);
  fleets["icu-monitors"] = data::GenerateCategory(data::Category::kMedical, gen);

  std::vector<ts::TimeSeries> corpus;
  for (const auto& [name, series] : fleets) {
    std::printf("  %-18s %zu series\n", name.c_str(), series.size());
    corpus.insert(corpus.end(), series.begin(), series.end());
  }

  // --- Show the labeling economics before training.
  {
    cluster::IncrementalOptions copts;
    auto clustering = cluster::IncrementalClustering(corpus, copts);
    if (clustering.ok()) {
      labeling::LabelingOptions lopts;
      lopts.algorithms = {impute::Algorithm::kCdRec, impute::Algorithm::kTkcm,
                          impute::Algorithm::kIim,
                          impute::Algorithm::kLinearInterp};
      auto fast = labeling::LabelByClusters(corpus, *clustering, lopts);
      auto full = labeling::LabelSeriesFull(corpus, lopts);
      if (fast.ok() && full.ok()) {
        std::printf("\n== Labeling cost (Section VI) ==\n");
        std::printf("  %zu series -> %zu clusters\n", corpus.size(),
                    clustering->NumClusters());
        std::printf("  cluster labeling: %zu imputation runs\n",
                    fast->imputation_runs);
        std::printf("  naive per-series bench would need ~%zu runs\n",
                    corpus.size() * lopts.algorithms.size());
      }
    }
  }

  // --- Train the engine on the combined corpus.
  std::printf("\n== Training ==\n");
  TrainOptions options;
  options.labeling.algorithms = {
      impute::Algorithm::kCdRec, impute::Algorithm::kDynaMmo,
      impute::Algorithm::kStMvl, impute::Algorithm::kTkcm,
      impute::Algorithm::kIim, impute::Algorithm::kLinearInterp};
  options.race.num_seed_pipelines = 18;
  options.race.num_partial_sets = 3;
  auto engine = Adarts::Train(corpus, options);
  if (!engine.ok()) {
    std::printf("training failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("  committee: %zu pipelines\n", engine->committee_size());
  for (const auto& elite : engine->race_report().elites) {
    std::printf("    %s (mean score %.3f)\n", elite.spec.ToString().c_str(),
                elite.mean_score);
  }

  // --- Simulate outages: a block of each fleet's series loses data.
  std::printf("\n== Outage repair ==\n");
  Rng rng(99);
  for (auto& [name, series] : fleets) {
    // Mask one third of the fleet.
    std::vector<ts::TimeSeries> faulty = series;
    for (std::size_t i = 0; i < faulty.size(); i += 3) {
      if (auto st = ts::InjectSingleBlock(18, &rng, &faulty[i]); !st.ok()) {
        std::printf("mask failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    auto repaired = engine->RepairSet(faulty);
    if (!repaired.ok()) {
      std::printf("  %-18s repair failed: %s\n", name.c_str(),
                  repaired.status().ToString().c_str());
      continue;
    }
    // Score the repair on the masked series.
    double rmse_total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < faulty.size(); i += 3) {
      auto rmse = ts::ImputationRmse(faulty[i], (*repaired)[i]);
      if (rmse.ok()) {
        rmse_total += *rmse;
        ++count;
      }
    }
    auto recommendation = engine->Recommend(faulty[0]);
    std::printf("  %-18s repaired %zu series, avg RMSE %.4f, algorithm: %s\n",
                name.c_str(), count, rmse_total / count,
                recommendation.ok()
                    ? std::string(impute::AlgorithmToString(*recommendation)).c_str()
                    : "?");
  }
  return 0;
}
