#include "adarts/adarts.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "adarts/stages.h"
#include "common/cancellation.h"
#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "ts/missing.h"

namespace adarts {

Adarts::Adarts(features::FeatureExtractor extractor,
               automl::VotingRecommender recommender,
               automl::ModelRaceReport report,
               std::vector<impute::Algorithm> pool, ml::Dataset training_data)
    : extractor_(std::move(extractor)),
      recommender_(std::move(recommender)),
      race_report_(std::move(report)),
      pool_(std::move(pool)),
      training_data_(std::move(training_data)) {
  RecomputeDefaultClass();
}

void Adarts::RecomputeDefaultClass() {
  // Majority training label = the last rung of the degradation ladder. The
  // scan keeps the first (smallest) label on ties, so the choice is
  // deterministic and independent of label order.
  default_class_ = 0;
  std::vector<std::size_t> counts(pool_.size(), 0);
  for (int label : training_data_.labels) {
    if (label >= 0 && static_cast<std::size_t>(label) < counts.size()) {
      ++counts[static_cast<std::size_t>(label)];
    }
  }
  for (std::size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[static_cast<std::size_t>(default_class_)]) {
      default_class_ = static_cast<int>(c);
    }
  }
}

Result<Adarts> Adarts::Train(const std::vector<ts::TimeSeries>& corpus,
                             const TrainOptions& options) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // The pre-context API let `race.cancel` carry a token when the top-level
  // one was unset; preserve that by promoting it to the context's token.
  const CancellationToken* cancel =
      options.cancel != nullptr ? options.cancel : options.race.cancel;
  ExecContext ctx(options.num_threads, cancel);
#pragma GCC diagnostic pop
  return Train(corpus, options, ctx);
}

Result<Adarts> Adarts::Train(const std::vector<ts::TimeSeries>& corpus,
                             const TrainOptions& options, ExecContext& ctx) {
  ADARTS_FAILPOINT("adarts.train.start");
  if (corpus.size() < 8) {
    return Status::InvalidArgument("training corpus too small (< 8 series)");
  }
  // Reject poisoned inputs at the boundary: one NaN observation would
  // otherwise surface deep inside an imputer as an opaque numerical error.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    Status finite = corpus[i].ValidateObservedFinite();
    if (!finite.ok()) {
      return Status::InvalidArgument("corpus series " + std::to_string(i) +
                                     ": " + finite.message());
    }
  }
  Rng rng(options.seed);

  // Train is a thin composition of the pipeline stages (stages.h); each
  // stage runs on the context's one shared pool and consumes `rng` exactly
  // as the pre-decomposition monolith did, so the trained engine is
  // bit-identical to earlier builds.

  // --- (1) Clustering (fast path only), then labeling + feature extraction.
  ClusterStageState clusters;
  const cluster::Clustering* clustering = nullptr;
  if (options.use_cluster_labeling) {
    ADARTS_ASSIGN_OR_RETURN(clusters, ClusterStage(corpus, options, ctx));
    clustering = &clusters.clustering;
  }
  ADARTS_ASSIGN_OR_RETURN(LabelStageState labeled,
                          LabelStage(corpus, clustering, options, &rng, ctx));

  // --- (2) ModelRace over the labeled data, then the voting committee.
  ADARTS_ASSIGN_OR_RETURN(
      RaceStageState race,
      RaceStage(labeled.labeled, options.race, options.race_train_fraction,
                nullptr, &rng, ctx));
  ADARTS_ASSIGN_OR_RETURN(CommitteeStageState committee,
                          CommitteeStage(race.report, labeled.labeled, ctx));

  // --- (3) Growth bookkeeping for AppendSeries: each cluster's label and
  // representative series, plus the surviving elites that warm-start the
  // next race. Only the cluster path records it — exhaustive labeling has
  // no clusters to assign new series against.
  GrowthState growth;
  if (options.use_cluster_labeling) {
    growth.present = true;
    const auto& cluster_lists = clusters.clustering.clusters;
    growth.clusters.reserve(cluster_lists.size());
    for (std::size_t k = 0; k < cluster_lists.size(); ++k) {
      const std::vector<std::size_t>& members = cluster_lists[k];
      if (members.empty()) continue;
      ClusterGrowthState c;
      c.label = labeled.labels.labels[members[0]];
      c.member_count = members.size();
      const std::vector<std::size_t>& reps =
          labeled.labels.cluster_representatives[k];
      c.representatives.reserve(reps.size());
      for (std::size_t idx : reps) c.representatives.push_back(corpus[idx]);
      growth.clusters.push_back(std::move(c));
    }
    growth.warm_start.elites = race.report.elites;
  }

  Adarts engine(std::move(labeled.extractor), std::move(committee.recommender),
                std::move(race.report), labeled.labels.algorithms,
                std::move(labeled.labeled));
  engine.growth_ = std::move(growth);
  engine.train_report_.stages = ctx.metrics().Snapshot();
  return engine;
}

Status Adarts::AppendSeries(const std::vector<ts::TimeSeries>& delta,
                            const UpdateOptions& options) {
  ExecContext ctx;
  return AppendSeries(delta, options, ctx);
}

Status Adarts::AppendSeries(const std::vector<ts::TimeSeries>& delta,
                            const UpdateOptions& options, ExecContext& ctx) {
  ADARTS_FAILPOINT("adarts.update.start");
  if (delta.empty()) {
    return Status::InvalidArgument("AppendSeries: empty delta");
  }
  if (!growth_.present) {
    return Status::FailedPrecondition(
        "AppendSeries requires growth state: the engine must come from "
        "cluster-labeled Train (or a snapshot that persisted it), not "
        "TrainFromLabeled, exhaustive labeling, or a pre-growth snapshot");
  }
  if (!options.labeling.algorithms.empty() &&
      options.labeling.algorithms != pool_) {
    return Status::InvalidArgument(
        "AppendSeries: labeling pool must be empty (engine pool is used) or "
        "equal to the engine's pool");
  }
  labeling::LabelingOptions label_options = options.labeling;
  label_options.algorithms = pool_;

  Rng rng(options.seed);
  // Transactional: every mutation below lands on copies; the engine commits
  // only after the last fallible step, so a failed append leaves it exactly
  // as it was.
  GrowthState new_growth = growth_;

  // --- (1) Assign each new series to an existing cluster or split it off.
  // Splits append the series as a fresh singleton representative group, so
  // later delta series can join the new cluster.
  std::vector<std::vector<ts::TimeSeries>> reps;
  reps.reserve(new_growth.clusters.size());
  for (const ClusterGrowthState& c : new_growth.clusters) {
    reps.push_back(c.representatives);
  }
  const std::size_t original_clusters = reps.size();
  std::vector<int> delta_labels(delta.size(), 0);
  // Delta indices per freshly opened cluster, in creation order (cluster
  // index = original_clusters + position).
  std::vector<std::vector<std::size_t>> new_cluster_members;
  std::uint64_t assigned_count = 0;
  {
    StageTimer assign_timer(&ctx.metrics(), "update.assign_seconds");
    for (std::size_t i = 0; i < delta.size(); ++i) {
      ADARTS_FAILPOINT("adarts.update.assign");
      Result<cluster::SeriesAssignment> assignment =
          cluster::AssignSeriesToClusters(delta[i], reps, options.clustering,
                                          ctx);
      if (!assignment.ok()) {
        return Status(assignment.status().code(),
                      "AppendSeries: delta series " + std::to_string(i) +
                          ": " + assignment.status().message());
      }
      if (assignment->split) {
        new_cluster_members.push_back({i});
        reps.push_back({delta[i]});
        continue;
      }
      ++assigned_count;
      const std::size_t j = assignment->cluster;
      if (j < original_clusters) {
        delta_labels[i] = new_growth.clusters[j].label;
        ++new_growth.clusters[j].member_count;
      } else {
        // Joined a cluster opened earlier in this append; it is labeled as
        // one unit in the next phase.
        new_cluster_members[j - original_clusters].push_back(i);
      }
    }
  }

  // --- (2) Label the freshly opened clusters in isolation — the only
  // imputation benchmarking an append pays for. Assigned series inherited
  // their cluster's label at zero cost above.
  ADARTS_FAILPOINT("adarts.update.label");
  {
    StageTimer label_timer(&ctx.metrics(), "update.label_seconds");
    for (const std::vector<std::size_t>& members : new_cluster_members) {
      std::vector<ts::TimeSeries> cluster_set;
      cluster_set.reserve(members.size());
      for (std::size_t i : members) cluster_set.push_back(delta[i]);
      ADARTS_ASSIGN_OR_RETURN(
          labeling::ClusterLabel labeled,
          labeling::LabelSingleCluster(cluster_set, label_options, ctx));
      ClusterGrowthState c;
      c.label = labeled.label;
      c.member_count = members.size();
      c.representatives.reserve(labeled.representatives.size());
      for (std::size_t idx : labeled.representatives) {
        c.representatives.push_back(cluster_set[idx]);
      }
      new_growth.clusters.push_back(std::move(c));
      for (std::size_t i : members) delta_labels[i] = labeled.label;
    }
  }

  // --- (3) Features for the delta only, masked exactly like training
  // (forked Rngs in index order — bit-identical across thread counts).
  ml::Dataset grown = training_data_;
  {
    StageTimer features_timer(&ctx.metrics(), "update.features_seconds");
    std::vector<Rng> series_rngs = ExecContext::ForkRngs(&rng, delta.size());
    std::vector<la::Vector> extracted(delta.size());
    std::vector<Status> extract_status(delta.size());
    ParallelFor(ctx, delta.size(), [&](std::size_t i) {
      ts::TimeSeries masked = delta[i];
      Status injected = ts::InjectPattern(label_options.pattern,
                                          label_options.missing_fraction,
                                          &series_rngs[i], &masked);
      if (!injected.ok()) {
        extract_status[i] = std::move(injected);
        return;
      }
      Result<la::Vector> f = extractor_.Extract(masked);
      if (!f.ok()) {
        extract_status[i] = f.status();
        return;
      }
      extracted[i] = std::move(*f);
    });
    ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("AppendSeries features"));
    for (const Status& s : extract_status) {
      ADARTS_RETURN_NOT_OK(s);
    }
    for (std::size_t i = 0; i < delta.size(); ++i) {
      grown.features.push_back(std::move(extracted[i]));
      grown.labels.push_back(delta_labels[i]);
    }
  }

  // --- (4) Re-race over the grown dataset, warm-started from the engine's
  // surviving elites, then refit the committee.
  ADARTS_FAILPOINT("adarts.update.race");
  const automl::RaceWarmStart* warm =
      options.warm_start && !growth_.warm_start.empty() ? &growth_.warm_start
                                                        : nullptr;
  ADARTS_ASSIGN_OR_RETURN(
      RaceStageState race,
      RaceStage(grown, options.race, options.race_train_fraction, warm, &rng,
                ctx, "update.race_seconds"));
  std::uint64_t warm_hits = 0;
  if (warm != nullptr) {
    for (const automl::RacedPipeline& elite : race.report.elites) {
      for (const automl::RacedPipeline& seeded : warm->elites) {
        if (elite.spec.ToString() == seeded.spec.ToString()) {
          ++warm_hits;
          break;
        }
      }
    }
  }
  ADARTS_ASSIGN_OR_RETURN(CommitteeStageState committee,
                          CommitteeStage(race.report, grown, ctx));

  // --- Commit. Nothing below can fail.
  new_growth.warm_start.elites = race.report.elites;
  training_data_ = std::move(grown);
  race_report_ = std::move(race.report);
  recommender_ = std::move(committee.recommender);
  growth_ = std::move(new_growth);
  RecomputeDefaultClass();
  ++engine_version_;
  Metrics& metrics = ctx.metrics();
  metrics.Increment("update.assigned", assigned_count);
  metrics.Increment("update.splits", new_cluster_members.size());
  metrics.Increment("update.race_warm_hits", warm_hits);
  train_report_.stages = metrics.Snapshot();
  return Status::OK();
}

Result<Adarts> Adarts::TrainFromLabeled(
    const ml::Dataset& labeled, const std::vector<impute::Algorithm>& pool,
    const features::FeatureExtractorOptions& feature_options,
    const automl::ModelRaceOptions& race_options, std::uint64_t seed) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ExecContext ctx(race_options.num_threads, race_options.cancel);
#pragma GCC diagnostic pop
  return TrainFromLabeled(labeled, pool, feature_options, race_options, seed,
                          ctx);
}

Result<Adarts> Adarts::TrainFromLabeled(
    const ml::Dataset& labeled, const std::vector<impute::Algorithm>& pool,
    const features::FeatureExtractorOptions& feature_options,
    const automl::ModelRaceOptions& race_options, std::uint64_t seed,
    ExecContext& ctx) {
  ADARTS_RETURN_NOT_OK(labeled.Validate());
  if (static_cast<int>(pool.size()) != labeled.num_classes) {
    return Status::InvalidArgument("pool size != num_classes");
  }
  Rng rng(seed);
  ADARTS_ASSIGN_OR_RETURN(ml::TrainTestSplit split,
                          ml::StratifiedSplit(labeled, 0.9, &rng));
  automl::ModelRaceReport report;
  {
    StageTimer race_timer(&ctx.metrics(), "train.race_seconds");
    ADARTS_ASSIGN_OR_RETURN(
        report, automl::RunModelRace(split.train, split.test, race_options,
                                     ctx));
  }
  ADARTS_ASSIGN_OR_RETURN(
      automl::VotingRecommender recommender,
      automl::VotingRecommender::FromRace(report, labeled, ctx));
  Adarts engine(features::FeatureExtractor(feature_options),
                std::move(recommender), std::move(report), pool, labeled);
  engine.train_report_.stages = ctx.metrics().Snapshot();
  return engine;
}

Result<impute::Algorithm> Adarts::Recommend(const ts::TimeSeries& faulty) const {
  ADARTS_ASSIGN_OR_RETURN(Recommendation rec, RecommendEx(faulty));
  return rec.algorithm;
}

Result<impute::Algorithm> Adarts::Recommend(const ts::TimeSeries& faulty,
                                            ExecContext& ctx) const {
  ADARTS_ASSIGN_OR_RETURN(Recommendation rec, RecommendEx(faulty, ctx));
  return rec.algorithm;
}

Result<Recommendation> Adarts::RecommendEx(const ts::TimeSeries& faulty,
                                           ExecContext& ctx) const {
  TraceSpan span("recommend.series");
  Stopwatch latency_watch;
  ADARTS_ASSIGN_OR_RETURN(Recommendation rec, RecommendEx(faulty));
  // Fold the per-call breakdown into the context's long-lived registry, so
  // a serving loop sees request totals alongside the training spans.
  Metrics& metrics = ctx.metrics();
  metrics.histogram("recommend.latency")
      ->RecordSeconds(latency_watch.ElapsedSeconds());
  metrics.Increment("recommend.requests");
  if (rec.degradation != automl::DegradationLevel::kFullCommittee) {
    metrics.Increment("recommend.degraded");
  }
  metrics.Increment("vote.members_failed", rec.vote.members_failed);
  for (const auto& [name, seconds] : rec.stages.spans_seconds) {
    metrics.RecordSpanSeconds(name, seconds);
  }
  return rec;
}

Result<Recommendation> Adarts::RecommendEx(const ts::TimeSeries& faulty) const {
  Stopwatch extract_watch;
  ADARTS_ASSIGN_OR_RETURN(la::Vector f, extractor_.Extract(faulty));
  const double extract_seconds = extract_watch.ElapsedSeconds();
  Recommendation rec;
  Stopwatch vote_watch;
  const la::Vector p = recommender_.PredictProba(f, &rec.vote);
  const double vote_seconds = vote_watch.ElapsedSeconds();
  rec.degradation = rec.vote.level;
  rec.stages.spans_seconds["recommend.extract_seconds"] = extract_seconds;
  rec.stages.spans_seconds["recommend.vote_seconds"] = vote_seconds;
  rec.stages.counters["recommend.degradation_rung"] =
      static_cast<std::uint64_t>(rec.degradation);
  rec.stages.counters["vote.members_failed"] = rec.vote.members_failed;
  int cls;
  if (p.empty()) {
    // Every committee member failed: the last rung of the ladder is the
    // corpus-majority algorithm — degraded but valid, never a crash.
    cls = default_class_;
  } else {
    cls = static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
  }
  // The committee's class count and the pool are wired together at training
  // time, but a hand-assembled or corrupted bundle can break the invariant;
  // fail cleanly instead of indexing out of bounds.
  if (cls < 0 || static_cast<std::size_t>(cls) >= pool_.size()) {
    return Status::Internal("recommended class outside the algorithm pool");
  }
  rec.algorithm = pool_[static_cast<std::size_t>(cls)];
  return rec;
}

std::vector<Result<impute::Algorithm>> Adarts::RecommendBatchPartial(
    const std::vector<ts::TimeSeries>& batch,
    const RecommendBatchOptions& options) const {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ExecContext ctx(options.num_threads, options.cancel);
#pragma GCC diagnostic pop
  return RecommendBatchPartial(batch, options, ctx);
}

std::vector<Result<impute::Algorithm>> Adarts::RecommendBatchPartial(
    const std::vector<ts::TimeSeries>& batch,
    const RecommendBatchOptions& options, ExecContext& ctx) const {
  (void)options;  // fail_fast is RecommendBatch's concern; kept for symmetry
  // One slot per series: extraction and the committee vote are pure reads of
  // the engine, so tasks share nothing but const state. Errors land in the
  // series' own slot; the batch itself always comes back full-size.
  std::vector<Result<impute::Algorithm>> out(
      batch.size(), Result<impute::Algorithm>(
                        Status::Internal("series not evaluated")));
  if (batch.empty()) return out;
  // Counter handles are registered once up front: inside the loop every
  // increment is a relaxed atomic — lock-free on the batch hot path.
  Metrics& metrics = ctx.metrics();
  MetricCounter* requests = metrics.counter("recommend.requests");
  MetricCounter* degraded = metrics.counter("recommend.degraded");
  MetricCounter* members_failed = metrics.counter("vote.members_failed");
  LatencyHistogram* latency = metrics.histogram("recommend.latency");
  std::vector<char> done(batch.size(), 0);
  ParallelFor(ctx, batch.size(), [&](std::size_t i) {
    TraceSpan span("recommend.series");
    Stopwatch watch;
    Result<Recommendation> rec = RecommendEx(batch[i]);
    latency->RecordSeconds(watch.ElapsedSeconds());
    requests->Increment();
    if (rec.ok()) {
      if (rec->degradation != automl::DegradationLevel::kFullCommittee) {
        degraded->Increment();
      }
      members_failed->Increment(rec->vote.members_failed);
      out[i] = rec->algorithm;
    } else {
      out[i] = rec.status();
    }
    done[i] = 1;
  });
  if (ctx.cancel() != nullptr) {
    const Status cancelled = ctx.cancel()->Check("RecommendBatch");
    if (!cancelled.ok()) {
      // Slots the cancelled loop skipped report the cancellation itself,
      // not the "not evaluated" placeholder.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (done[i] == 0) out[i] = cancelled;
      }
    }
  }
  return out;
}

Result<std::vector<impute::Algorithm>> Adarts::RecommendBatch(
    const std::vector<ts::TimeSeries>& batch,
    const RecommendBatchOptions& options) const {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ExecContext ctx(options.num_threads, options.cancel);
#pragma GCC diagnostic pop
  return RecommendBatch(batch, options, ctx);
}

Result<std::vector<impute::Algorithm>> Adarts::RecommendBatch(
    const std::vector<ts::TimeSeries>& batch,
    const RecommendBatchOptions& options, ExecContext& ctx) const {
  std::vector<Result<impute::Algorithm>> partial =
      RecommendBatchPartial(batch, options, ctx);
  std::vector<impute::Algorithm> out;
  out.reserve(batch.size());
  std::size_t failures = 0;
  StatusCode first_code = StatusCode::kInternal;
  std::ostringstream failed_detail;
  for (std::size_t i = 0; i < partial.size(); ++i) {
    if (partial[i].ok()) {
      out.push_back(*partial[i]);
      continue;
    }
    ++failures;
    if (failures == 1) first_code = partial[i].status().code();
    if (options.fail_fast) {
      // Aggregate every failed index — a partial report ("first error
      // wins") used to hide the batch's real damage.
      if (failures > 1) failed_detail << "; ";
      failed_detail << "series " << i << ": " << partial[i].status().message();
    } else {
      // Degraded mode: the failed series gets the corpus-majority default.
      out.push_back(pool_[static_cast<std::size_t>(default_class_)]);
    }
  }
  if (options.fail_fast && failures > 0) {
    return Status(first_code,
                  "RecommendBatch failed for " + std::to_string(failures) +
                      " of " + std::to_string(batch.size()) + " series [" +
                      failed_detail.str() + "]");
  }
  return out;
}

Result<std::vector<impute::Algorithm>> Adarts::RecommendRanked(
    const ts::TimeSeries& faulty, ExecContext& ctx) const {
  Stopwatch latency_watch;
  ctx.metrics().Increment("recommend.requests");
  auto ranked = RecommendRanked(faulty);
  ctx.metrics()
      .histogram("recommend.latency")
      ->RecordSeconds(latency_watch.ElapsedSeconds());
  return ranked;
}

Result<std::vector<impute::Algorithm>> Adarts::RecommendRanked(
    const ts::TimeSeries& faulty) const {
  TraceSpan span("recommend.series");
  ADARTS_ASSIGN_OR_RETURN(la::Vector f, extractor_.Extract(faulty));
  std::vector<impute::Algorithm> out;
  for (int cls : recommender_.Ranking(f)) {
    if (cls < 0 || static_cast<std::size_t>(cls) >= pool_.size()) {
      return Status::Internal("ranked class outside the algorithm pool");
    }
    out.push_back(pool_[static_cast<std::size_t>(cls)]);
  }
  return out;
}

Result<ts::TimeSeries> Adarts::Repair(const ts::TimeSeries& faulty) const {
  ExecContext ctx;
  return Repair(faulty, ctx);
}

Result<ts::TimeSeries> Adarts::Repair(const ts::TimeSeries& faulty,
                                      ExecContext& ctx) const {
  if (!faulty.HasMissing()) return faulty;
  ADARTS_ASSIGN_OR_RETURN(impute::Algorithm algo, Recommend(faulty, ctx));
  Result<ts::TimeSeries> repaired = impute::CreateImputer(algo)->Impute(faulty);
  if (repaired.ok()) return repaired;
  // The recommended algorithm can still reject this particular input (rank
  // too high for the observation count, degenerate masks, an armed
  // failpoint). Degrade to linear interpolation — it accepts any series
  // with one observation — rather than failing the repair outright.
  LogWarn("repair with " + std::string(impute::AlgorithmToString(algo)) +
          " failed (" + repaired.status().message() +
          "); falling back to linear interpolation");
  ctx.metrics().Increment("repair.fallback_linear_interp");
  return impute::CreateImputer(impute::Algorithm::kLinearInterp)
      ->Impute(faulty);
}

Result<std::vector<ts::TimeSeries>> Adarts::RepairSet(
    const std::vector<ts::TimeSeries>& faulty_set,
    const RecommendBatchOptions& options) const {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ExecContext ctx(options.num_threads, options.cancel);
#pragma GCC diagnostic pop
  return RepairSet(faulty_set, options, ctx);
}

Result<std::vector<ts::TimeSeries>> Adarts::RepairSet(
    const std::vector<ts::TimeSeries>& faulty_set,
    const RecommendBatchOptions& options, ExecContext& ctx) const {
  if (faulty_set.empty()) return Status::InvalidArgument("empty set");
  // Majority vote of per-series recommendations picks the set's algorithm;
  // the recommendations come from one batched pass over the pool.
  // std::map iterates in ascending algorithm id and max_element keeps the
  // first of equal counts, so ties break deterministically toward the
  // smallest algorithm id (documented in the header).
  ADARTS_ASSIGN_OR_RETURN(std::vector<impute::Algorithm> recommendations,
                          RecommendBatch(faulty_set, options, ctx));
  std::map<int, std::size_t> votes;
  for (impute::Algorithm algo : recommendations) {
    ++votes[static_cast<int>(algo)];
  }
  const auto winner = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  const auto algo = static_cast<impute::Algorithm>(winner->first);
  impute::FitDiagnostics diagnostics;
  Result<std::vector<ts::TimeSeries>> repaired =
      impute::CreateImputer(algo)->ImputeSetWithDiagnostics(faulty_set,
                                                            &diagnostics);
  // The imputer's fit health feeds the registry so sweeps can report
  // per-site metrics instead of only pass/fail (DESIGN.md §8).
  ctx.metrics().Increment("repair.impute_iterations", diagnostics.iterations);
  if (!diagnostics.converged && diagnostics.iterations > 0) {
    ctx.metrics().Increment("repair.impute_not_converged");
  }
  if (repaired.ok()) {
    if (!diagnostics.converged && diagnostics.iterations > 0) {
      LogWarn("repair with " +
              std::string(impute::AlgorithmToString(algo)) +
              " stopped after " + std::to_string(diagnostics.iterations) +
              " iterations without converging (last change " +
              std::to_string(diagnostics.final_change) +
              "); the repaired values may be rough");
    }
    return repaired;
  }
  // Same ladder as Repair: the set's winning algorithm can fail on this
  // particular set even though it fitted during training. Linear
  // interpolation handles anything with >= 1 observed value per series.
  LogWarn("set repair with " + std::string(impute::AlgorithmToString(algo)) +
          " failed (" + repaired.status().message() +
          "); falling back to linear interpolation");
  ctx.metrics().Increment("repair.fallback_linear_interp");
  return impute::CreateImputer(impute::Algorithm::kLinearInterp)
      ->ImputeSet(faulty_set);
}

Result<la::Vector> Adarts::ExtractFeatures(const ts::TimeSeries& series) const {
  return extractor_.Extract(series);
}

}  // namespace adarts
