#include "adarts/adarts.h"

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ts/missing.h"

namespace adarts {

Result<Adarts> Adarts::Train(const std::vector<ts::TimeSeries>& corpus,
                             const TrainOptions& options) {
  if (corpus.size() < 8) {
    return Status::InvalidArgument("training corpus too small (< 8 series)");
  }
  Rng rng(options.seed);
  ThreadPool pool(options.num_threads);

  // --- (1) Labeling, via clusters (fast) or exhaustively.
  labeling::LabelingOptions labeling_options = options.labeling;
  labeling_options.num_threads = options.num_threads;
  labeling::LabelingResult labels;
  if (options.use_cluster_labeling) {
    cluster::IncrementalOptions clustering_options = options.clustering;
    clustering_options.num_threads = options.num_threads;
    ADARTS_ASSIGN_OR_RETURN(
        cluster::Clustering clustering,
        cluster::IncrementalClustering(corpus, clustering_options));
    ADARTS_ASSIGN_OR_RETURN(
        labels, labeling::LabelByClusters(corpus, clustering, labeling_options));
  } else {
    ADARTS_ASSIGN_OR_RETURN(
        labels, labeling::LabelSeriesFull(corpus, labeling_options));
  }

  // --- (2) Feature extraction from faulty copies of the corpus: inference
  // sees incomplete series, so training features must too. Each series masks
  // with its own Rng, forked up front in index order on this thread, so the
  // extracted features are bit-identical regardless of thread count.
  features::FeatureExtractor extractor(options.features);
  ml::Dataset labeled;
  labeled.num_classes = static_cast<int>(labels.algorithms.size());
  labeled.labels = labels.labels;
  labeled.features.resize(corpus.size());
  std::vector<Rng> series_rngs;
  series_rngs.reserve(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    series_rngs.push_back(rng.Fork());
  }
  std::vector<Status> extract_status(corpus.size());
  ParallelFor(&pool, corpus.size(), [&](std::size_t i) {
    ts::TimeSeries masked = corpus[i];
    Status injected = ts::InjectPattern(options.labeling.pattern,
                                        options.labeling.missing_fraction,
                                        &series_rngs[i], &masked);
    if (!injected.ok()) {
      extract_status[i] = std::move(injected);
      return;
    }
    Result<la::Vector> f = extractor.Extract(masked);
    if (!f.ok()) {
      extract_status[i] = f.status();
      return;
    }
    labeled.features[i] = std::move(*f);
  });
  for (const Status& s : extract_status) {
    ADARTS_RETURN_NOT_OK(s);
  }

  // --- (3)-(5) ModelRace over the labeled data, then the voting committee.
  automl::ModelRaceOptions race_options = options.race;
  race_options.seed = rng.NextU64();
  race_options.num_threads = options.num_threads;
  ADARTS_ASSIGN_OR_RETURN(ml::TrainTestSplit split,
                          ml::StratifiedSplit(labeled,
                                              options.race_train_fraction,
                                              &rng));
  ADARTS_ASSIGN_OR_RETURN(
      automl::ModelRaceReport report,
      automl::RunModelRace(split.train, split.test, race_options));
  ADARTS_ASSIGN_OR_RETURN(
      automl::VotingRecommender recommender,
      automl::VotingRecommender::FromRace(report, labeled, &pool));
  return Adarts(std::move(extractor), std::move(recommender), std::move(report),
                labels.algorithms, std::move(labeled));
}

Result<Adarts> Adarts::TrainFromLabeled(
    const ml::Dataset& labeled, const std::vector<impute::Algorithm>& pool,
    const features::FeatureExtractorOptions& feature_options,
    const automl::ModelRaceOptions& race_options, std::uint64_t seed) {
  ADARTS_RETURN_NOT_OK(labeled.Validate());
  if (static_cast<int>(pool.size()) != labeled.num_classes) {
    return Status::InvalidArgument("pool size != num_classes");
  }
  Rng rng(seed);
  ThreadPool workers(race_options.num_threads);
  ADARTS_ASSIGN_OR_RETURN(ml::TrainTestSplit split,
                          ml::StratifiedSplit(labeled, 0.9, &rng));
  ADARTS_ASSIGN_OR_RETURN(
      automl::ModelRaceReport report,
      automl::RunModelRace(split.train, split.test, race_options));
  ADARTS_ASSIGN_OR_RETURN(
      automl::VotingRecommender recommender,
      automl::VotingRecommender::FromRace(report, labeled, &workers));
  return Adarts(features::FeatureExtractor(feature_options),
                std::move(recommender), std::move(report), pool, labeled);
}

Result<impute::Algorithm> Adarts::Recommend(const ts::TimeSeries& faulty) const {
  ADARTS_ASSIGN_OR_RETURN(la::Vector f, extractor_.Extract(faulty));
  const int cls = recommender_.Recommend(f);
  // The committee's class count and the pool are wired together at training
  // time, but a hand-assembled or corrupted bundle can break the invariant;
  // fail cleanly instead of indexing out of bounds.
  if (cls < 0 || static_cast<std::size_t>(cls) >= pool_.size()) {
    return Status::Internal("recommended class outside the algorithm pool");
  }
  return pool_[static_cast<std::size_t>(cls)];
}

Result<std::vector<impute::Algorithm>> Adarts::RecommendBatch(
    const std::vector<ts::TimeSeries>& batch,
    const RecommendBatchOptions& options) const {
  std::vector<impute::Algorithm> out(batch.size(), impute::Algorithm{});
  if (batch.empty()) return out;
  // One slot per series: extraction and the committee vote are pure reads of
  // the engine, so tasks share nothing but const state. Errors land in the
  // series' own status slot and the serial fold below reports the first one
  // in input order — exactly what a per-series Recommend loop would return.
  ThreadPool pool(options.num_threads);
  std::vector<Status> statuses(batch.size());
  ParallelFor(&pool, batch.size(), [&](std::size_t i) {
    Result<impute::Algorithm> algo = Recommend(batch[i]);
    if (!algo.ok()) {
      statuses[i] = algo.status();
      return;
    }
    out[i] = *algo;
  });
  for (const Status& s : statuses) {
    ADARTS_RETURN_NOT_OK(s);
  }
  return out;
}

Result<std::vector<impute::Algorithm>> Adarts::RecommendRanked(
    const ts::TimeSeries& faulty) const {
  ADARTS_ASSIGN_OR_RETURN(la::Vector f, extractor_.Extract(faulty));
  std::vector<impute::Algorithm> out;
  for (int cls : recommender_.Ranking(f)) {
    if (cls < 0 || static_cast<std::size_t>(cls) >= pool_.size()) {
      return Status::Internal("ranked class outside the algorithm pool");
    }
    out.push_back(pool_[static_cast<std::size_t>(cls)]);
  }
  return out;
}

Result<ts::TimeSeries> Adarts::Repair(const ts::TimeSeries& faulty) const {
  if (!faulty.HasMissing()) return faulty;
  ADARTS_ASSIGN_OR_RETURN(impute::Algorithm algo, Recommend(faulty));
  return impute::CreateImputer(algo)->Impute(faulty);
}

Result<std::vector<ts::TimeSeries>> Adarts::RepairSet(
    const std::vector<ts::TimeSeries>& faulty_set,
    const RecommendBatchOptions& options) const {
  if (faulty_set.empty()) return Status::InvalidArgument("empty set");
  // Majority vote of per-series recommendations picks the set's algorithm;
  // the recommendations come from one batched pass over the pool.
  // std::map iterates in ascending algorithm id and max_element keeps the
  // first of equal counts, so ties break deterministically toward the
  // smallest algorithm id (documented in the header).
  ADARTS_ASSIGN_OR_RETURN(std::vector<impute::Algorithm> recommendations,
                          RecommendBatch(faulty_set, options));
  std::map<int, std::size_t> votes;
  for (impute::Algorithm algo : recommendations) {
    ++votes[static_cast<int>(algo)];
  }
  const auto winner = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  const auto algo = static_cast<impute::Algorithm>(winner->first);
  return impute::CreateImputer(algo)->ImputeSet(faulty_set);
}

Result<la::Vector> Adarts::ExtractFeatures(const ts::TimeSeries& series) const {
  return extractor_.Extract(series);
}

}  // namespace adarts
