#ifndef ADARTS_ADARTS_ADARTS_H_
#define ADARTS_ADARTS_ADARTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "automl/model_race.h"
#include "automl/recommender.h"
#include "cluster/incremental.h"
#include "common/exec_context.h"
#include "common/status.h"
#include "features/feature_extractor.h"
#include "impute/imputer.h"
#include "labeling/labeler.h"
#include "ml/dataset.h"
#include "ts/time_series.h"

namespace adarts {

/// End-to-end training configuration for the A-DARTS engine.
struct TrainOptions {
  /// Label propagation via incremental clustering (fast path, the paper's
  /// default) or exhaustive per-series labeling (ground truth).
  bool use_cluster_labeling = true;
  cluster::IncrementalOptions clustering;
  labeling::LabelingOptions labeling;
  features::FeatureExtractorOptions features;
  automl::ModelRaceOptions race;
  /// Fraction of the labeled data used as ModelRace's training side; the
  /// rest is the race's evaluation set T (the paper trains on e.g. 80%).
  double race_train_fraction = 0.9;
  std::uint64_t seed = 17;
  /// Worker threads shared by the training phases (clustering, exhaustive
  /// labeling, corpus feature extraction, ModelRace candidate evaluation,
  /// committee refits). Ignored when an explicit `ExecContext` is passed —
  /// the context's pool is used instead. The trained engine and its
  /// recommendations are bit-identical for every value; see the determinism
  /// contract in common/thread_pool.h.
  [[deprecated("pass an ExecContext to Adarts::Train instead")]] std::size_t
      num_threads = 0;
  /// Optional cooperative cancellation/deadline token, polled between
  /// training phases and inside the parallel loops. Not owned; must outlive
  /// Train. Ignored when an explicit `ExecContext` is passed — the
  /// context's token is used instead (DESIGN.md §7).
  [[deprecated(
      "pass an ExecContext (carrying the token) to Adarts::Train "
      "instead")]] const CancellationToken* cancel = nullptr;

  // Spelled-out defaulted special members inside a diagnostic guard:
  // default-constructing/copying the options must not itself warn about the
  // deprecated fields — only direct reads and writes of them do.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  TrainOptions() = default;
  TrainOptions(const TrainOptions&) = default;
  TrainOptions& operator=(const TrainOptions&) = default;
  TrainOptions(TrainOptions&&) = default;
  TrainOptions& operator=(TrainOptions&&) = default;
#pragma GCC diagnostic pop
};

/// Configuration for incremental corpus growth (`Adarts::AppendSeries`).
/// Defaults to a cheaper ModelRace than full training: the race starts from
/// the engine's surviving elites (warm start), so a small refresh population
/// suffices — that economy is where the append-vs-retrain speedup comes
/// from.
struct UpdateOptions {
  /// Assignment thresholds for placing new series against the stored
  /// cluster representatives (same admissibility floor as training's
  /// refinement phase).
  cluster::IncrementalOptions clustering;
  /// Masking pattern/fraction for labeling freshly split clusters and for
  /// the appended series' training features. `algorithms` must be empty
  /// (the engine's pool is used) or equal to the engine's pool.
  labeling::LabelingOptions labeling;
  /// Re-race configuration; the constructor shrinks the population relative
  /// to `ModelRaceOptions` defaults because the warm-started race refines
  /// known-good elites instead of exploring from scratch.
  automl::ModelRaceOptions race;
  double race_train_fraction = 0.9;
  std::uint64_t seed = 17;
  /// Seed the re-race from the engine's surviving elites. Disable to force
  /// a cold race over the grown dataset (the bench's control arm).
  bool warm_start = true;

  UpdateOptions() {
    race.num_seed_pipelines = 12;
    race.num_partial_sets = 2;
    race.num_folds = 2;
    race.synth_per_elite = 1;
  }
};

/// One cluster's growth bookkeeping: everything `AppendSeries` needs to
/// place and label new series without the original corpus.
struct ClusterGrowthState {
  /// The cluster's winning algorithm (index into the engine's pool).
  int label = 0;
  /// Series assigned to this cluster so far (training + appended).
  std::uint64_t member_count = 0;
  /// The correlation-medoid representative series benchmarked for this
  /// cluster; new series are assigned by mean |corr| against these.
  std::vector<ts::TimeSeries> representatives;
};

/// Incremental-growth state persisted in the snapshot (optional blocks, see
/// DESIGN.md §13): per-cluster representatives + labels, and the race
/// elites (with fold scores) that warm-start the next `AppendSeries`.
/// `present` is false for engines trained via `TrainFromLabeled`, via the
/// exhaustive labeling path, or loaded from pre-growth snapshots — those
/// engines reject `AppendSeries` with FailedPrecondition.
struct GrowthState {
  std::vector<ClusterGrowthState> clusters;
  automl::RaceWarmStart warm_start;
  bool present = false;
};

/// Where training time went: a `StageMetrics` snapshot of the run's
/// `ExecContext` taken when `Train`/`TrainFromLabeled` returns —
/// `train.clustering_seconds`, `train.labeling_seconds`,
/// `train.features_seconds`, `train.race_seconds`,
/// `train.committee_seconds` spans plus the race/cluster/label counters
/// (DESIGN.md §8). Engines restored with `Load` carry an empty report: the
/// bundle stores the model, not the training run.
struct TrainReport {
  StageMetrics stages;
};

/// Options for the batched inference entry points (`RecommendBatch`,
/// `RepairSet`): many series extract features and vote concurrently on a
/// shared pool. Recommendations are bit-identical to per-series `Recommend`
/// calls for every thread count — the committee is read-only at inference
/// time and each series owns one result slot.
struct RecommendBatchOptions {
  /// Worker threads for the batch loop. Ignored when an explicit
  /// `ExecContext` is passed — the context's pool is used instead.
  [[deprecated(
      "pass an ExecContext to RecommendBatch/RepairSet instead")]] std::size_t
      num_threads = 0;
  /// true (the default): any per-series failure fails the whole batch with
  /// an aggregate error naming every failed series index. false: failed
  /// series degrade to the engine's corpus-majority default algorithm and
  /// the batch succeeds (`RecommendBatchPartial` exposes the per-series
  /// statuses when the caller needs them).
  bool fail_fast = true;
  /// Optional cooperative cancellation/deadline token polled inside the
  /// batch loop. Not owned; must outlive the call. Ignored when an explicit
  /// `ExecContext` is passed — the context's token is used instead.
  [[deprecated(
      "pass an ExecContext (carrying the token) to RecommendBatch/RepairSet "
      "instead")]] const CancellationToken* cancel = nullptr;

  // See TrainOptions: copying the options must not warn by itself.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  RecommendBatchOptions() = default;
  RecommendBatchOptions(const RecommendBatchOptions&) = default;
  RecommendBatchOptions& operator=(const RecommendBatchOptions&) = default;
  RecommendBatchOptions(RecommendBatchOptions&&) = default;
  RecommendBatchOptions& operator=(RecommendBatchOptions&&) = default;
#pragma GCC diagnostic pop
};

/// One recommendation with its health report: which algorithm won, and how
/// far down the degradation ladder the vote had to fall to produce it.
struct Recommendation {
  impute::Algorithm algorithm = impute::Algorithm{};
  automl::DegradationLevel degradation =
      automl::DegradationLevel::kFullCommittee;
  automl::VoteDiagnostics vote;
  /// Per-call stage breakdown: `recommend.extract_seconds` /
  /// `recommend.vote_seconds` spans plus the `recommend.degradation_rung`
  /// and `vote.members_failed` counters (DESIGN.md §8).
  StageMetrics stages;
};

/// The A-DARTS recommendation engine: train once on a corpus of series,
/// then recommend (and apply) the best imputation algorithm for new faulty
/// series. See Fig. 2 of the paper for the component flow this class wires
/// together: clustering -> labeling -> feature extraction -> ModelRace ->
/// soft-voting recommendation.
class Adarts {
 public:
  /// Trains the engine on a corpus of complete series. The corpus series
  /// must share one length (the imputation bench runs set-wise).
  static Result<Adarts> Train(const std::vector<ts::TimeSeries>& corpus,
                              const TrainOptions& options = {});

  /// Context variant — the preferred entry point: every training phase
  /// shares `ctx`'s one lazily-built pool, polls its cancellation token,
  /// and records its stage spans/counters into `ctx`'s metrics; the final
  /// snapshot lands in the engine's `train_report()`. The legacy overload
  /// delegates here with a default context built from the deprecated
  /// `num_threads`/`cancel` fields.
  static Result<Adarts> Train(const std::vector<ts::TimeSeries>& corpus,
                              const TrainOptions& options, ExecContext& ctx);

  /// Trains the recommendation engine from an already-labeled dataset
  /// (labels index `pool`). Used by the benches that control labeling.
  static Result<Adarts> TrainFromLabeled(
      const ml::Dataset& labeled, const std::vector<impute::Algorithm>& pool,
      const features::FeatureExtractorOptions& feature_options,
      const automl::ModelRaceOptions& race_options, std::uint64_t seed = 17);

  /// Context variant of `TrainFromLabeled`; same contract as the context
  /// variant of `Train`.
  static Result<Adarts> TrainFromLabeled(
      const ml::Dataset& labeled, const std::vector<impute::Algorithm>& pool,
      const features::FeatureExtractorOptions& feature_options,
      const automl::ModelRaceOptions& race_options, std::uint64_t seed,
      ExecContext& ctx);

  /// Incrementally grows the training corpus: each series of `delta` is
  /// assigned to an existing cluster (inheriting its label at zero
  /// imputation cost) or split off into a fresh cluster labeled in
  /// isolation; features are extracted for the delta only; and the
  /// committee is rebuilt by a ModelRace warm-started from the engine's
  /// surviving elites. Orders of magnitude cheaper than a full retrain —
  /// the bench records the speedup and labeling agreement in
  /// EXPERIMENTS.md. On success the engine's version bumps by one (so a
  /// subsequent Save + SIGHUP hot-swaps cleanly) and `train_report()` holds
  /// the update's `update.*` spans and counters (`update.assigned`,
  /// `update.splits`, `update.race_warm_hits`). On failure the engine is
  /// unchanged: every mutation happens on copies committed only after the
  /// last fallible step. Requires growth state
  /// (`has_growth_state()`) — engines from `TrainFromLabeled`, exhaustive
  /// labeling, or pre-growth snapshots are rejected with
  /// FailedPrecondition.
  Status AppendSeries(const std::vector<ts::TimeSeries>& delta,
                      const UpdateOptions& options = {});

  /// Context variant — preferred: assignment, labeling, feature extraction
  /// and the warm-started race share `ctx`'s pool and token, and the
  /// `update.*` metrics accumulate in `ctx`'s registry.
  Status AppendSeries(const std::vector<ts::TimeSeries>& delta,
                      const UpdateOptions& options, ExecContext& ctx);

  /// Incremental-growth bookkeeping (clusters + warm-start elites);
  /// `has_growth_state()` is false for engines that cannot AppendSeries.
  const GrowthState& growth_state() const { return growth_; }
  bool has_growth_state() const { return growth_.present; }

  /// Best imputation algorithm for a faulty series. Degrades gracefully:
  /// committee members that emit malformed probabilities are skipped, and
  /// when every member fails the corpus-majority default algorithm is
  /// returned (see `RecommendEx` for the degradation report). Only feature
  /// extraction failures surface as errors.
  Result<impute::Algorithm> Recommend(const ts::TimeSeries& faulty) const;

  /// Context variant: additionally accumulates the per-request counters
  /// (`recommend.requests`, `recommend.degraded`, `vote.members_failed`)
  /// and stage spans into `ctx`'s metrics.
  Result<impute::Algorithm> Recommend(const ts::TimeSeries& faulty,
                                      ExecContext& ctx) const;

  /// `Recommend` plus the degradation diagnostics: how many committee
  /// members voted and which rung of the ladder (full committee → partial
  /// committee → single elite → default class) produced the answer.
  Result<Recommendation> RecommendEx(const ts::TimeSeries& faulty) const;

  /// Context variant of `RecommendEx`; see `Recommend(faulty, ctx)`.
  Result<Recommendation> RecommendEx(const ts::TimeSeries& faulty,
                                     ExecContext& ctx) const;

  /// Best imputation algorithm for every series of `batch`, in input order
  /// (`out[i]` is the recommendation for `batch[i]`; an empty batch yields
  /// an empty vector). Feature extraction and committee voting fan out over
  /// a pool sized by `options.num_threads`; element `i` equals
  /// `Recommend(batch[i])` bit-for-bit at every thread count. With the
  /// default `options.fail_fast` any failed series fails the call with one
  /// aggregate error naming every failed index; with `fail_fast = false`
  /// failed series fall back to the corpus-majority default algorithm.
  Result<std::vector<impute::Algorithm>> RecommendBatch(
      const std::vector<ts::TimeSeries>& batch,
      const RecommendBatchOptions& options = {}) const;

  /// Context variant: the batch fans out on `ctx`'s shared pool, honours
  /// its cancellation token, and the per-request counters accumulate in
  /// `ctx`'s metrics through pre-registered lock-free handles.
  Result<std::vector<impute::Algorithm>> RecommendBatch(
      const std::vector<ts::TimeSeries>& batch,
      const RecommendBatchOptions& options, ExecContext& ctx) const;

  /// Per-series recommendations that never fail the batch: `out[i]` holds
  /// either `batch[i]`'s recommendation or that series' own error status
  /// (cancelled slots report the cancellation status). Input order.
  std::vector<Result<impute::Algorithm>> RecommendBatchPartial(
      const std::vector<ts::TimeSeries>& batch,
      const RecommendBatchOptions& options = {}) const;

  /// Context variant of `RecommendBatchPartial`; see the context variant of
  /// `RecommendBatch`.
  std::vector<Result<impute::Algorithm>> RecommendBatchPartial(
      const std::vector<ts::TimeSeries>& batch,
      const RecommendBatchOptions& options, ExecContext& ctx) const;

  /// Full ranking, best first (the basis of the MRR metric).
  Result<std::vector<impute::Algorithm>> RecommendRanked(
      const ts::TimeSeries& faulty) const;

  /// Context variant: counts the request in `ctx`'s metrics.
  Result<std::vector<impute::Algorithm>> RecommendRanked(
      const ts::TimeSeries& faulty, ExecContext& ctx) const;

  /// Recommends and applies the winning algorithm to one series. When the
  /// winner's fit fails on this input, logs a warning and falls back to
  /// linear interpolation (which accepts any series with >= 1 observation).
  Result<ts::TimeSeries> Repair(const ts::TimeSeries& faulty) const;

  /// Context variant: per-request counters plus
  /// `repair.fallback_linear_interp` accumulate in `ctx`'s metrics.
  Result<ts::TimeSeries> Repair(const ts::TimeSeries& faulty,
                                ExecContext& ctx) const;

  /// Recommends on the set (majority of per-series recommendations, batched
  /// via `RecommendBatch`) and repairs every series with the winning
  /// algorithm. Vote ties are broken deterministically toward the algorithm
  /// with the smallest id in the engine's pool ordering.
  Result<std::vector<ts::TimeSeries>> RepairSet(
      const std::vector<ts::TimeSeries>& faulty_set,
      const RecommendBatchOptions& options = {}) const;

  /// Context variant: batched recommendation runs on `ctx`'s shared pool
  /// and the set-level imputer's `FitDiagnostics` feed `ctx`'s metrics
  /// (`repair.impute_iterations`, `repair.impute_not_converged`,
  /// `repair.fallback_linear_interp`).
  Result<std::vector<ts::TimeSeries>> RepairSet(
      const std::vector<ts::TimeSeries>& faulty_set,
      const RecommendBatchOptions& options, ExecContext& ctx) const;

  /// Persists the engine as a deterministic model bundle: a versioned
  /// snapshot header (format version, monotonic engine version, creation
  /// time, payload length, FNV-1a content checksum) followed by the
  /// payload — extractor options, algorithm pool, committee pipeline
  /// specs, and the labeled training dataset. Because every classifier is
  /// deterministic given its stored seed, Load refits the committee
  /// exactly and the loaded engine reproduces this engine's
  /// recommendations bit-for-bit. The payload is byte-identical across
  /// saves of the same engine; only `created_unix` in the header moves.
  Status Save(const std::string& path) const;

  /// Restores an engine saved with Save. The header is verified BEFORE any
  /// payload parsing or allocation: a wrong magic, an unsupported format
  /// version, a payload shorter or longer than the header declares (a torn
  /// write), or an FNV-1a checksum mismatch (any flipped byte) each yield
  /// a precise InvalidArgument naming what disagreed.
  static Result<Adarts> Load(const std::string& path);

  /// Monotonic version of this engine, stamped into the snapshot header by
  /// `Save` and restored by `Load`. A freshly trained engine is version 1;
  /// publishers bump it before saving so the serving daemon's hot-swap can
  /// reject stale snapshots (DESIGN.md §12).
  std::uint64_t engine_version() const { return engine_version_; }
  void set_engine_version(std::uint64_t version) { engine_version_ = version; }

  /// Wall-clock seconds-since-epoch recorded in the snapshot header this
  /// engine was loaded from; 0 for engines that never round-tripped disk.
  std::uint64_t snapshot_created_unix() const { return created_unix_; }

  /// Feature vector of a (possibly incomplete) series under the engine's
  /// configured extractor.
  Result<la::Vector> ExtractFeatures(const ts::TimeSeries& series) const;

  /// Soft-vote class probabilities for a raw feature vector.
  la::Vector PredictProba(const la::Vector& features) const {
    return recommender_.PredictProba(features);
  }

  const automl::ModelRaceReport& race_report() const { return race_report_; }
  /// Stage breakdown of the training run that produced this engine; empty
  /// for engines restored with `Load`.
  const TrainReport& train_report() const { return train_report_; }
  const std::vector<impute::Algorithm>& algorithm_pool() const { return pool_; }
  const features::FeatureExtractor& feature_extractor() const {
    return extractor_;
  }
  std::size_t committee_size() const { return recommender_.committee_size(); }
  /// Corpus-majority class: the most frequent training label (smallest
  /// label on ties). The last rung of the degradation ladder.
  int default_class() const { return default_class_; }
  /// The fitted winning pipelines behind the soft vote.
  const std::vector<automl::TrainedPipeline>& committee() const {
    return recommender_.committee();
  }

  /// The labeled dataset the committee was fitted on (kept for Save and
  /// for incremental retraining).
  const ml::Dataset& training_data() const { return training_data_; }

 private:
  Adarts(features::FeatureExtractor extractor,
         automl::VotingRecommender recommender,
         automl::ModelRaceReport report, std::vector<impute::Algorithm> pool,
         ml::Dataset training_data);

  /// Majority training label over `training_data_` (first/smallest label on
  /// ties); called from the constructor and after AppendSeries commits.
  void RecomputeDefaultClass();

  features::FeatureExtractor extractor_;
  automl::VotingRecommender recommender_;
  automl::ModelRaceReport race_report_;
  TrainReport train_report_;
  std::vector<impute::Algorithm> pool_;
  ml::Dataset training_data_;
  /// Incremental-growth bookkeeping; `present` only for cluster-labeled
  /// Train engines and snapshots that persisted it.
  GrowthState growth_;
  /// Majority training label; computed in the constructor so Save/Load
  /// needs no bundle-format change. 0 when labels are absent.
  int default_class_ = 0;
  /// Snapshot-versioning metadata (see `engine_version()`).
  std::uint64_t engine_version_ = 1;
  std::uint64_t created_unix_ = 0;
};

/// The verified metadata block at the front of a model bundle (DESIGN.md
/// §12). `Adarts::Load` re-derives and checks every field; this struct and
/// `ReadSnapshotHeader` let tools inspect a snapshot without paying for the
/// full committee refit.
struct SnapshotHeader {
  std::uint32_t format_version = 0;
  std::uint64_t engine_version = 0;
  std::uint64_t created_unix = 0;
  std::uint64_t payload_bytes = 0;
  /// FNV-1a (64-bit) over the payload bytes.
  std::uint64_t checksum = 0;
};

/// Parses and bounds-checks the header of a snapshot at `path` without
/// reading or verifying the payload. Same rejection vocabulary as Load for
/// the header itself (bad magic, unsupported format version).
Result<SnapshotHeader> ReadSnapshotHeader(const std::string& path);

/// FNV-1a 64-bit over `data` — the snapshot content checksum. Exposed so
/// tests and the chaos harness can compute expected digests.
std::uint64_t Fnv1a64(std::string_view data);

}  // namespace adarts

#endif  // ADARTS_ADARTS_ADARTS_H_
