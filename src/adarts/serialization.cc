// Save/Load of trained engines as deterministic model bundles (see
// Adarts::Save in adarts.h). The format is a versioned snapshot: one magic
// line, one header line `header <format_version> <engine_version>
// <created_unix> <payload_bytes> <fnv1a-hex>`, then the payload — a
// whitespace-separated text archive in which doubles round-trip at 17
// significant digits. Classifier training is fully deterministic given the
// stored seeds, so a loaded engine's committee is bit-identical to the
// saved one. Load verifies the header bounds, the declared payload length
// and the FNV-1a content checksum BEFORE parsing a single payload token:
// a torn write, a flipped byte, or a future-format file is rejected with a
// precise error instead of being half-trusted (DESIGN.md §12).

#include <ctime>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "adarts/adarts.h"
#include "common/failpoint.h"

namespace adarts {

namespace {

constexpr char kMagic[] = "ADARTS_MODEL_V2";
constexpr char kMagicV1[] = "ADARTS_MODEL_V1";
constexpr std::uint32_t kFormatVersion = 2;
// Upper bound on the declared payload length — rejects absurd headers
// before any read of attacker-controlled size succeeds in allocating.
constexpr std::uint64_t kMaxPayloadBytes = std::uint64_t{1} << 30;  // 1 GiB

// Upper bounds a well-formed bundle can never exceed. Load validates every
// on-disk size against these BEFORE any reserve/resize, so a truncated or
// hostile bundle yields InvalidArgument instead of a multi-GB allocation
// attempt (the sizes are attacker-controlled text; trusting them would let a
// one-line file OOM the serving daemon at startup).
constexpr std::size_t kMaxPoolSize = 256;
constexpr std::size_t kMaxCommitteeSize = 4096;
constexpr std::size_t kMaxPipelineParams = 1024;
constexpr std::size_t kMaxFeatureDim = std::size_t{1} << 20;
// Total feature values (samples * dim) — caps the dataset block at 512 MiB.
constexpr std::size_t kMaxDatasetValues = std::size_t{1} << 26;
// Bounds for the optional growth blocks (DESIGN.md §13).
constexpr std::size_t kMaxClusterReps = 64;
constexpr std::size_t kMaxSeriesLength = std::size_t{1} << 20;
constexpr std::size_t kMaxFoldScores = 4096;

Status Expect(std::istream& in, const std::string& token) {
  std::string got;
  if (!(in >> got) || got != token) {
    return Status::InvalidArgument("model bundle: expected '" + token +
                                   "', got '" + got + "'");
  }
  return Status::OK();
}

// One pipeline spec as whitespace-separated fields — the shape shared by
// the committee's `pipeline` lines and the warm-start block's `elite`
// lines (which append race statistics after these fields).
void WritePipelineSpec(std::ostream& out, const automl::Pipeline& spec) {
  out << ml::ClassifierKindToString(spec.classifier) << ' '
      << ml::ScalerKindToString(spec.scaler) << ' ' << spec.scaler_param << ' '
      << spec.id << ' ' << spec.params.size();
  for (const auto& [key, value] : spec.params) {
    out << ' ' << key << ' ' << value;
  }
}

Result<automl::Pipeline> ParsePipelineSpec(std::istream& in) {
  automl::Pipeline spec;
  std::string classifier_name;
  std::string scaler_name;
  std::size_t num_params = 0;
  if (!(in >> classifier_name >> scaler_name >> spec.scaler_param >> spec.id >>
        num_params) ||
      num_params > kMaxPipelineParams) {
    return Status::InvalidArgument("model bundle: bad pipeline header");
  }
  ADARTS_ASSIGN_OR_RETURN(spec.classifier,
                          ml::ClassifierKindFromString(classifier_name));
  bool found_scaler = false;
  for (ml::ScalerKind kind : ml::AllScalerKinds()) {
    if (ml::ScalerKindToString(kind) == scaler_name) {
      spec.scaler = kind;
      found_scaler = true;
    }
  }
  if (!found_scaler) {
    return Status::NotFound("model bundle: unknown scaler " + scaler_name);
  }
  for (std::size_t p = 0; p < num_params; ++p) {
    std::string key;
    double value = 0.0;
    if (!(in >> key >> value)) {
      return Status::InvalidArgument("model bundle: truncated params");
    }
    spec.params[key] = value;
  }
  return spec;
}

std::string ChecksumHex(std::uint64_t checksum) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(checksum));
  return std::string(buf);
}

// Parses the magic + header lines from `in`. Shared by Adarts::Load and
// ReadSnapshotHeader so the two can never disagree on what a valid header
// looks like.
Result<SnapshotHeader> ParseHeader(std::istream& in, const std::string& path) {
  std::string magic;
  if (!std::getline(in, magic)) {
    return Status::InvalidArgument("model bundle: empty file: " + path);
  }
  if (magic == kMagicV1) {
    return Status::InvalidArgument(
        "model bundle: unversioned V1 snapshot no longer supported "
        "(re-save with this build to produce a V2 snapshot): " +
        path);
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("model bundle: bad magic '" + magic +
                                   "' (want '" + kMagic + "'): " + path);
  }
  std::string header_line;
  if (!std::getline(in, header_line)) {
    return Status::InvalidArgument("model bundle: missing header line: " +
                                   path);
  }
  std::istringstream hs(header_line);
  SnapshotHeader header;
  std::string tag;
  std::string checksum_hex;
  if (!(hs >> tag >> header.format_version >> header.engine_version >>
        header.created_unix >> header.payload_bytes >> checksum_hex) ||
      tag != "header") {
    return Status::InvalidArgument("model bundle: malformed header line '" +
                                   header_line + "': " + path);
  }
  std::string trailing;
  if (hs >> trailing) {
    return Status::InvalidArgument(
        "model bundle: trailing header fields starting at '" + trailing +
        "': " + path);
  }
  if (header.format_version != kFormatVersion) {
    const std::string relation =
        header.format_version > kFormatVersion
            ? "newer than this build understands"
            : "older than this build supports";
    return Status::InvalidArgument(
        "model bundle: format_version " +
        std::to_string(header.format_version) + " is " + relation +
        " (want " + std::to_string(kFormatVersion) + "): " + path);
  }
  if (header.engine_version == 0) {
    return Status::InvalidArgument(
        "model bundle: engine_version 0 is reserved: " + path);
  }
  if (header.payload_bytes == 0 || header.payload_bytes > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "model bundle: implausible payload_bytes " +
        std::to_string(header.payload_bytes) + " (max " +
        std::to_string(kMaxPayloadBytes) + "): " + path);
  }
  if (checksum_hex.size() != 16 ||
      checksum_hex.find_first_not_of("0123456789abcdef") !=
          std::string::npos) {
    return Status::InvalidArgument("model bundle: bad checksum field '" +
                                   checksum_hex + "': " + path);
  }
  header.checksum = std::strtoull(checksum_hex.c_str(), nullptr, 16);
  return header;
}

}  // namespace

std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

Result<SnapshotHeader> ReadSnapshotHeader(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open: " + path);
  return ParseHeader(file, path);
}

Status Adarts::Save(const std::string& path) const {
  std::ostringstream out;
  out.precision(17);

  const features::FeatureExtractorOptions& fopts = extractor_.options();
  out << "extractor " << (fopts.statistical ? 1 : 0) << ' '
      << (fopts.topological ? 1 : 0) << ' ' << fopts.embedding_dimension << ' '
      << fopts.embedding_tau << ' ' << fopts.landmarks << ' '
      << fopts.max_acf_lag << '\n';

  out << "pool " << pool_.size();
  for (impute::Algorithm a : pool_) {
    out << ' ' << impute::AlgorithmToString(a);
  }
  out << '\n';

  out << "committee " << committee().size() << '\n';
  for (const automl::TrainedPipeline& member : committee()) {
    out << "pipeline ";
    WritePipelineSpec(out, member.spec);
    out << '\n';
  }

  out << "dataset " << training_data_.size() << ' ' << training_data_.dim()
      << ' ' << training_data_.num_classes << '\n';
  for (std::size_t i = 0; i < training_data_.size(); ++i) {
    out << training_data_.labels[i];
    for (double v : training_data_.features[i]) {
      out << ' ' << v;
    }
    out << '\n';
  }

  // Optional growth blocks, only for engines that can AppendSeries.
  // Engines without growth state (TrainFromLabeled, exhaustive labeling)
  // write exactly the pre-growth payload, and Load accepts bundles that go
  // straight from the dataset rows to `end` — pre-growth snapshots keep
  // loading unchanged.
  if (growth_.present) {
    out << "clusters " << growth_.clusters.size() << '\n';
    for (const ClusterGrowthState& c : growth_.clusters) {
      out << "cluster " << c.label << ' ' << c.member_count << ' '
          << c.representatives.size() << '\n';
      for (const ts::TimeSeries& rep : c.representatives) {
        // Masked positions write 0 (their in-memory placeholder may be
        // anything, including NaN, which would not round-trip as text);
        // the mask itself is stored as explicit indices.
        out << "rep " << rep.length() << ' ' << rep.MissingCount();
        for (std::size_t i = 0; i < rep.length(); ++i) {
          out << ' ' << (rep.IsMissing(i) ? 0.0 : rep.values()[i]);
        }
        for (std::size_t i : rep.MissingIndices()) {
          out << ' ' << i;
        }
        out << '\n';
      }
    }
    out << "warmstart " << growth_.warm_start.elites.size() << '\n';
    for (const automl::RacedPipeline& elite : growth_.warm_start.elites) {
      out << "elite ";
      WritePipelineSpec(out, elite.spec);
      out << ' ' << elite.mean_score << ' ' << elite.mean_f1 << ' '
          << elite.mean_recall_at3 << ' ' << elite.mean_time_seconds << ' '
          << elite.scores.size();
      for (double s : elite.scores) {
        out << ' ' << s;
      }
      out << '\n';
    }
  }
  out << "end\n";

  // The checksum covers exactly the payload bytes (extractor..end); the
  // header line carries its length and FNV-1a so Load can verify integrity
  // before parsing a single payload token.
  const std::string payload = out.str();
  const std::uint64_t created = static_cast<std::uint64_t>(std::time(nullptr));
  std::ostringstream head;
  head << kMagic << '\n'
       << "header " << kFormatVersion << ' ' << engine_version_ << ' '
       << created << ' ' << payload.size() << ' '
       << ChecksumHex(Fnv1a64(payload)) << '\n';
  const std::string bundle = head.str() + payload;

  // Atomic publish: the bundle is written to a private temp file and renamed
  // over the destination, so a crash, ENOSPC, or an armed failpoint at any
  // point leaves the previously-good snapshot at `path` untouched — the
  // invariant a restarting adarts_serve depends on. rename(2) on the same
  // filesystem replaces the target atomically.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  Status written = [&]() -> Status {
    std::ofstream file(tmp, std::ios::trunc | std::ios::binary);
    if (!file) return Status::Internal("cannot open for writing: " + tmp);
    // Models a crash mid-write: the temp file exists but its contents never
    // complete. The destination must survive this bit-identically.
    ADARTS_FAILPOINT("adarts.save.write");
    file << bundle;
    file.flush();
    if (!file.good()) return Status::Internal("write failed: " + tmp);
    return Status::OK();
  }();
  if (!written.ok()) {
    std::remove(tmp.c_str());
    return written;
  }
  // Models a crash between the completed write and the publish.
  if (FailpointRegistry::Armed()) {
    Status fp = FailpointRegistry::Instance().Check("adarts.save.commit");
    if (!fp.ok()) {
      std::remove(tmp.c_str());
      return fp;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path + ": " +
                            std::strerror(err));
  }
  return Status::OK();
}

Result<Adarts> Adarts::Load(const std::string& path) {
  ADARTS_FAILPOINT("adarts.load.read");
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open: " + path);

  ADARTS_ASSIGN_OR_RETURN(SnapshotHeader header, ParseHeader(file, path));

  // Pull exactly the declared payload: fewer bytes means a torn write, more
  // means trailing garbage — both are rejected before any token is trusted.
  std::string payload(header.payload_bytes, '\0');
  file.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint64_t got = static_cast<std::uint64_t>(file.gcount());
  if (got < header.payload_bytes) {
    return Status::InvalidArgument(
        "model bundle: torn snapshot — header declares " +
        std::to_string(header.payload_bytes) + " payload bytes but only " +
        std::to_string(got) + " present: " + path);
  }
  if (file.peek() != std::ifstream::traits_type::eof()) {
    return Status::InvalidArgument(
        "model bundle: trailing bytes after declared payload: " + path);
  }

  // Models a checksum/verify failure without needing a corrupt file on disk.
  ADARTS_FAILPOINT("adarts.load.verify");
  const std::uint64_t actual = Fnv1a64(payload);
  if (actual != header.checksum) {
    return Status::InvalidArgument(
        "model bundle: checksum mismatch — header says " +
        ChecksumHex(header.checksum) + ", payload hashes to " +
        ChecksumHex(actual) + " (corrupted snapshot): " + path);
  }

  std::istringstream in(payload);

  ADARTS_RETURN_NOT_OK(Expect(in, "extractor"));
  features::FeatureExtractorOptions fopts;
  int statistical = 0;
  int topological = 0;
  if (!(in >> statistical >> topological >> fopts.embedding_dimension >>
        fopts.embedding_tau >> fopts.landmarks >> fopts.max_acf_lag)) {
    return Status::InvalidArgument("model bundle: bad extractor block");
  }
  fopts.statistical = statistical != 0;
  fopts.topological = topological != 0;

  ADARTS_RETURN_NOT_OK(Expect(in, "pool"));
  std::size_t pool_size = 0;
  if (!(in >> pool_size) || pool_size == 0 || pool_size > kMaxPoolSize) {
    return Status::InvalidArgument("model bundle: bad pool size " +
                                   std::to_string(pool_size) + " (max " +
                                   std::to_string(kMaxPoolSize) + ")");
  }
  std::vector<impute::Algorithm> pool;
  pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    std::string name;
    if (!(in >> name)) {
      return Status::InvalidArgument("model bundle: truncated pool");
    }
    ADARTS_ASSIGN_OR_RETURN(impute::Algorithm a,
                            impute::AlgorithmFromString(name));
    pool.push_back(a);
  }

  ADARTS_RETURN_NOT_OK(Expect(in, "committee"));
  std::size_t committee_size = 0;
  if (!(in >> committee_size) || committee_size == 0 ||
      committee_size > kMaxCommitteeSize) {
    return Status::InvalidArgument("model bundle: bad committee size " +
                                   std::to_string(committee_size) + " (max " +
                                   std::to_string(kMaxCommitteeSize) + ")");
  }
  std::vector<automl::Pipeline> specs;
  specs.reserve(committee_size);
  for (std::size_t i = 0; i < committee_size; ++i) {
    ADARTS_RETURN_NOT_OK(Expect(in, "pipeline"));
    ADARTS_ASSIGN_OR_RETURN(automl::Pipeline spec, ParsePipelineSpec(in));
    specs.push_back(std::move(spec));
  }

  ADARTS_RETURN_NOT_OK(Expect(in, "dataset"));
  std::size_t samples = 0;
  std::size_t dim = 0;
  ml::Dataset labeled;
  if (!(in >> samples >> dim >> labeled.num_classes) || samples == 0 ||
      dim == 0 || dim > kMaxFeatureDim || samples > kMaxDatasetValues / dim ||
      labeled.num_classes <= 0 ||
      static_cast<std::size_t>(labeled.num_classes) > kMaxPoolSize) {
    return Status::InvalidArgument("model bundle: bad dataset header (" +
                                   std::to_string(samples) + " x " +
                                   std::to_string(dim) + ", " +
                                   std::to_string(labeled.num_classes) +
                                   " classes)");
  }
  labeled.features.reserve(samples);
  labeled.labels.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    int label = 0;
    if (!(in >> label)) {
      return Status::InvalidArgument("model bundle: truncated labels");
    }
    la::Vector f(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      if (!(in >> f[j])) {
        return Status::InvalidArgument("model bundle: truncated features");
      }
    }
    labeled.labels.push_back(label);
    labeled.features.push_back(std::move(f));
  }
  // The growth blocks are optional: pre-growth snapshots (and engines
  // without growth state) go straight from the dataset rows to `end`.
  std::string token;
  if (!(in >> token)) {
    return Status::InvalidArgument("model bundle: missing end marker");
  }
  GrowthState growth;
  if (token == "clusters") {
    std::size_t num_clusters = 0;
    if (!(in >> num_clusters) || num_clusters == 0 || num_clusters > samples) {
      return Status::InvalidArgument("model bundle: bad cluster count " +
                                     std::to_string(num_clusters) + " (max " +
                                     std::to_string(samples) + ")");
    }
    growth.clusters.reserve(num_clusters);
    for (std::size_t k = 0; k < num_clusters; ++k) {
      ADARTS_RETURN_NOT_OK(Expect(in, "cluster"));
      ClusterGrowthState c;
      std::size_t num_reps = 0;
      if (!(in >> c.label >> c.member_count >> num_reps) || c.label < 0 ||
          static_cast<std::size_t>(c.label) >= pool.size() ||
          c.member_count == 0 || num_reps == 0 || num_reps > kMaxClusterReps) {
        return Status::InvalidArgument("model bundle: bad cluster header");
      }
      c.representatives.reserve(num_reps);
      for (std::size_t r = 0; r < num_reps; ++r) {
        ADARTS_RETURN_NOT_OK(Expect(in, "rep"));
        std::size_t length = 0;
        std::size_t num_missing = 0;
        if (!(in >> length >> num_missing) || length == 0 ||
            length > kMaxSeriesLength || num_missing > length) {
          return Status::InvalidArgument(
              "model bundle: bad representative header");
        }
        la::Vector values(length);
        for (std::size_t i = 0; i < length; ++i) {
          if (!(in >> values[i])) {
            return Status::InvalidArgument(
                "model bundle: truncated representative values");
          }
        }
        std::vector<bool> missing(length, false);
        for (std::size_t m = 0; m < num_missing; ++m) {
          std::size_t idx = 0;
          if (!(in >> idx) || idx >= length) {
            return Status::InvalidArgument(
                "model bundle: bad representative missing index");
          }
          missing[idx] = true;
        }
        ADARTS_ASSIGN_OR_RETURN(
            ts::TimeSeries rep,
            ts::TimeSeries::Create(std::move(values), std::move(missing)));
        c.representatives.push_back(std::move(rep));
      }
      growth.clusters.push_back(std::move(c));
    }
    growth.present = true;
    if (!(in >> token)) {
      return Status::InvalidArgument("model bundle: missing end marker");
    }
  }
  if (token == "warmstart") {
    std::size_t num_elites = 0;
    if (!(in >> num_elites) || num_elites > kMaxCommitteeSize) {
      return Status::InvalidArgument("model bundle: bad warm-start size " +
                                     std::to_string(num_elites) + " (max " +
                                     std::to_string(kMaxCommitteeSize) + ")");
    }
    growth.warm_start.elites.reserve(num_elites);
    for (std::size_t e = 0; e < num_elites; ++e) {
      ADARTS_RETURN_NOT_OK(Expect(in, "elite"));
      automl::RacedPipeline elite;
      ADARTS_ASSIGN_OR_RETURN(elite.spec, ParsePipelineSpec(in));
      std::size_t num_scores = 0;
      if (!(in >> elite.mean_score >> elite.mean_f1 >> elite.mean_recall_at3 >>
            elite.mean_time_seconds >> num_scores) ||
          num_scores > kMaxFoldScores) {
        return Status::InvalidArgument("model bundle: bad elite statistics");
      }
      elite.scores = la::Vector(num_scores);
      for (std::size_t s = 0; s < num_scores; ++s) {
        if (!(in >> elite.scores[s])) {
          return Status::InvalidArgument(
              "model bundle: truncated elite scores");
        }
      }
      growth.warm_start.elites.push_back(std::move(elite));
    }
    if (!(in >> token)) {
      return Status::InvalidArgument("model bundle: missing end marker");
    }
  }
  if (token != "end") {
    return Status::InvalidArgument("model bundle: expected 'end', got '" +
                                   token + "'");
  }
  ADARTS_RETURN_NOT_OK(labeled.Validate());
  if (static_cast<int>(pool.size()) != labeled.num_classes) {
    return Status::InvalidArgument("model bundle: pool/classes mismatch");
  }

  // Refit the committee deterministically on the stored dataset.
  std::vector<automl::TrainedPipeline> committee;
  committee.reserve(specs.size());
  automl::ModelRaceReport report;  // reconstructed spec-only report
  for (const automl::Pipeline& spec : specs) {
    ADARTS_ASSIGN_OR_RETURN(automl::TrainedPipeline fitted,
                            automl::FitPipeline(spec, labeled));
    committee.push_back(std::move(fitted));
    report.elites.push_back({spec, {}, 0, 0, 0, 0});
  }
  ADARTS_ASSIGN_OR_RETURN(
      automl::VotingRecommender recommender,
      automl::VotingRecommender::FromPipelines(std::move(committee),
                                               labeled.num_classes));
  Adarts engine(features::FeatureExtractor(fopts), std::move(recommender),
                std::move(report), std::move(pool), std::move(labeled));
  engine.growth_ = std::move(growth);
  engine.engine_version_ = header.engine_version;
  engine.created_unix_ = header.created_unix;
  return engine;
}

}  // namespace adarts
