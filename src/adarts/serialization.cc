// Save/Load of trained engines as deterministic model bundles (see
// Adarts::Save in adarts.h). The format is a whitespace-separated text
// archive: doubles round-trip at 17 significant digits and classifier
// training is fully deterministic given the stored seeds, so a loaded
// engine's committee is bit-identical to the saved one.

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "adarts/adarts.h"
#include "common/failpoint.h"

namespace adarts {

namespace {

constexpr char kMagic[] = "ADARTS_MODEL_V1";

// Upper bounds a well-formed bundle can never exceed. Load validates every
// on-disk size against these BEFORE any reserve/resize, so a truncated or
// hostile bundle yields InvalidArgument instead of a multi-GB allocation
// attempt (the sizes are attacker-controlled text; trusting them would let a
// one-line file OOM the serving daemon at startup).
constexpr std::size_t kMaxPoolSize = 256;
constexpr std::size_t kMaxCommitteeSize = 4096;
constexpr std::size_t kMaxPipelineParams = 1024;
constexpr std::size_t kMaxFeatureDim = std::size_t{1} << 20;
// Total feature values (samples * dim) — caps the dataset block at 512 MiB.
constexpr std::size_t kMaxDatasetValues = std::size_t{1} << 26;

Status Expect(std::istream& in, const std::string& token) {
  std::string got;
  if (!(in >> got) || got != token) {
    return Status::InvalidArgument("model bundle: expected '" + token +
                                   "', got '" + got + "'");
  }
  return Status::OK();
}

}  // namespace

Status Adarts::Save(const std::string& path) const {
  std::ostringstream out;
  out.precision(17);
  out << kMagic << '\n';

  const features::FeatureExtractorOptions& fopts = extractor_.options();
  out << "extractor " << (fopts.statistical ? 1 : 0) << ' '
      << (fopts.topological ? 1 : 0) << ' ' << fopts.embedding_dimension << ' '
      << fopts.embedding_tau << ' ' << fopts.landmarks << ' '
      << fopts.max_acf_lag << '\n';

  out << "pool " << pool_.size();
  for (impute::Algorithm a : pool_) {
    out << ' ' << impute::AlgorithmToString(a);
  }
  out << '\n';

  out << "committee " << committee().size() << '\n';
  for (const automl::TrainedPipeline& member : committee()) {
    const automl::Pipeline& spec = member.spec;
    out << "pipeline " << ml::ClassifierKindToString(spec.classifier) << ' '
        << ml::ScalerKindToString(spec.scaler) << ' ' << spec.scaler_param
        << ' ' << spec.id << ' ' << spec.params.size();
    for (const auto& [key, value] : spec.params) {
      out << ' ' << key << ' ' << value;
    }
    out << '\n';
  }

  out << "dataset " << training_data_.size() << ' ' << training_data_.dim()
      << ' ' << training_data_.num_classes << '\n';
  for (std::size_t i = 0; i < training_data_.size(); ++i) {
    out << training_data_.labels[i];
    for (double v : training_data_.features[i]) {
      out << ' ' << v;
    }
    out << '\n';
  }
  out << "end\n";

  // Atomic publish: the bundle is written to a private temp file and renamed
  // over the destination, so a crash, ENOSPC, or an armed failpoint at any
  // point leaves the previously-good snapshot at `path` untouched — the
  // invariant a restarting adarts_serve depends on. rename(2) on the same
  // filesystem replaces the target atomically.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  Status written = [&]() -> Status {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) return Status::Internal("cannot open for writing: " + tmp);
    // Models a crash mid-write: the temp file exists but its contents never
    // complete. The destination must survive this bit-identically.
    ADARTS_FAILPOINT("adarts.save.write");
    file << out.str();
    file.flush();
    if (!file.good()) return Status::Internal("write failed: " + tmp);
    return Status::OK();
  }();
  if (!written.ok()) {
    std::remove(tmp.c_str());
    return written;
  }
  // Models a crash between the completed write and the publish.
  if (FailpointRegistry::Armed()) {
    Status fp = FailpointRegistry::Instance().Check("adarts.save.commit");
    if (!fp.ok()) {
      std::remove(tmp.c_str());
      return fp;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path + ": " +
                            std::strerror(err));
  }
  return Status::OK();
}

Result<Adarts> Adarts::Load(const std::string& path) {
  ADARTS_FAILPOINT("adarts.load.read");
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open: " + path);

  ADARTS_RETURN_NOT_OK(Expect(file, kMagic));

  ADARTS_RETURN_NOT_OK(Expect(file, "extractor"));
  features::FeatureExtractorOptions fopts;
  int statistical = 0;
  int topological = 0;
  if (!(file >> statistical >> topological >> fopts.embedding_dimension >>
        fopts.embedding_tau >> fopts.landmarks >> fopts.max_acf_lag)) {
    return Status::InvalidArgument("model bundle: bad extractor block");
  }
  fopts.statistical = statistical != 0;
  fopts.topological = topological != 0;

  ADARTS_RETURN_NOT_OK(Expect(file, "pool"));
  std::size_t pool_size = 0;
  if (!(file >> pool_size) || pool_size == 0 || pool_size > kMaxPoolSize) {
    return Status::InvalidArgument("model bundle: bad pool size " +
                                   std::to_string(pool_size) + " (max " +
                                   std::to_string(kMaxPoolSize) + ")");
  }
  std::vector<impute::Algorithm> pool;
  pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    std::string name;
    if (!(file >> name)) {
      return Status::InvalidArgument("model bundle: truncated pool");
    }
    ADARTS_ASSIGN_OR_RETURN(impute::Algorithm a,
                            impute::AlgorithmFromString(name));
    pool.push_back(a);
  }

  ADARTS_RETURN_NOT_OK(Expect(file, "committee"));
  std::size_t committee_size = 0;
  if (!(file >> committee_size) || committee_size == 0 ||
      committee_size > kMaxCommitteeSize) {
    return Status::InvalidArgument("model bundle: bad committee size " +
                                   std::to_string(committee_size) + " (max " +
                                   std::to_string(kMaxCommitteeSize) + ")");
  }
  std::vector<automl::Pipeline> specs;
  specs.reserve(committee_size);
  for (std::size_t i = 0; i < committee_size; ++i) {
    ADARTS_RETURN_NOT_OK(Expect(file, "pipeline"));
    automl::Pipeline spec;
    std::string classifier_name;
    std::string scaler_name;
    std::size_t num_params = 0;
    if (!(file >> classifier_name >> scaler_name >> spec.scaler_param >>
          spec.id >> num_params) ||
        num_params > kMaxPipelineParams) {
      return Status::InvalidArgument("model bundle: bad pipeline header");
    }
    ADARTS_ASSIGN_OR_RETURN(spec.classifier,
                            ml::ClassifierKindFromString(classifier_name));
    bool found_scaler = false;
    for (ml::ScalerKind kind : ml::AllScalerKinds()) {
      if (ml::ScalerKindToString(kind) == scaler_name) {
        spec.scaler = kind;
        found_scaler = true;
      }
    }
    if (!found_scaler) {
      return Status::NotFound("model bundle: unknown scaler " + scaler_name);
    }
    for (std::size_t p = 0; p < num_params; ++p) {
      std::string key;
      double value = 0.0;
      if (!(file >> key >> value)) {
        return Status::InvalidArgument("model bundle: truncated params");
      }
      spec.params[key] = value;
    }
    specs.push_back(std::move(spec));
  }

  ADARTS_RETURN_NOT_OK(Expect(file, "dataset"));
  std::size_t samples = 0;
  std::size_t dim = 0;
  ml::Dataset labeled;
  if (!(file >> samples >> dim >> labeled.num_classes) || samples == 0 ||
      dim == 0 || dim > kMaxFeatureDim || samples > kMaxDatasetValues / dim ||
      labeled.num_classes <= 0 ||
      static_cast<std::size_t>(labeled.num_classes) > kMaxPoolSize) {
    return Status::InvalidArgument("model bundle: bad dataset header (" +
                                   std::to_string(samples) + " x " +
                                   std::to_string(dim) + ", " +
                                   std::to_string(labeled.num_classes) +
                                   " classes)");
  }
  labeled.features.reserve(samples);
  labeled.labels.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    int label = 0;
    if (!(file >> label)) {
      return Status::InvalidArgument("model bundle: truncated labels");
    }
    la::Vector f(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      if (!(file >> f[j])) {
        return Status::InvalidArgument("model bundle: truncated features");
      }
    }
    labeled.labels.push_back(label);
    labeled.features.push_back(std::move(f));
  }
  ADARTS_RETURN_NOT_OK(Expect(file, "end"));
  ADARTS_RETURN_NOT_OK(labeled.Validate());
  if (static_cast<int>(pool.size()) != labeled.num_classes) {
    return Status::InvalidArgument("model bundle: pool/classes mismatch");
  }

  // Refit the committee deterministically on the stored dataset.
  std::vector<automl::TrainedPipeline> committee;
  committee.reserve(specs.size());
  automl::ModelRaceReport report;  // reconstructed spec-only report
  for (const automl::Pipeline& spec : specs) {
    ADARTS_ASSIGN_OR_RETURN(automl::TrainedPipeline fitted,
                            automl::FitPipeline(spec, labeled));
    committee.push_back(std::move(fitted));
    report.elites.push_back({spec, {}, 0, 0, 0, 0});
  }
  ADARTS_ASSIGN_OR_RETURN(
      automl::VotingRecommender recommender,
      automl::VotingRecommender::FromPipelines(std::move(committee),
                                               labeled.num_classes));
  return Adarts(features::FeatureExtractor(fopts), std::move(recommender),
                std::move(report), std::move(pool), std::move(labeled));
}

}  // namespace adarts
