#include "adarts/stages.h"

#include <utility>

#include "cluster/incremental.h"
#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "ts/missing.h"

namespace adarts {

Result<ClusterStageState> ClusterStage(
    const std::vector<ts::TimeSeries>& corpus, const TrainOptions& options,
    ExecContext& ctx) {
  ClusterStageState state;
  StageTimer timer(&ctx.metrics(), "train.clustering_seconds");
  ADARTS_ASSIGN_OR_RETURN(
      state.clustering,
      cluster::IncrementalClustering(corpus, options.clustering, ctx));
  return state;
}

Result<LabelStageState> LabelStage(const std::vector<ts::TimeSeries>& corpus,
                                   const cluster::Clustering* clustering,
                                   const TrainOptions& options, Rng* rng,
                                   ExecContext& ctx) {
  LabelStageState state;
  {
    StageTimer labeling_timer(&ctx.metrics(), "train.labeling_seconds");
    if (clustering != nullptr) {
      ADARTS_ASSIGN_OR_RETURN(
          state.labels, labeling::LabelByClusters(corpus, *clustering,
                                                  options.labeling, ctx));
    } else {
      ADARTS_ASSIGN_OR_RETURN(
          state.labels,
          labeling::LabelSeriesFull(corpus, options.labeling, ctx));
    }
  }
  ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("LabelStage after labeling"));

  // Feature extraction from faulty copies of the corpus. Each series masks
  // with its own Rng, forked up front in index order on this thread, so the
  // extracted features are bit-identical regardless of thread count.
  state.extractor = features::FeatureExtractor(options.features);
  state.labeled.num_classes = static_cast<int>(state.labels.algorithms.size());
  state.labeled.labels = state.labels.labels;
  state.labeled.features.resize(corpus.size());
  std::vector<Rng> series_rngs = ExecContext::ForkRngs(rng, corpus.size());
  std::vector<Status> extract_status(corpus.size());
  {
    StageTimer features_timer(&ctx.metrics(), "train.features_seconds");
    ParallelFor(ctx, corpus.size(), [&](std::size_t i) {
      ts::TimeSeries masked = corpus[i];
      Status injected = ts::InjectPattern(options.labeling.pattern,
                                          options.labeling.missing_fraction,
                                          &series_rngs[i], &masked);
      if (!injected.ok()) {
        extract_status[i] = std::move(injected);
        return;
      }
      Result<la::Vector> f = state.extractor.Extract(masked);
      if (!f.ok()) {
        extract_status[i] = f.status();
        return;
      }
      state.labeled.features[i] = std::move(*f);
    });
  }
  // Cancellation skips iterations, leaving empty feature slots — bail out
  // before the dataset is read.
  ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("LabelStage feature extraction"));
  for (const Status& s : extract_status) {
    ADARTS_RETURN_NOT_OK(s);
  }
  return state;
}

Result<RaceStageState> RaceStage(const ml::Dataset& labeled,
                                 const automl::ModelRaceOptions& race_options,
                                 double race_train_fraction,
                                 const automl::RaceWarmStart* warm_start,
                                 Rng* rng, ExecContext& ctx,
                                 const char* span_name) {
  automl::ModelRaceOptions seeded = race_options;
  seeded.seed = rng->NextU64();
  ADARTS_ASSIGN_OR_RETURN(
      ml::TrainTestSplit split,
      ml::StratifiedSplit(labeled, race_train_fraction, rng));
  RaceStageState state;
  StageTimer race_timer(&ctx.metrics(), span_name);
  if (warm_start != nullptr && !warm_start->empty()) {
    ADARTS_ASSIGN_OR_RETURN(
        state.report, automl::RunModelRace(split.train, split.test, seeded,
                                           *warm_start, ctx));
  } else {
    ADARTS_ASSIGN_OR_RETURN(
        state.report,
        automl::RunModelRace(split.train, split.test, seeded, ctx));
  }
  return state;
}

Result<CommitteeStageState> CommitteeStage(
    const automl::ModelRaceReport& report, const ml::Dataset& labeled,
    ExecContext& ctx) {
  CommitteeStageState state;
  ADARTS_ASSIGN_OR_RETURN(
      state.recommender,
      automl::VotingRecommender::FromRace(report, labeled, ctx));
  return state;
}

}  // namespace adarts
