#ifndef ADARTS_ADARTS_STAGES_H_
#define ADARTS_ADARTS_STAGES_H_

#include <vector>

#include "adarts/adarts.h"
#include "automl/model_race.h"
#include "cluster/clustering.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "common/status.h"
#include "features/feature_extractor.h"
#include "labeling/labeler.h"
#include "ml/dataset.h"
#include "ts/time_series.h"

namespace adarts {

/// The four training phases of Fig. 2, decomposed into individually
/// callable stages. `Adarts::Train` is a thin composition of these — the
/// decomposition changes no behaviour: each stage consumes the shared
/// training `Rng` exactly as the monolithic implementation did, so a Train
/// rebuilt on stages is bit-identical to earlier builds. The stages exist
/// so partial pipelines can run on their own: `Adarts::AppendSeries` reuses
/// `RaceStage`/`CommitteeStage` (with cheaper assignment and labeling
/// front-ends) instead of re-running the full pipeline, and tests can
/// exercise one phase without paying for the rest.
///
/// Every stage runs on `ctx`'s shared pool, polls its cancellation token,
/// and owns its span in `ctx`'s metrics (`train.clustering_seconds`,
/// `train.labeling_seconds` + `train.features_seconds`,
/// `train.race_seconds`; the committee span is recorded by `FromRace`).

/// Output of the clustering phase (Algorithm 2).
struct ClusterStageState {
  cluster::Clustering clustering;
};

/// Groups the corpus by correlation via incremental clustering, under the
/// `train.clustering_seconds` span.
Result<ClusterStageState> ClusterStage(
    const std::vector<ts::TimeSeries>& corpus, const TrainOptions& options,
    ExecContext& ctx);

/// Output of the labeling + feature-extraction phase: per-series labels,
/// the masked-feature dataset ModelRace trains on, and the extractor the
/// engine will serve with.
struct LabelStageState {
  labeling::LabelingResult labels;
  ml::Dataset labeled;
  features::FeatureExtractor extractor;
};

/// Labels the corpus — via cluster representatives when `clustering` is
/// non-null, exhaustively otherwise — then extracts features from faulty
/// copies of every series (inference sees incomplete series, so training
/// features must too). Masking forks `rng` once per series in index order,
/// so the dataset is bit-identical regardless of thread count. Spans:
/// `train.labeling_seconds` and `train.features_seconds`.
Result<LabelStageState> LabelStage(const std::vector<ts::TimeSeries>& corpus,
                                   const cluster::Clustering* clustering,
                                   const TrainOptions& options, Rng* rng,
                                   ExecContext& ctx);

/// Output of the ModelRace phase.
struct RaceStageState {
  automl::ModelRaceReport report;
};

/// Splits `labeled` (consuming `rng` for the race seed then the stratified
/// split, in that order) and runs ModelRace under the `span_name` span
/// (`train.race_seconds` from Train, `update.race_seconds` from
/// AppendSeries). A non-null `warm_start` seeds the race with surviving
/// elites from a previous run instead of a cold random population.
Result<RaceStageState> RaceStage(const ml::Dataset& labeled,
                                 const automl::ModelRaceOptions& race_options,
                                 double race_train_fraction,
                                 const automl::RaceWarmStart* warm_start,
                                 Rng* rng, ExecContext& ctx,
                                 const char* span_name = "train.race_seconds");

/// Output of the committee phase: the gated soft-voting recommender.
struct CommitteeStageState {
  automl::VotingRecommender recommender;
};

/// Refits the race's gated elites on the full labeled dataset into the
/// soft-voting committee (`train.committee_seconds` span).
Result<CommitteeStageState> CommitteeStage(
    const automl::ModelRaceReport& report, const ml::Dataset& labeled,
    ExecContext& ctx);

}  // namespace adarts

#endif  // ADARTS_ADARTS_STAGES_H_
