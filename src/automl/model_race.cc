#include "automl/model_race.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "automl/synthesizer.h"
#include "common/cancellation.h"
#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "ml/metrics.h"

namespace adarts::automl {

namespace {

/// One fold's raw evaluation of a pipeline, before time normalisation.
struct FoldEval {
  double f1 = 0.0;
  double recall_at3 = 0.0;
  double seconds = 0.0;
  bool failed = false;
  bool timed_out = false;
};

FoldEval EvaluatePipelineOnFold(const Pipeline& spec,
                                const ml::Dataset& fold_train,
                                const ml::Dataset& test,
                                double budget_seconds) {
  FoldEval eval;
  Stopwatch watch;
  auto fitted = FitPipeline(spec, fold_train);
  if (!fitted.ok()) {
    eval.failed = true;
    return eval;
  }
  // The budget is cooperative: checked after the fit and after prediction,
  // never preemptively, so a candidate can overshoot by one phase.
  if (budget_seconds > 0.0 && watch.ElapsedSeconds() > budget_seconds) {
    eval.failed = true;
    eval.timed_out = true;
    return eval;
  }
  const std::vector<la::Vector> probas =
      [&] {
        std::vector<la::Vector> out;
        out.reserve(test.size());
        for (const auto& f : test.features) {
          out.push_back(fitted->PredictProba(f));
        }
        return out;
      }();
  eval.seconds = watch.ElapsedSeconds();
  if (budget_seconds > 0.0 && eval.seconds > budget_seconds) {
    eval.failed = true;
    eval.timed_out = true;
    return eval;
  }

  std::vector<int> preds(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    preds[i] = static_cast<int>(
        std::max_element(probas[i].begin(), probas[i].end()) -
        probas[i].begin());
  }
  auto report =
      ml::ComputeClassificationReport(test.labels, preds, test.num_classes);
  auto r3 = ml::RecallAtK(test.labels, probas, 3);
  if (!report.ok() || !r3.ok()) {
    eval.failed = true;
    return eval;
  }
  eval.f1 = report->f1;
  eval.recall_at3 = *r3;
  return eval;
}

double Score(const ModelRaceOptions& options, double f1, double r3,
             double normalized_time) {
  return (options.alpha * f1 + options.beta * r3 -
          options.gamma * normalized_time) /
         (options.alpha + options.beta + options.gamma);
}

void Refresh(RacedPipeline* rp) {
  // Recency-weighted mean: later scores come from larger partial training
  // sets and are more predictive of final-model quality, so they weigh
  // more (linear ramp).
  if (rp->scores.empty()) {
    rp->mean_score = 0.0;
    return;
  }
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < rp->scores.size(); ++i) {
    const double w = static_cast<double>(i + 1);
    num += w * rp->scores[i];
    den += w;
  }
  rp->mean_score = num / den;
}

/// The shared race body. `warm_start` (nullable) seeds the elite set so the
/// first iteration races incumbents + children instead of the seed grid;
/// a null or empty warm start reproduces the cold race bit-for-bit.
Result<ModelRaceReport> RunModelRaceImpl(const ml::Dataset& train,
                                         const ml::Dataset& test,
                                         const ModelRaceOptions& options,
                                         const RaceWarmStart* warm_start,
                                         ExecContext& ctx) {
  ADARTS_RETURN_NOT_OK(train.Validate());
  ADARTS_RETURN_NOT_OK(test.Validate());
  if (options.num_partial_sets == 0 || options.num_folds < 2) {
    return Status::InvalidArgument("need >= 1 partial set and >= 2 folds");
  }
  ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("ModelRace start"));

  Stopwatch total_watch;
  StageTimer race_timer(&ctx.metrics(), "race.total_seconds");
  // Hoisted once: fold-evaluation latencies stream into this histogram
  // lock-free from every worker (DESIGN.md §9).
  LatencyHistogram* const eval_hist = ctx.metrics().histogram("race.eval");
  // Elimination instants mark *when* a pipeline left the race on the trace
  // timeline; the detail carries the reason and the spec.
  const auto trace_elimination = [](const char* reason, const Pipeline& spec) {
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("race.eliminate",
                           std::string(reason) + " " + spec.ToString());
    }
  };
  Rng rng(options.seed);
  Synthesizer synth(rng.NextU64());
  ModelRaceReport report;

  ADARTS_ASSIGN_OR_RETURN(
      std::vector<ml::Dataset> partials,
      ml::GrowingPartialSets(train, options.num_partial_sets, &rng));

  std::vector<RacedPipeline> elites;
  if (warm_start != nullptr && !warm_start->elites.empty()) {
    // Incumbents enter with their accumulated fold-score history; the
    // max_survivors cap applies here too so a hand-assembled warm start
    // cannot inflate the candidate pool beyond what the race would keep.
    for (const RacedPipeline& e : warm_start->elites) {
      if (elites.size() >= options.max_survivors) break;
      elites.push_back(e);
    }
  }
  std::size_t iterations_raced = 0;

  for (std::size_t iter = 0; iter < partials.size(); ++iter) {
    ADARTS_FAILPOINT("automl.race.iteration");
    ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("ModelRace iteration"));
    const ml::Dataset& s_i = partials[iter];

    // A partial set below 4 samples cannot support a 2-fold split whose
    // train sides hold at least 2 samples each — StratifiedKFoldIndices
    // would be asked for more folds than samples, or fold-train splits
    // would degenerate to a single class. Skip the iteration; later (larger)
    // partials carry the race.
    if (s_i.size() < 4) continue;
    ++iterations_raced;

    // --- Synthesize candidates (line 3): seeds in the first iteration,
    // children of elites afterwards; elites keep racing with their history.
    std::vector<RacedPipeline> candidates;
    if (elites.empty()) {
      for (Pipeline& p : synth.SeedPipelines(options.num_seed_pipelines)) {
        candidates.push_back({std::move(p), {}, 0, 0, 0, 0});
      }
    } else {
      std::vector<Pipeline> parent_specs;
      parent_specs.reserve(elites.size());
      for (const auto& e : elites) parent_specs.push_back(e.spec);
      candidates = std::move(elites);
      for (Pipeline& p :
           synth.Synthesize(parent_specs, options.synth_per_elite)) {
        candidates.push_back({std::move(p), {}, 0, 0, 0, 0});
      }
    }

    // --- Stratified folds over the current partial set (line 5). Clamp k so
    // every fold keeps at least 2 samples; the size-4 guard above ensures
    // the clamp never has to go below 2.
    const std::size_t k =
        std::max<std::size_t>(2, std::min(options.num_folds, s_i.size() / 2));
    auto folds_result = ml::StratifiedKFoldIndices(s_i, k, &rng);
    if (!folds_result.ok()) {
      return folds_result.status();
    }
    const auto& folds = *folds_result;

    std::vector<bool> active(candidates.size(), true);
    std::vector<double> fold_counts(candidates.size(), 0.0);
    std::vector<double> f1_acc(candidates.size(), 0.0);
    std::vector<double> r3_acc(candidates.size(), 0.0);
    std::vector<double> time_acc(candidates.size(), 0.0);

    for (std::size_t fold = 0; fold < folds.size(); ++fold) {
      ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("ModelRace fold"));
      // Standard k-fold usage: train on the complement of the held-out
      // fold, score on the held-out fold. Scoring each fold on its own
      // held-out data keeps the per-fold scores (approximately)
      // independent, which the pairwise t-tests of the pruning phase rely
      // on; the external test set T is reserved for the final elite stats.
      std::vector<std::size_t> train_indices;
      for (std::size_t other = 0; other < folds.size(); ++other) {
        if (other == fold) continue;
        train_indices.insert(train_indices.end(), folds[other].begin(),
                             folds[other].end());
      }
      const ml::Dataset fold_train = s_i.Subset(train_indices);
      const ml::Dataset fold_eval = s_i.Subset(folds[fold]);
      if (fold_train.empty() || fold_eval.empty()) continue;

      // Evaluate every active candidate on this fold (lines 6-8), in
      // parallel: fitting touches no shared state (each candidate builds its
      // own scaler and classifier, seeded from its spec), so the only
      // cross-candidate effects — the evaluation counter and the fold's
      // total time — are folded in a serial post-pass over pre-sized,
      // index-addressed slots.
      std::vector<std::size_t> to_eval;
      to_eval.reserve(candidates.size());
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (active[c]) to_eval.push_back(c);
      }
      std::vector<FoldEval> evals(candidates.size());
      TraceSpan fold_span("race.fold");
      if (fold_span.enabled()) {
        fold_span.SetDetail("iter=" + std::to_string(iter) +
                            " fold=" + std::to_string(fold) +
                            " candidates=" + std::to_string(to_eval.size()));
      }
      ParallelFor(ctx, to_eval.size(), [&](std::size_t t) {
        const std::size_t c = to_eval[t];
        TraceSpan span("race.eval");
        if (span.enabled()) span.SetDetail(candidates[c].spec.ToString());
        evals[c] = EvaluatePipelineOnFold(candidates[c].spec, fold_train,
                                          fold_eval,
                                          options.candidate_budget_seconds);
        if (!evals[c].failed) eval_hist->RecordSeconds(evals[c].seconds);
      });
      fold_span.Stop();
      // An expired token makes ParallelFor skip remaining iterations, so
      // `evals` may hold default (unevaluated) slots — bail out before
      // reading them.
      ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("ModelRace evaluation"));
      report.pipelines_evaluated += to_eval.size();
      double total_time = 1e-9;
      std::size_t fold_successes = 0;
      for (std::size_t c : to_eval) {
        if (!evals[c].failed) {
          total_time += evals[c].seconds;
          ++fold_successes;
        }
      }

      // Score with runtime normalised within the fold (line 9). The
      // normaliser is the fold's total evaluation time, so the penalty is a
      // pipeline's *share* of the round: it separates grossly expensive
      // configurations without disqualifying moderately slower ones. With
      // fewer than two scored candidates a "share" is meaningless — the sole
      // survivor's share is ~1.0, the maximum penalty, which would make its
      // score history incomparable across folds and pollute the phase-two
      // t-tests — so the penalty is skipped entirely.
      const bool time_penalty = fold_successes >= 2;
      double best_score = -1e300;
      std::vector<double> fold_scores(candidates.size(), -1e300);
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (!active[c]) continue;
        if (evals[c].failed) {
          active[c] = false;  // a failing configuration leaves the race
          if (evals[c].timed_out) {
            ++report.pipelines_timed_out;
            report.eliminations.push_back(
                {candidates[c].spec.ToString(), EliminationReason::kTimedOut});
            trace_elimination("timed_out", candidates[c].spec);
          } else {
            ++report.pipelines_pruned_early;
            report.eliminations.push_back(
                {candidates[c].spec.ToString(), EliminationReason::kFailedFit});
            trace_elimination("failed_fit", candidates[c].spec);
          }
          continue;
        }
        const double sc =
            Score(options, evals[c].f1, evals[c].recall_at3,
                  time_penalty ? evals[c].seconds / total_time : 0.0);
        fold_scores[c] = sc;
        candidates[c].scores.push_back(sc);
        f1_acc[c] += evals[c].f1;
        r3_acc[c] += evals[c].recall_at3;
        time_acc[c] += evals[c].seconds;
        fold_counts[c] += 1.0;
        best_score = std::max(best_score, sc);
      }

      // Early termination (lines 11-12): drop clear stragglers.
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (!active[c]) continue;
        if (fold_scores[c] < best_score - options.early_termination_margin) {
          active[c] = false;
          ++report.pipelines_pruned_early;
          report.eliminations.push_back({candidates[c].spec.ToString(),
                                         EliminationReason::kEarlyTermination});
          trace_elimination("early_termination", candidates[c].spec);
        }
      }

      // Counter track: how many candidates are still racing after this fold.
      Tracer& tracer = Tracer::Global();
      if (tracer.enabled()) {
        std::size_t still_active = 0;
        for (std::size_t c = 0; c < candidates.size(); ++c) {
          if (active[c]) ++still_active;
        }
        tracer.RecordCounter("race.active",
                             static_cast<double>(still_active));
      }
    }

    // Update running means for the survivors of the fold loop.
    std::vector<RacedPipeline> survivors;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (!active[c] || candidates[c].scores.empty()) continue;
      RacedPipeline rp = std::move(candidates[c]);
      Refresh(&rp);
      if (fold_counts[c] > 0.0) {
        rp.mean_f1 = f1_acc[c] / fold_counts[c];
        rp.mean_recall_at3 = r3_acc[c] / fold_counts[c];
        rp.mean_time_seconds = time_acc[c] / fold_counts[c];
      }
      survivors.push_back(std::move(rp));
    }
    std::sort(survivors.begin(), survivors.end(),
              [](const RacedPipeline& a, const RacedPipeline& b) {
                return a.mean_score > b.mean_score;
              });

    // --- Second-phase pruning (line 13): pairwise t-tests. The lower-mean
    // pipeline of a pair is eliminated when it is either statistically
    // worse (confirmed loser) or statistically indistinguishable
    // (redundant); only genuinely ambiguous variations survive, which is
    // the diversity the soft vote relies on.
    std::vector<bool> keep(survivors.size(), true);
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      if (!keep[i]) continue;
      for (std::size_t j = i + 1; j < survivors.size(); ++j) {
        if (!keep[j]) continue;
        const double p =
            ml::WelchTTestPValue(survivors[i].scores, survivors[j].scores);
        if (p < options.ttest_worse_pvalue ||
            p > options.ttest_similarity_pvalue) {
          keep[j] = false;
          ++report.pipelines_pruned_ttest;
          report.eliminations.push_back({survivors[j].spec.ToString(),
                                         EliminationReason::kTTestPruned});
          trace_elimination("ttest_pruned", survivors[j].spec);
        }
      }
    }
    elites.clear();
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      if (keep[i] && elites.size() < options.max_survivors) {
        elites.push_back(std::move(survivors[i]));
      }
    }
    if (elites.empty() && !survivors.empty()) {
      // Never lose the race entirely: keep the single best.
      elites.push_back(std::move(survivors[0]));
    }
  }

  if (iterations_raced == 0) {
    return Status::InvalidArgument(
        "every partial set holds < 4 samples; provide more training data or "
        "fewer partial sets");
  }
  if (elites.empty()) {
    if (report.pipelines_timed_out > 0) {
      return Status::DeadlineExceeded(
          "ModelRace eliminated every pipeline; " +
          std::to_string(report.pipelines_timed_out) +
          " evaluations exceeded the candidate budget of " +
          std::to_string(options.candidate_budget_seconds) + "s");
    }
    return Status::Internal("ModelRace eliminated every pipeline");
  }
  report.elites = std::move(elites);
  report.elapsed_seconds = total_watch.ElapsedSeconds();
  Metrics& metrics = ctx.metrics();
  metrics.Increment("race.pipelines_evaluated", report.pipelines_evaluated);
  metrics.Increment("race.pipelines_eliminated", report.eliminations.size());
  metrics.Increment("race.pipelines_timed_out", report.pipelines_timed_out);
  return report;
}

}  // namespace

Result<ModelRaceReport> RunModelRace(const ml::Dataset& train,
                                     const ml::Dataset& test,
                                     const ModelRaceOptions& options) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ExecContext ctx(options.num_threads, options.cancel);
#pragma GCC diagnostic pop
  return RunModelRace(train, test, options, ctx);
}

Result<ModelRaceReport> RunModelRace(const ml::Dataset& train,
                                     const ml::Dataset& test,
                                     const ModelRaceOptions& options,
                                     ExecContext& ctx) {
  return RunModelRaceImpl(train, test, options, nullptr, ctx);
}

Result<ModelRaceReport> RunModelRace(const ml::Dataset& train,
                                     const ml::Dataset& test,
                                     const ModelRaceOptions& options,
                                     const RaceWarmStart& warm_start,
                                     ExecContext& ctx) {
  return RunModelRaceImpl(train, test, options, &warm_start, ctx);
}

}  // namespace adarts::automl
