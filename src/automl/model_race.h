#ifndef ADARTS_AUTOML_MODEL_RACE_H_
#define ADARTS_AUTOML_MODEL_RACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "automl/pipeline.h"
#include "common/status.h"
#include "ml/dataset.h"

namespace adarts {
class CancellationToken;
class ExecContext;
}  // namespace adarts

namespace adarts::automl {

/// Configuration of ModelRace (Algorithm 1).
struct ModelRaceOptions {
  /// |Theta|: seed pipelines (>= one per classifier family is enforced).
  std::size_t num_seed_pipelines = 24;
  /// m = |S|: growing partial training sets consumed by the outer loop.
  std::size_t num_partial_sets = 4;
  /// k of the stratified k-fold evaluation inside each iteration.
  std::size_t num_folds = 3;
  /// Scoring coefficients of line 9: score = (a*F1 + b*R@3 - g*time)/(a+b+g).
  double alpha = 0.5;
  double beta = 0.5;
  double gamma = 0.75;
  /// Early termination (lines 11-12): a pipeline whose fold score trails the
  /// fold's best by more than this margin leaves the race immediately.
  double early_termination_margin = 0.15;
  /// Second-phase pruning (line 13, irace-style): for each pipeline pair a
  /// Welch t-test compares the score distributions. p-value below
  /// `ttest_worse_pvalue` = the lower-mean pipeline is statistically worse
  /// and is eliminated; p-value above `ttest_similarity_pvalue` = the two
  /// are redundant and the lower mean is eliminated. Pipelines in the
  /// ambiguous band survive — that is the diversity the voting relies on.
  double ttest_worse_pvalue = 0.05;
  double ttest_similarity_pvalue = 0.4;
  /// Children generated per surviving elite each iteration.
  std::size_t synth_per_elite = 3;
  /// Cap on the number of surviving pipelines per iteration.
  std::size_t max_survivors = 10;
  std::uint64_t seed = 7;
  /// Worker threads for the per-fold candidate evaluations. Ignored when an
  /// explicit `ExecContext` is passed — the context's pool is used instead.
  /// Reports and elites are bit-identical for every value (timing fields
  /// aside); see the determinism contract in common/thread_pool.h.
  [[deprecated(
      "pass an ExecContext to RunModelRace instead")]] std::size_t
      num_threads = 0;
  /// Per-candidate wall-clock budget for a single fold evaluation
  /// (fit + predict), in seconds. A candidate that exceeds it is recorded
  /// as timed out and leaves the race. 0 (the default) disables the budget.
  /// Enabling it makes elimination wall-clock-dependent, which forfeits
  /// bit-determinism across runs and thread counts (DESIGN.md §7).
  double candidate_budget_seconds = 0.0;
  /// Optional cooperative cancellation/deadline token, polled between
  /// iterations and folds and inside the parallel evaluation loop. Not
  /// owned; must outlive the race. Ignored when an explicit `ExecContext`
  /// is passed — the context's token is used instead.
  [[deprecated(
      "pass an ExecContext (carrying the token) to RunModelRace "
      "instead")]] const CancellationToken* cancel = nullptr;

  // Spelled-out defaulted special members inside a diagnostic guard:
  // default-constructing/copying the options must not itself warn about the
  // deprecated fields — only direct reads and writes of them do.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ModelRaceOptions() = default;
  ModelRaceOptions(const ModelRaceOptions&) = default;
  ModelRaceOptions& operator=(const ModelRaceOptions&) = default;
  ModelRaceOptions(ModelRaceOptions&&) = default;
  ModelRaceOptions& operator=(ModelRaceOptions&&) = default;
#pragma GCC diagnostic pop
};

/// A pipeline together with its accumulated race statistics.
struct RacedPipeline {
  Pipeline spec;
  la::Vector scores;  ///< one entry per evaluated fold (all iterations)
  double mean_score = 0.0;
  double mean_f1 = 0.0;
  double mean_recall_at3 = 0.0;
  double mean_time_seconds = 0.0;
};

/// Why a pipeline left the race.
enum class EliminationReason {
  kFailedFit,         ///< fit or scoring returned an error
  kEarlyTermination,  ///< trailed the fold's best beyond the margin
  kTTestPruned,       ///< statistically worse or redundant (phase two)
  kTimedOut,          ///< exceeded `candidate_budget_seconds` on a fold
};

/// One elimination event, in the order the race recorded it.
struct Elimination {
  std::string pipeline;  ///< Pipeline::ToString() of the eliminated spec
  EliminationReason reason = EliminationReason::kFailedFit;
};

/// Prior knowledge carried into an incremental re-race: the surviving
/// elites of an earlier race, with their full fold-score histories. A race
/// seeded from a warm start skips the seed grid entirely — its first
/// iteration races the incumbents plus their synthesized children — while
/// the incumbents stay subject to the normal elimination machinery
/// (early-termination margins, t-test pruning, failed fits), so a stale
/// elite that stops winning on the grown data leaves the race like any
/// other candidate. The carried score history feeds the recency-weighted
/// mean, so fresh folds on the new data dominate an incumbent's ranking.
struct RaceWarmStart {
  std::vector<RacedPipeline> elites;

  bool empty() const { return elites.empty(); }
};

/// Outcome of one ModelRace run.
struct ModelRaceReport {
  /// Theta-elite: the surviving pipelines, best mean score first.
  std::vector<RacedPipeline> elites;
  std::size_t pipelines_evaluated = 0;
  std::size_t pipelines_pruned_early = 0;
  std::size_t pipelines_pruned_ttest = 0;
  std::size_t pipelines_timed_out = 0;
  /// Every elimination with its reason, in deterministic race order.
  std::vector<Elimination> eliminations;
  double elapsed_seconds = 0.0;
};

/// Runs ModelRace: iterates over growing partial training sets, synthesizes
/// children of the surviving elites, trains every candidate per stratified
/// fold, scores with the weighted F1/R@3/runtime objective, early-terminates
/// stragglers per fold, and prunes statistically redundant pipelines per
/// iteration. `train` provides the partial sets; `test` is the fixed
/// evaluation set T of Algorithm 1.
Result<ModelRaceReport> RunModelRace(const ml::Dataset& train,
                                     const ml::Dataset& test,
                                     const ModelRaceOptions& options = {});

/// Context variant: fold evaluations fan out on `ctx`'s shared pool, the
/// context's cancellation token is polled at the documented sites, and
/// `ctx`'s metrics gain the `race.total_seconds` span plus the
/// `race.pipelines_evaluated` / `race.pipelines_eliminated` /
/// `race.pipelines_timed_out` counters. The legacy overload delegates here
/// with a default context built from the deprecated `num_threads`/`cancel`
/// fields.
Result<ModelRaceReport> RunModelRace(const ml::Dataset& train,
                                     const ml::Dataset& test,
                                     const ModelRaceOptions& options,
                                     ExecContext& ctx);

/// Warm-started variant: the race's elite set is initialised from
/// `warm_start` instead of starting empty, so the first iteration synthesizes
/// children of the incumbents rather than racing the full seed grid. With an
/// empty warm start this is bit-identical to the cold overload. The returned
/// report's elites are the natural warm start for the *next* incremental
/// race (Adarts::AppendSeries persists them in the snapshot).
Result<ModelRaceReport> RunModelRace(const ml::Dataset& train,
                                     const ml::Dataset& test,
                                     const ModelRaceOptions& options,
                                     const RaceWarmStart& warm_start,
                                     ExecContext& ctx);

}  // namespace adarts::automl

#endif  // ADARTS_AUTOML_MODEL_RACE_H_
