#include "automl/pipeline.h"

#include <sstream>

#include "common/failpoint.h"

namespace adarts::automl {

std::string Pipeline::ToString() const {
  std::ostringstream os;
  os << ml::ClassifierKindToString(classifier) << "(";
  bool first = true;
  for (const auto& [name, value] : params) {
    if (name == "seed") continue;
    if (!first) os << ",";
    os << name << "=" << value;
    first = false;
  }
  os << ")+" << ml::ScalerKindToString(scaler);
  if (scaler == ml::ScalerKind::kPca) os << "(" << scaler_param << ")";
  return os.str();
}

la::Vector TrainedPipeline::PredictProba(const la::Vector& features) const {
  return classifier->PredictProba(scaler->Transform(features));
}

Result<TrainedPipeline> FitPipeline(const Pipeline& spec,
                                    const ml::Dataset& train) {
  ADARTS_FAILPOINT("automl.pipeline.fit");
  ADARTS_RETURN_NOT_OK(train.Validate());
  TrainedPipeline fitted;
  fitted.spec = spec;
  fitted.scaler = ml::CreateScaler(spec.scaler, spec.scaler_param);
  if (fitted.scaler == nullptr) {
    return Status::Internal("unknown scaler kind");
  }
  ADARTS_RETURN_NOT_OK(fitted.scaler->Fit(train.features));

  ml::Dataset scaled;
  scaled.num_classes = train.num_classes;
  scaled.labels = train.labels;
  scaled.features = fitted.scaler->TransformBatch(train.features);

  fitted.classifier = ml::CreateClassifier(spec.classifier, spec.params);
  if (fitted.classifier == nullptr) {
    return Status::Internal("unknown classifier kind");
  }
  ADARTS_RETURN_NOT_OK(fitted.classifier->Fit(scaled));
  return fitted;
}

}  // namespace adarts::automl
