#ifndef ADARTS_AUTOML_PIPELINE_H_
#define ADARTS_AUTOML_PIPELINE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/scaler.h"

namespace adarts::automl {

/// A pipeline is the unit ModelRace races: a tuple <classifier,
/// hyperparameters, feature scaler> (Section V-A). Pipelines are cheap
/// value objects; training materialises them into TrainedPipeline.
struct Pipeline {
  ml::ClassifierKind classifier = ml::ClassifierKind::kKnn;
  ml::HyperParams params;  ///< resolved against the classifier's spec
  ml::ScalerKind scaler = ml::ScalerKind::kStandard;
  double scaler_param = 0.5;  ///< e.g. PCA keep-fraction
  std::uint64_t id = 0;       ///< unique within one race, for bookkeeping

  /// "knn(k=5,weight_by_distance=1)+standard" style description.
  std::string ToString() const;
};

/// A pipeline fitted on concrete training data: the scaler's statistics and
/// the classifier's model. Move-only (owns the models).
struct TrainedPipeline {
  Pipeline spec;
  std::unique_ptr<ml::Scaler> scaler;
  std::unique_ptr<ml::Classifier> classifier;

  /// Class-probability prediction for raw (unscaled) features.
  la::Vector PredictProba(const la::Vector& features) const;
};

/// Fits `spec` on `train`: fits the scaler, transforms, fits the classifier.
Result<TrainedPipeline> FitPipeline(const Pipeline& spec,
                                    const ml::Dataset& train);

}  // namespace adarts::automl

#endif  // ADARTS_AUTOML_PIPELINE_H_
