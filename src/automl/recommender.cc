#include "automl/recommender.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace adarts::automl {

namespace {

/// Refits the selected elites on `full_train`, one pool task per elite, and
/// returns the successful fits in selection order (failed fits are skipped,
/// matching the serial loop). Slot-indexed results keep the committee order
/// independent of scheduling.
std::vector<TrainedPipeline> FitElites(const ModelRaceReport& report,
                                       const std::vector<std::size_t>& selected,
                                       const ml::Dataset& full_train,
                                       ThreadPool* pool, Metrics* metrics) {
  // Nullable registry: the pool-only FromRace overload has no context to
  // record into, so the histogram handle degrades to nothing.
  LatencyHistogram* const refit_hist =
      metrics == nullptr ? nullptr : metrics->histogram("committee.refit");
  std::vector<std::optional<TrainedPipeline>> fits(selected.size());
  ParallelFor(pool, selected.size(), [&](std::size_t s) {
    TraceSpan span("committee.refit");
    if (span.enabled()) {
      span.SetDetail(report.elites[selected[s]].spec.ToString());
    }
    Stopwatch watch;
    auto fitted = FitPipeline(report.elites[selected[s]].spec, full_train);
    if (refit_hist != nullptr) refit_hist->RecordSeconds(watch.ElapsedSeconds());
    if (fitted.ok()) fits[s] = std::move(*fitted);
  });
  std::vector<TrainedPipeline> committee;
  committee.reserve(selected.size());
  for (auto& fit : fits) {
    if (fit.has_value()) committee.push_back(std::move(*fit));
  }
  return committee;
}

/// Shared implementation of the two FromRace overloads: `metrics` is the
/// optional registry the per-elite refit latencies stream into.
Result<VotingRecommender> FromRaceImpl(const ModelRaceReport& report,
                                       const ml::Dataset& full_train,
                                       ThreadPool* pool, Metrics* metrics) {
  ADARTS_RETURN_NOT_OK(full_train.Validate());
  if (report.elites.empty()) {
    return Status::InvalidArgument("race produced no elites");
  }
  // Quality gate: diversity helps the vote only among pipelines of
  // comparable strength; stragglers that survived the t-test's ambiguity
  // band would dilute the committee.
  double best_score = report.elites[0].mean_score;
  for (const RacedPipeline& elite : report.elites) {
    best_score = std::max(best_score, elite.mean_score);
  }
  std::vector<std::size_t> gated;
  for (std::size_t i = 0; i < report.elites.size(); ++i) {
    if (report.elites[i].mean_score >= best_score - 0.1) gated.push_back(i);
  }
  std::vector<TrainedPipeline> committee =
      FitElites(report, gated, full_train, pool, metrics);
  if (committee.empty()) {
    // Gate removed everything fit-able: fall back to the ungated elites.
    std::vector<std::size_t> all(report.elites.size());
    std::iota(all.begin(), all.end(), 0);
    committee = FitElites(report, all, full_train, pool, metrics);
  }
  if (committee.empty()) {
    return Status::Internal("no elite pipeline could be fitted on full data");
  }
  return VotingRecommender::FromPipelines(std::move(committee),
                                          full_train.num_classes);
}

}  // namespace

Result<VotingRecommender> VotingRecommender::FromRace(
    const ModelRaceReport& report, const ml::Dataset& full_train,
    ThreadPool* pool) {
  return FromRaceImpl(report, full_train, pool, nullptr);
}

Result<VotingRecommender> VotingRecommender::FromRace(
    const ModelRaceReport& report, const ml::Dataset& full_train,
    ExecContext& ctx) {
  StageTimer timer(&ctx.metrics(), "train.committee_seconds");
  // Serial contexts never construct the shared pool; parallel ones reuse it.
  ThreadPool* pool = nullptr;
  if (ThreadPool::ResolveThreadCount(ctx.num_threads()) > 1) {
    pool = &ctx.pool();
  }
  return FromRaceImpl(report, full_train, pool, &ctx.metrics());
}

Result<VotingRecommender> VotingRecommender::FromPipelines(
    std::vector<TrainedPipeline> committee, int num_classes) {
  if (committee.empty()) {
    return Status::InvalidArgument("empty committee");
  }
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  VotingRecommender rec;
  rec.num_classes_ = num_classes;
  rec.committee_ = std::move(committee);
  return rec;
}

la::Vector VotingRecommender::PredictProba(const la::Vector& features,
                                           VoteDiagnostics* diagnostics) const {
  la::Vector acc(static_cast<std::size_t>(num_classes_), 0.0);
  std::size_t voters = 0;
  std::size_t failed = 0;
  for (const TrainedPipeline& member : committee_) {
    if (ADARTS_FAILPOINT_TRIGGERS("automl.vote.member")) {
      ++failed;
      continue;
    }
    const la::Vector p = member.PredictProba(features);
    const bool malformed =
        p.size() != acc.size() ||
        std::any_of(p.begin(), p.end(),
                    [](double v) { return !std::isfinite(v); });
    if (malformed) {
      // A poisoned member (NaN probabilities, wrong class count) must not
      // contaminate the vote; the committee degrades instead of failing.
      ++failed;
      continue;
    }
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
    ++voters;
  }
  if (diagnostics != nullptr) {
    diagnostics->members_total = committee_.size();
    diagnostics->members_failed = failed;
    if (voters == 0) {
      diagnostics->level = DegradationLevel::kDefaultClass;
    } else if (failed == 0) {
      diagnostics->level = DegradationLevel::kFullCommittee;
    } else if (voters == 1) {
      diagnostics->level = DegradationLevel::kSingleElite;
    } else {
      diagnostics->level = DegradationLevel::kPartialCommittee;
    }
  }
  if (voters == 0) return {};
  for (double& v : acc) v /= static_cast<double>(voters);
  return acc;
}

int VotingRecommender::Recommend(const la::Vector& features) const {
  const la::Vector p = PredictProba(features);
  if (p.empty()) return 0;  // total vote failure; callers wanting the full
                            // ladder use PredictProba + diagnostics
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<int> VotingRecommender::Ranking(const la::Vector& features) const {
  const la::Vector p = PredictProba(features);
  if (p.empty()) {
    std::vector<int> order(static_cast<std::size_t>(num_classes_));
    std::iota(order.begin(), order.end(), 0);
    return order;
  }
  std::vector<int> order(p.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return p[static_cast<std::size_t>(a)] > p[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace adarts::automl
