#include "automl/recommender.h"

#include <algorithm>
#include <numeric>

namespace adarts::automl {

Result<VotingRecommender> VotingRecommender::FromRace(
    const ModelRaceReport& report, const ml::Dataset& full_train) {
  ADARTS_RETURN_NOT_OK(full_train.Validate());
  if (report.elites.empty()) {
    return Status::InvalidArgument("race produced no elites");
  }
  VotingRecommender rec;
  rec.num_classes_ = full_train.num_classes;
  // Quality gate: diversity helps the vote only among pipelines of
  // comparable strength; stragglers that survived the t-test's ambiguity
  // band would dilute the committee.
  double best_score = report.elites[0].mean_score;
  for (const RacedPipeline& elite : report.elites) {
    best_score = std::max(best_score, elite.mean_score);
  }
  for (const RacedPipeline& elite : report.elites) {
    if (elite.mean_score < best_score - 0.1) continue;
    auto fitted = FitPipeline(elite.spec, full_train);
    if (!fitted.ok()) continue;  // skip configurations that fail on full data
    rec.committee_.push_back(std::move(*fitted));
  }
  if (rec.committee_.empty()) {
    // Gate removed everything fit-able: fall back to the ungated elites.
    for (const RacedPipeline& elite : report.elites) {
      auto fitted = FitPipeline(elite.spec, full_train);
      if (fitted.ok()) rec.committee_.push_back(std::move(*fitted));
    }
  }
  if (rec.committee_.empty()) {
    return Status::Internal("no elite pipeline could be fitted on full data");
  }
  return rec;
}

Result<VotingRecommender> VotingRecommender::FromPipelines(
    std::vector<TrainedPipeline> committee, int num_classes) {
  if (committee.empty()) {
    return Status::InvalidArgument("empty committee");
  }
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  VotingRecommender rec;
  rec.num_classes_ = num_classes;
  rec.committee_ = std::move(committee);
  return rec;
}

la::Vector VotingRecommender::PredictProba(const la::Vector& features) const {
  la::Vector acc(static_cast<std::size_t>(num_classes_), 0.0);
  for (const TrainedPipeline& member : committee_) {
    const la::Vector p = member.PredictProba(features);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  for (double& v : acc) v /= static_cast<double>(committee_.size());
  return acc;
}

int VotingRecommender::Recommend(const la::Vector& features) const {
  const la::Vector p = PredictProba(features);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<int> VotingRecommender::Ranking(const la::Vector& features) const {
  const la::Vector p = PredictProba(features);
  std::vector<int> order(p.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return p[static_cast<std::size_t>(a)] > p[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace adarts::automl
