#ifndef ADARTS_AUTOML_RECOMMENDER_H_
#define ADARTS_AUTOML_RECOMMENDER_H_

#include <vector>

#include "automl/model_race.h"
#include "automl/pipeline.h"
#include "common/status.h"
#include "ml/dataset.h"

namespace adarts {
class ThreadPool;
}

namespace adarts::automl {

/// The inference side of A-DARTS (Fig. 2, steps 6-7): the winning pipelines,
/// re-fitted on the full training data, vote softly — the probability matrix
/// is averaged per class and the class with the highest mean wins.
class VotingRecommender {
 public:
  /// Fits every elite of `report` on `full_train` and assembles the voter.
  /// Elite refits are independent; with a `pool` they run concurrently, each
  /// into its own slot, and the committee is collected in elite order in a
  /// serial post-pass — the assembled voter is bit-identical to the serial
  /// one for every pool size (nullptr runs serially).
  static Result<VotingRecommender> FromRace(const ModelRaceReport& report,
                                            const ml::Dataset& full_train,
                                            ThreadPool* pool = nullptr);

  /// Assembles a voter from already-fitted pipelines (deserialization path).
  static Result<VotingRecommender> FromPipelines(
      std::vector<TrainedPipeline> committee, int num_classes);

  /// Average per-class probability over the committee.
  la::Vector PredictProba(const la::Vector& features) const;

  /// The recommended class (argmax of the soft vote).
  int Recommend(const la::Vector& features) const;

  /// Classes sorted by descending soft-vote probability (for MRR).
  std::vector<int> Ranking(const la::Vector& features) const;

  std::size_t committee_size() const { return committee_.size(); }
  const std::vector<TrainedPipeline>& committee() const { return committee_; }

 private:
  std::vector<TrainedPipeline> committee_;
  int num_classes_ = 0;
};

}  // namespace adarts::automl

#endif  // ADARTS_AUTOML_RECOMMENDER_H_
