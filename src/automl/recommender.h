#ifndef ADARTS_AUTOML_RECOMMENDER_H_
#define ADARTS_AUTOML_RECOMMENDER_H_

#include <vector>

#include "automl/model_race.h"
#include "automl/pipeline.h"
#include "common/status.h"
#include "ml/dataset.h"

namespace adarts {
class ExecContext;
class ThreadPool;
}  // namespace adarts

namespace adarts::automl {

/// How far the inference path had to fall down the degradation ladder
/// (DESIGN.md §7): full committee → partial committee (failing members
/// skipped) → single surviving elite → corpus-majority default class.
enum class DegradationLevel {
  kFullCommittee,
  kPartialCommittee,
  kSingleElite,
  kDefaultClass,
};

/// Per-vote health report: how many committee members contributed and how
/// degraded the answer is.
struct VoteDiagnostics {
  std::size_t members_total = 0;
  std::size_t members_failed = 0;
  DegradationLevel level = DegradationLevel::kFullCommittee;
};

/// The inference side of A-DARTS (Fig. 2, steps 6-7): the winning pipelines,
/// re-fitted on the full training data, vote softly — the probability matrix
/// is averaged per class and the class with the highest mean wins.
class VotingRecommender {
 public:
  /// Fits every elite of `report` on `full_train` and assembles the voter.
  /// Elite refits are independent; with a `pool` they run concurrently, each
  /// into its own slot, and the committee is collected in elite order in a
  /// serial post-pass — the assembled voter is bit-identical to the serial
  /// one for every pool size (nullptr runs serially).
  static Result<VotingRecommender> FromRace(const ModelRaceReport& report,
                                            const ml::Dataset& full_train,
                                            ThreadPool* pool = nullptr);

  /// Context variant: refits run on `ctx`'s shared pool and the wall-clock
  /// accumulates into the `train.committee_seconds` span of `ctx`'s metrics.
  /// Same bit-identity contract as the pool overload.
  static Result<VotingRecommender> FromRace(const ModelRaceReport& report,
                                            const ml::Dataset& full_train,
                                            ExecContext& ctx);

  /// Assembles a voter from already-fitted pipelines (deserialization path).
  static Result<VotingRecommender> FromPipelines(
      std::vector<TrainedPipeline> committee, int num_classes);

  /// Average per-class probability over the committee. Members that emit a
  /// malformed vector (wrong size or non-finite entries) are skipped and the
  /// average is taken over the survivors; `diagnostics` (optional) reports
  /// how many members contributed and the resulting degradation level. An
  /// empty return vector means every member failed — the caller must fall
  /// back (kDefaultClass); see Adarts::RecommendEx for the full ladder.
  la::Vector PredictProba(const la::Vector& features,
                          VoteDiagnostics* diagnostics = nullptr) const;

  /// The recommended class (argmax of the soft vote).
  int Recommend(const la::Vector& features) const;

  /// Classes sorted by descending soft-vote probability (for MRR).
  std::vector<int> Ranking(const la::Vector& features) const;

  std::size_t committee_size() const { return committee_.size(); }
  const std::vector<TrainedPipeline>& committee() const { return committee_; }

 private:
  std::vector<TrainedPipeline> committee_;
  int num_classes_ = 0;
};

}  // namespace adarts::automl

#endif  // ADARTS_AUTOML_RECOMMENDER_H_
