#include "automl/synthesizer.h"

#include <algorithm>
#include <cmath>

namespace adarts::automl {

namespace {

double RandomParamValue(const ml::ParamSpec& spec, Rng* rng) {
  if (spec.integer) {
    return static_cast<double>(rng->UniformInt(
        static_cast<int>(spec.min_value), static_cast<int>(spec.max_value)));
  }
  if (spec.log_scale && spec.min_value > 0.0) {
    const double lo = std::log(spec.min_value);
    const double hi = std::log(spec.max_value);
    return std::exp(rng->Uniform(lo, hi));
  }
  return rng->Uniform(spec.min_value, spec.max_value);
}

double PerturbParamValue(const ml::ParamSpec& spec, double current, Rng* rng) {
  double v;
  if (spec.integer) {
    // Step by a small signed integer amount.
    const int span = static_cast<int>(spec.max_value - spec.min_value);
    const int step = std::max(1, span / 8);
    v = current + static_cast<double>(rng->UniformInt(-step, step));
    if (v == current) v = current + 1.0;
  } else if (spec.log_scale && current > 0.0) {
    v = current * std::exp(rng->Uniform(-0.7, 0.7));
  } else {
    const double span = spec.max_value - spec.min_value;
    v = current + rng->Uniform(-0.25 * span, 0.25 * span);
  }
  return std::clamp(v, spec.min_value, spec.max_value);
}

}  // namespace

std::size_t ApproximateSearchSpaceSize() {
  // Discretising every continuous hyperparameter to ~12 levels and every
  // integer to its range gives the per-classifier parameterisation count;
  // multiplied by the scaler grid this approximates |P|.
  std::size_t total = 0;
  for (ml::ClassifierKind kind : ml::AllClassifierKinds()) {
    std::size_t per_classifier = 1;
    for (const ml::ParamSpec& spec : ml::ParamSpecsFor(kind)) {
      const std::size_t levels =
          spec.integer ? static_cast<std::size_t>(spec.max_value -
                                                  spec.min_value + 1)
                       : 12;
      per_classifier *= levels;
    }
    total += per_classifier;
  }
  // Scaler grid: 5 plain scalers + PCA at 10 keep-fractions.
  return total * (static_cast<std::size_t>(ml::kNumScalerKinds) - 1 + 10);
}

std::vector<Pipeline> Synthesizer::SeedPipelines(std::size_t count) {
  std::vector<Pipeline> seeds;
  const std::vector<ml::ClassifierKind> kinds = ml::AllClassifierKinds();
  // One default pipeline per classifier family first (ModelRace requires
  // every family to be represented in the seed).
  for (ml::ClassifierKind kind : kinds) {
    if (seeds.size() >= count && seeds.size() >= kinds.size()) break;
    Pipeline p;
    p.classifier = kind;
    p.params = ml::ResolveParams(kind, {});
    p.params["seed"] = static_cast<double>(rng_.NextU64() % 10000);
    p.scaler = ml::ScalerKind::kStandard;
    p.id = NextId();
    seeds.push_back(std::move(p));
  }
  while (seeds.size() < count) {
    seeds.push_back(RandomPipeline());
  }
  if (seeds.size() > count && count >= kinds.size()) {
    seeds.resize(count);
  }
  return seeds;
}

Pipeline Synthesizer::RandomPipeline() {
  Pipeline p;
  p.classifier = static_cast<ml::ClassifierKind>(
      rng_.UniformInt(static_cast<std::uint64_t>(ml::kNumClassifierKinds)));
  for (const ml::ParamSpec& spec : ml::ParamSpecsFor(p.classifier)) {
    p.params[spec.name] = RandomParamValue(spec, &rng_);
  }
  p.params["seed"] = static_cast<double>(rng_.NextU64() % 10000);
  p.scaler = static_cast<ml::ScalerKind>(
      rng_.UniformInt(static_cast<std::uint64_t>(ml::kNumScalerKinds)));
  p.scaler_param = rng_.Uniform(0.2, 0.9);
  p.id = NextId();
  return p;
}

Pipeline Synthesizer::Mutate(const Pipeline& parent) {
  Pipeline child = parent;
  child.id = NextId();
  const std::vector<ml::ParamSpec>& specs = ml::ParamSpecsFor(parent.classifier);
  // Mutable aspects: each hyperparameter, the scaler kind, and the scaler
  // parameter. Exactly one is changed; retries guarantee the child really
  // differs (clamping at a range boundary can otherwise undo a mutation).
  const std::size_t num_aspects = specs.size() + 2;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::size_t aspect =
        static_cast<std::size_t>(rng_.UniformInt(num_aspects));
    if (aspect < specs.size()) {
      const ml::ParamSpec& spec = specs[aspect];
      double v = PerturbParamValue(spec, parent.params.at(spec.name), &rng_);
      if (spec.integer) v = std::round(v);
      if (v == parent.params.at(spec.name)) {
        // Boundary clamp swallowed the perturbation: step the other way.
        const double step = spec.integer
                                ? 1.0
                                : 0.1 * (spec.max_value - spec.min_value);
        v = std::clamp(parent.params.at(spec.name) - step, spec.min_value,
                       spec.max_value);
        if (spec.integer) v = std::round(v);
      }
      if (v == parent.params.at(spec.name)) continue;  // degenerate range
      child.params[spec.name] = v;
    } else if (aspect == specs.size()) {
      // Change the scaler kind (to a different one).
      ml::ScalerKind next = child.scaler;
      while (next == child.scaler) {
        next = static_cast<ml::ScalerKind>(
            rng_.UniformInt(static_cast<std::uint64_t>(ml::kNumScalerKinds)));
      }
      child.scaler = next;
    } else {
      const double delta =
          rng_.Bernoulli(0.5) ? rng_.Uniform(0.05, 0.2) : -rng_.Uniform(0.05, 0.2);
      const double next =
          std::clamp(parent.scaler_param + delta, 0.1, 1.0);
      if (next == parent.scaler_param) continue;
      child.scaler_param = next;
    }
    child.params = ml::ResolveParams(child.classifier, child.params);
    return child;
  }
  // Fallback: flipping the scaler kind always produces a distinct child.
  ml::ScalerKind next = child.scaler;
  while (next == child.scaler) {
    next = static_cast<ml::ScalerKind>(
        rng_.UniformInt(static_cast<std::uint64_t>(ml::kNumScalerKinds)));
  }
  child.scaler = next;
  child.params = ml::ResolveParams(child.classifier, child.params);
  return child;
}

std::vector<Pipeline> Synthesizer::Synthesize(
    const std::vector<Pipeline>& elites, std::size_t per_parent) {
  std::vector<Pipeline> out;
  out.reserve(elites.size() * per_parent);
  for (const Pipeline& parent : elites) {
    for (std::size_t c = 0; c < per_parent; ++c) {
      out.push_back(Mutate(parent));
    }
  }
  return out;
}

}  // namespace adarts::automl
