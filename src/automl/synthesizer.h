#ifndef ADARTS_AUTOML_SYNTHESIZER_H_
#define ADARTS_AUTOML_SYNTHESIZER_H_

#include <cstddef>
#include <vector>

#include "automl/pipeline.h"
#include "common/rng.h"

namespace adarts::automl {

/// Generates candidate pipelines for ModelRace (Fig. 2, step 3).
///
/// Seeding covers every classifier family at least once (the algorithm's
/// precondition); synthesis derives children from surviving elites by
/// mutating exactly one aspect at a time — one hyperparameter or the
/// scaling step — matching the paper's "small changes to the parent
/// pipeline" rule.
class Synthesizer {
 public:
  explicit Synthesizer(std::uint64_t seed = 1) : rng_(seed) {}

  /// `count` seed pipelines: one default-parameterised pipeline per
  /// classifier family first, then random configurations.
  std::vector<Pipeline> SeedPipelines(std::size_t count);

  /// A uniformly random pipeline.
  Pipeline RandomPipeline();

  /// A child differing from `parent` in exactly one mutated aspect.
  Pipeline Mutate(const Pipeline& parent);

  /// `per_parent` children for every elite (empty elites produce an empty
  /// result, as in the first ModelRace iteration where only seeds race).
  std::vector<Pipeline> Synthesize(const std::vector<Pipeline>& elites,
                                   std::size_t per_parent);

  /// Total pipelines handed out so far (provides unique ids).
  std::uint64_t issued() const { return next_id_; }

 private:
  std::uint64_t NextId() { return next_id_++; }

  Rng rng_;
  std::uint64_t next_id_ = 0;
};

/// Size of the full pipeline configuration space for the default grids —
/// the "99'000 possible pipelines" scale quoted in Section V-A.
std::size_t ApproximateSearchSpaceSize();

}  // namespace adarts::automl

#endif  // ADARTS_AUTOML_SYNTHESIZER_H_
