#include <algorithm>

#include "baselines/baselines.h"
#include "baselines/common.h"
#include "common/rng.h"

namespace adarts::baselines {

namespace {

/// AutoFolio-lite: configures a single classifier (an MLP) from random seed
/// configurations, perturbing one parameter at a time, evaluating each
/// candidate across several data partitions and keeping the configuration
/// with the best average performance.
class AutoFolioLite final : public ModelSelector {
 public:
  explicit AutoFolioLite(const BaselineOptions& options) : options_(options) {}

  std::string_view name() const override { return "autofolio_lite"; }

  Status Train(const ml::Dataset& data) override {
    Rng rng(options_.seed);
    constexpr ml::ClassifierKind kKind = ml::ClassifierKind::kMlp;

    // Data partitions for the averaged evaluation.
    constexpr std::size_t kPartitions = 3;
    std::vector<ml::TrainTestSplit> partitions;
    for (std::size_t p = 0; p < kPartitions; ++p) {
      ADARTS_ASSIGN_OR_RETURN(ml::TrainTestSplit split,
                              ml::StratifiedSplit(data, 0.7, &rng));
      partitions.push_back(std::move(split));
    }
    const auto average_f1 = [&](const ml::HyperParams& params) {
      double total = 0.0;
      for (const auto& part : partitions) {
        total += internal::FitAndScore(kKind, params, part.train, part.test);
      }
      return total / static_cast<double>(partitions.size());
    };

    // Random seed configurations.
    const std::size_t num_seeds = std::max<std::size_t>(
        options_.num_configurations / 3, 2);
    ml::HyperParams best = internal::RandomConfig(kKind, &rng);
    double best_f1 = average_f1(best);
    for (std::size_t s = 1; s < num_seeds; ++s) {
      ml::HyperParams candidate = internal::RandomConfig(kKind, &rng);
      const double f1 = average_f1(candidate);
      if (f1 > best_f1) {
        best_f1 = f1;
        best = std::move(candidate);
      }
    }
    // Local search: perturb one parameter at a time; configurations that do
    // not improve are discarded.
    const std::size_t num_perturbations =
        options_.num_configurations - num_seeds;
    for (std::size_t s = 0; s < num_perturbations; ++s) {
      ml::HyperParams candidate = internal::PerturbOneParam(kKind, best, &rng);
      const double f1 = average_f1(candidate);
      if (f1 > best_f1) {
        best_f1 = f1;
        best = std::move(candidate);
      }
    }

    model_ = ml::CreateClassifier(kKind, best);
    return model_->Fit(data);
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    return model_->PredictProba(x);
  }

  bool SupportsRanking() const override { return false; }

 private:
  BaselineOptions options_;
  std::unique_ptr<ml::Classifier> model_;
};

}  // namespace

std::unique_ptr<ModelSelector> CreateAutoFolioLite(
    const BaselineOptions& options) {
  return std::make_unique<AutoFolioLite>(options);
}

}  // namespace adarts::baselines
