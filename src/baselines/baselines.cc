#include "baselines/baselines.h"

#include <algorithm>
#include <numeric>

namespace adarts::baselines {

int ModelSelector::Recommend(const la::Vector& x) const {
  const la::Vector p = PredictProba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<int> ModelSelector::Ranking(const la::Vector& x) const {
  const la::Vector p = PredictProba(x);
  std::vector<int> order(p.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return p[static_cast<std::size_t>(a)] > p[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace adarts::baselines
