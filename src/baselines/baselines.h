#ifndef ADARTS_BASELINES_BASELINES_H_
#define ADARTS_BASELINES_BASELINES_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "la/vector_ops.h"
#include "ml/classifier.h"
#include "ml/dataset.h"

namespace adarts::baselines {

/// Common interface for the comparator model-selection systems of Section
/// VII-B. Each system trains on a labeled dataset (holding out its own
/// validation split) and then predicts per-class probabilities for new
/// feature vectors. These are reimplementations of each system's documented
/// search strategy (see DESIGN.md), not the original codebases.
class ModelSelector {
 public:
  virtual ~ModelSelector() = default;
  virtual std::string_view name() const = 0;

  /// Runs the system's model search and fits the winning model(s).
  virtual Status Train(const ml::Dataset& train) = 0;

  /// Per-class probabilities for one sample.
  virtual la::Vector PredictProba(const la::Vector& x) const = 0;

  /// Whether the system can emit a ranked list (Table III reports MRR only
  /// for systems that can).
  virtual bool SupportsRanking() const { return true; }

  int Recommend(const la::Vector& x) const;
  std::vector<int> Ranking(const la::Vector& x) const;
};

/// Search-budget knobs shared by the baselines, so the Fig. 8 runtime sweep
/// can vary the number of configurations uniformly.
struct BaselineOptions {
  std::size_t num_configurations = 24;
  std::uint64_t seed = 11;
};

/// FLAML-lite: multi-classifier cost-frontier search. One branch per
/// classifier family; each step expands the most promising branch by
/// mutating one hyperparameter, evaluating on a growing training sample
/// with a cost combining error and time. A single configuration wins; a
/// discarded branch (family) never returns. No feature scaling.
std::unique_ptr<ModelSelector> CreateFlamlLite(const BaselineOptions& options = {});

/// Tune-lite: Hyperband-style successive halving over pre-generated random
/// configurations of one hand-picked classifier (random forest). Each rung
/// evaluates all survivors on a doubled training budget and discards the
/// worst half. No scaling, single winner.
std::unique_ptr<ModelSelector> CreateTuneLite(const BaselineOptions& options = {});

/// AutoFolio-lite: single classifier (MLP), random seed configurations plus
/// one-parameter-at-a-time perturbations, evaluated across data partitions;
/// the best average configuration wins. No scaling, single winner.
std::unique_ptr<ModelSelector> CreateAutoFolioLite(
    const BaselineOptions& options = {});

/// RAHA-lite: clusters training samples by feature similarity, trains one
/// classifier per cluster (choosing the best family per cluster on a
/// validation split with an inverse-error objective), and routes each query
/// to its nearest cluster's model. Supports ranked output.
std::unique_ptr<ModelSelector> CreateRahaLite(const BaselineOptions& options = {});

}  // namespace adarts::baselines

#endif  // ADARTS_BASELINES_BASELINES_H_
