#include "baselines/common.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "ml/metrics.h"

namespace adarts::baselines::internal {

double ValidationF1(const ml::Classifier& clf, const ml::Dataset& val) {
  if (val.empty()) return 0.0;
  std::vector<int> preds;
  preds.reserve(val.size());
  for (const auto& f : val.features) preds.push_back(clf.Predict(f));
  auto report =
      ml::ComputeClassificationReport(val.labels, preds, val.num_classes);
  return report.ok() ? report->f1 : 0.0;
}

double FitAndScore(ml::ClassifierKind kind, const ml::HyperParams& params,
                   const ml::Dataset& train, const ml::Dataset& val,
                   double* elapsed_seconds) {
  Stopwatch watch;
  auto clf = ml::CreateClassifier(kind, params);
  if (clf == nullptr || !clf->Fit(train).ok()) {
    if (elapsed_seconds != nullptr) *elapsed_seconds = watch.ElapsedSeconds();
    return 0.0;
  }
  const double f1 = ValidationF1(*clf, val);
  if (elapsed_seconds != nullptr) *elapsed_seconds = watch.ElapsedSeconds();
  return f1;
}

ml::HyperParams RandomConfig(ml::ClassifierKind kind, Rng* rng) {
  ml::HyperParams params;
  for (const ml::ParamSpec& spec : ml::ParamSpecsFor(kind)) {
    double v;
    if (spec.integer) {
      v = static_cast<double>(rng->UniformInt(
          static_cast<int>(spec.min_value), static_cast<int>(spec.max_value)));
    } else if (spec.log_scale && spec.min_value > 0.0) {
      v = std::exp(
          rng->Uniform(std::log(spec.min_value), std::log(spec.max_value)));
    } else {
      v = rng->Uniform(spec.min_value, spec.max_value);
    }
    params[spec.name] = v;
  }
  params["seed"] = static_cast<double>(rng->NextU64() % 10000);
  return ml::ResolveParams(kind, params);
}

ml::HyperParams PerturbOneParam(ml::ClassifierKind kind,
                                const ml::HyperParams& base, Rng* rng) {
  const auto& specs = ml::ParamSpecsFor(kind);
  ml::HyperParams params = base;
  if (specs.empty()) return params;
  const ml::ParamSpec& spec =
      specs[static_cast<std::size_t>(rng->UniformInt(specs.size()))];
  const double current = params.at(spec.name);
  double v;
  if (spec.integer) {
    const int span =
        std::max(1, static_cast<int>(spec.max_value - spec.min_value) / 8);
    v = current + static_cast<double>(rng->UniformInt(-span, span));
    if (v == current) v = current + 1.0;
  } else if (spec.log_scale && current > 0.0) {
    v = current * std::exp(rng->Uniform(-0.7, 0.7));
  } else {
    const double span = spec.max_value - spec.min_value;
    v = current + rng->Uniform(-0.25 * span, 0.25 * span);
  }
  params[spec.name] = std::clamp(v, spec.min_value, spec.max_value);
  return ml::ResolveParams(kind, params);
}

}  // namespace adarts::baselines::internal
