#ifndef ADARTS_BASELINES_COMMON_H_
#define ADARTS_BASELINES_COMMON_H_

#include <memory>

#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/dataset.h"

namespace adarts::baselines::internal {

/// Weighted F1 of `clf` trained elsewhere, evaluated on `val`.
double ValidationF1(const ml::Classifier& clf, const ml::Dataset& val);

/// Fits a fresh classifier of (kind, params) on `train` and returns its
/// validation F1; 0 on any failure.
double FitAndScore(ml::ClassifierKind kind, const ml::HyperParams& params,
                   const ml::Dataset& train, const ml::Dataset& val,
                   double* elapsed_seconds = nullptr);

/// A random configuration drawn from the family's parameter specs.
ml::HyperParams RandomConfig(ml::ClassifierKind kind, Rng* rng);

/// Mutates exactly one hyperparameter of `base`.
ml::HyperParams PerturbOneParam(ml::ClassifierKind kind,
                                const ml::HyperParams& base, Rng* rng);

}  // namespace adarts::baselines::internal

#endif  // ADARTS_BASELINES_COMMON_H_
