#include <algorithm>
#include <limits>

#include "baselines/baselines.h"
#include "baselines/common.h"
#include "common/rng.h"

namespace adarts::baselines {

namespace {

/// One search branch of FLAML-lite: a classifier family with its current
/// best configuration and cost.
struct Branch {
  ml::ClassifierKind kind;
  ml::HyperParams best_config;
  double best_cost = std::numeric_limits<double>::infinity();
  int stale_rounds = 0;  ///< rounds without improvement
  bool alive = true;
};

class FlamlLite final : public ModelSelector {
 public:
  explicit FlamlLite(const BaselineOptions& options) : options_(options) {}

  std::string_view name() const override { return "flaml_lite"; }

  Status Train(const ml::Dataset& data) override {
    Rng rng(options_.seed);
    ADARTS_ASSIGN_OR_RETURN(ml::TrainTestSplit split,
                            ml::StratifiedSplit(data, 0.75, &rng));

    // One branch per classifier family, seeded with defaults.
    std::vector<Branch> branches;
    for (ml::ClassifierKind kind : ml::AllClassifierKinds()) {
      Branch b;
      b.kind = kind;
      b.best_config = ml::ResolveParams(kind, {});
      branches.push_back(std::move(b));
    }

    // Training sample grows when the search stops improving (FLAML resizes
    // the sample based on cost improvement between iterations).
    double sample_fraction = 0.4;
    const std::size_t budget = std::max<std::size_t>(
        options_.num_configurations, branches.size());

    // Initial evaluation of every branch's default.
    ml::Dataset sample = SampleOf(split.train, sample_fraction, &rng);
    for (Branch& b : branches) {
      b.best_cost = CostOf(b.kind, b.best_config, sample, split.test);
    }

    for (std::size_t step = branches.size(); step < budget; ++step) {
      // Expand the most promising live branch (epsilon-greedy to keep some
      // exploration).
      Branch* target = nullptr;
      if (rng.Bernoulli(0.2)) {
        std::vector<Branch*> alive;
        for (Branch& b : branches) {
          if (b.alive) alive.push_back(&b);
        }
        if (alive.empty()) break;
        target = alive[static_cast<std::size_t>(rng.UniformInt(alive.size()))];
      } else {
        for (Branch& b : branches) {
          if (b.alive && (target == nullptr || b.best_cost < target->best_cost)) {
            target = &b;
          }
        }
      }
      if (target == nullptr) break;

      const ml::HyperParams candidate =
          internal::PerturbOneParam(target->kind, target->best_config, &rng);
      const double cost = CostOf(target->kind, candidate, sample, split.test);
      if (cost < target->best_cost) {
        target->best_cost = cost;
        target->best_config = candidate;
        target->stale_rounds = 0;
      } else {
        ++target->stale_rounds;
        // No improvement: enlarge the training sample, and eventually kill
        // the branch. FLAML treats all variations of a classifier as one
        // pipeline — a dead branch removes the whole family from the race.
        if (target->stale_rounds == 2 && sample_fraction < 1.0) {
          sample_fraction = std::min(1.0, sample_fraction * 1.6);
          sample = SampleOf(split.train, sample_fraction, &rng);
        }
        if (target->stale_rounds >= 4) target->alive = false;
      }
    }

    // The single winner is the branch with the lowest cost.
    const Branch* winner = &branches[0];
    for (const Branch& b : branches) {
      if (b.best_cost < winner->best_cost) winner = &b;
    }
    model_ = ml::CreateClassifier(winner->kind, winner->best_config);
    return model_->Fit(data);
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    return model_->PredictProba(x);
  }

  bool SupportsRanking() const override { return false; }

 private:
  static ml::Dataset SampleOf(const ml::Dataset& data, double fraction,
                              Rng* rng) {
    const auto count = std::max<std::size_t>(
        static_cast<std::size_t>(fraction * static_cast<double>(data.size())),
        std::min<std::size_t>(data.size(), 10));
    return data.Subset(rng->SampleWithoutReplacement(data.size(), count));
  }

  static double CostOf(ml::ClassifierKind kind, const ml::HyperParams& params,
                       const ml::Dataset& train, const ml::Dataset& val) {
    double seconds = 0.0;
    const double f1 = internal::FitAndScore(kind, params, train, val, &seconds);
    // FLAML's cost combines error and time.
    return (1.0 - f1) + 0.05 * seconds;
  }

  BaselineOptions options_;
  std::unique_ptr<ml::Classifier> model_;
};

}  // namespace

std::unique_ptr<ModelSelector> CreateFlamlLite(const BaselineOptions& options) {
  return std::make_unique<FlamlLite>(options);
}

}  // namespace adarts::baselines
