#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/baselines.h"
#include "baselines/common.h"
#include "common/rng.h"

namespace adarts::baselines {

namespace {

/// RAHA-lite: clusters training samples by the similarity of their basic
/// statistical features (k-means), then trains the best classifier of a
/// small family set per cluster. A query routes to its nearest cluster
/// centroid and uses that cluster's model. Probabilities are available, so
/// ranked output (MRR) is supported.
class RahaLite final : public ModelSelector {
 public:
  explicit RahaLite(const BaselineOptions& options) : options_(options) {}

  std::string_view name() const override { return "raha_lite"; }

  Status Train(const ml::Dataset& data) override {
    Rng rng(options_.seed);
    ADARTS_ASSIGN_OR_RETURN(ml::TrainTestSplit split,
                            ml::StratifiedSplit(data, 0.75, &rng));
    num_classes_ = data.num_classes;

    // RAHA merges its own basic statistical profile of the data with the
    // provided features; here the profile is the per-sample (mean, std,
    // min, max) appended to the feature vector for clustering purposes.
    const std::vector<la::Vector> profile = Profile(data.features);

    // k-means clustering of samples (k ~ sqrt of sample count): RAHA
    // clusters finely, trading per-model training data for locality.
    const std::size_t k = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::sqrt(static_cast<double>(data.size()))),
        2, 12);
    centroids_ = KMeans(profile, k, &rng);

    // Train the best of a small family set per cluster, using an
    // inverse-error objective on the validation split.
    const std::vector<ml::ClassifierKind> families = {
        ml::ClassifierKind::kKnn, ml::ClassifierKind::kDecisionTree,
        ml::ClassifierKind::kGaussianNb, ml::ClassifierKind::kLogisticRegression};

    models_.clear();
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
      // Members of this cluster from the *training* side.
      std::vector<std::size_t> members;
      const std::vector<la::Vector> train_profile = Profile(split.train.features);
      for (std::size_t i = 0; i < split.train.size(); ++i) {
        if (NearestCentroid(train_profile[i]) == c) members.push_back(i);
      }
      // RAHA trains each cluster's classifier on that cluster's samples
      // only — the data fragmentation this causes is an inherent cost of
      // its design (tiny clusters yield weakly trained models).
      ml::Dataset cluster_data = split.train.Subset(members);

      double best_score = -1.0;
      std::unique_ptr<ml::Classifier> best_model;
      if (cluster_data.size() >= 2) {
        for (ml::ClassifierKind kind : families) {
          auto model = ml::CreateClassifier(kind, {});
          if (model == nullptr || !model->Fit(cluster_data).ok()) continue;
          // Inverse-RMSE-style objective (higher is better), evaluated with
          // the only labels RAHA has: the cluster's own. The resulting
          // selection noise is inherent to its per-cluster design.
          const double f1 = internal::ValidationF1(*model, cluster_data);
          if (f1 > best_score) {
            best_score = f1;
            best_model = std::move(model);
          }
        }
      }
      if (best_model == nullptr) {
        // Degenerate cluster: a default kNN over everything.
        best_model = ml::CreateClassifier(ml::ClassifierKind::kKnn, {});
        ADARTS_RETURN_NOT_OK(best_model->Fit(split.train));
      }
      models_.push_back(std::move(best_model));
    }
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    const la::Vector p = ProfileOne(x);
    const std::size_t c = NearestCentroid(p);
    return models_[c]->PredictProba(x);
  }

 private:
  static la::Vector ProfileOne(const la::Vector& f) {
    la::Vector out = f;
    out.push_back(la::Mean(f));
    out.push_back(la::StdDev(f));
    out.push_back(*std::min_element(f.begin(), f.end()));
    out.push_back(*std::max_element(f.begin(), f.end()));
    return out;
  }

  static std::vector<la::Vector> Profile(const std::vector<la::Vector>& x) {
    std::vector<la::Vector> out;
    out.reserve(x.size());
    for (const auto& f : x) out.push_back(ProfileOne(f));
    return out;
  }

  std::size_t NearestCentroid(const la::Vector& p) const {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
      double d = 0.0;
      for (std::size_t j = 0; j < p.size(); ++j) {
        const double diff = p[j] - centroids_[c][j];
        d += diff * diff;
      }
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    return best;
  }

  static std::vector<la::Vector> KMeans(const std::vector<la::Vector>& points,
                                        std::size_t k, Rng* rng) {
    std::vector<la::Vector> centroids;
    for (std::size_t i : rng->SampleWithoutReplacement(points.size(), k)) {
      centroids.push_back(points[i]);
    }
    std::vector<std::size_t> assign(points.size(), 0);
    for (int iter = 0; iter < 20; ++iter) {
      bool changed = false;
      for (std::size_t i = 0; i < points.size(); ++i) {
        std::size_t best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < centroids.size(); ++c) {
          double d = 0.0;
          for (std::size_t j = 0; j < points[i].size(); ++j) {
            const double diff = points[i][j] - centroids[c][j];
            d += diff * diff;
          }
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        if (assign[i] != best) {
          assign[i] = best;
          changed = true;
        }
      }
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        la::Vector acc(points[0].size(), 0.0);
        std::size_t count = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          if (assign[i] != c) continue;
          la::Axpy(1.0, points[i], &acc);
          ++count;
        }
        if (count > 0) {
          la::Scale(1.0 / static_cast<double>(count), &acc);
          centroids[c] = std::move(acc);
        }
      }
      if (!changed) break;
    }
    return centroids;
  }

  BaselineOptions options_;
  std::vector<la::Vector> centroids_;
  std::vector<std::unique_ptr<ml::Classifier>> models_;
  int num_classes_ = 0;
};

}  // namespace

std::unique_ptr<ModelSelector> CreateRahaLite(const BaselineOptions& options) {
  return std::make_unique<RahaLite>(options);
}

}  // namespace adarts::baselines
