#include <algorithm>

#include "baselines/baselines.h"
#include "baselines/common.h"
#include "common/rng.h"

namespace adarts::baselines {

namespace {

/// Tune-lite: successive halving (the core of Hyperband) over random
/// configurations of one user-picked classifier. The budget dimension is
/// the training-sample size, doubled at every rung.
class TuneLite final : public ModelSelector {
 public:
  explicit TuneLite(const BaselineOptions& options) : options_(options) {}

  std::string_view name() const override { return "tune_lite"; }

  Status Train(const ml::Dataset& data) override {
    Rng rng(options_.seed);
    ADARTS_ASSIGN_OR_RETURN(ml::TrainTestSplit split,
                            ml::StratifiedSplit(data, 0.75, &rng));

    // The hand-picked classifier (Tune configures a single model chosen by
    // the user; kNN is the standard first pick, and, trained on unscaled
    // features, reproduces Tune's reported fast-but-brittle profile).
    constexpr ml::ClassifierKind kKind = ml::ClassifierKind::kKnn;

    struct Candidate {
      ml::HyperParams params;
      double f1 = 0.0;
    };
    std::vector<Candidate> pool;
    for (std::size_t i = 0; i < options_.num_configurations; ++i) {
      pool.push_back({internal::RandomConfig(kKind, &rng), 0.0});
    }

    double fraction = 0.25;
    while (pool.size() > 1) {
      const auto count = std::max<std::size_t>(
          static_cast<std::size_t>(fraction *
                                   static_cast<double>(split.train.size())),
          std::min<std::size_t>(split.train.size(), 10));
      const ml::Dataset sample = split.train.Subset(
          rng.SampleWithoutReplacement(split.train.size(), count));
      for (Candidate& c : pool) {
        c.f1 = internal::FitAndScore(kKind, c.params, sample, split.test);
      }
      std::sort(pool.begin(), pool.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.f1 > b.f1;
                });
      // Keep the best half; double the budget for the next rung.
      pool.resize(std::max<std::size_t>(pool.size() / 2, 1));
      fraction = std::min(1.0, fraction * 2.0);
    }

    model_ = ml::CreateClassifier(kKind, pool[0].params);
    return model_->Fit(data);
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    return model_->PredictProba(x);
  }

  bool SupportsRanking() const override { return false; }

 private:
  BaselineOptions options_;
  std::unique_ptr<ml::Classifier> model_;
};

}  // namespace

std::unique_ptr<ModelSelector> CreateTuneLite(const BaselineOptions& options) {
  return std::make_unique<TuneLite>(options);
}

}  // namespace adarts::baselines
