#include "cluster/clustering.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "ts/correlation.h"

namespace adarts::cluster {

std::vector<std::size_t> Clustering::Assignments(std::size_t n) const {
  std::vector<std::size_t> out(n, 0);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t i : clusters[c]) out[i] = c;
  }
  return out;
}

la::Matrix PairwiseCorrelationMatrix(
    const std::vector<ts::TimeSeries>& series) {
  return PairwiseCorrelationMatrix(series, nullptr);
}

std::pair<std::size_t, std::size_t> PairFromIndex(std::size_t k, std::size_t n) {
  ADARTS_CHECK(n >= 2 && k < n * (n - 1) / 2);
  // Pairs with row < r occupy the first Before(r) = r*(2n - r - 1)/2 linear
  // indices. Seed the row from the real-valued root of Before(r) = k, then
  // correct with integer arithmetic — the float estimate can be off by one
  // for large n, never more.
  const auto before = [n](std::size_t r) { return r * (2 * n - r - 1) / 2; };
  const double nd = static_cast<double>(n);
  const double disc = (nd - 0.5) * (nd - 0.5) - 2.0 * static_cast<double>(k);
  std::size_t row = static_cast<std::size_t>(
      std::max(0.0, std::floor(nd - 0.5 - std::sqrt(std::max(0.0, disc)))));
  row = std::min(row, n - 2);
  while (row > 0 && before(row) > k) --row;
  while (row + 2 < n && before(row + 1) <= k) ++row;
  const std::size_t col = row + 1 + (k - before(row));
  return {row, col};
}

la::Matrix PairwiseCorrelationMatrix(const std::vector<ts::TimeSeries>& series,
                                     ThreadPool* pool) {
  const std::size_t n = series.size();
  la::Matrix corr(n, n);
  for (std::size_t i = 0; i < n; ++i) corr(i, i) = 1.0;
  const std::size_t num_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  ParallelFor(pool, num_pairs, [&](std::size_t k) {
    const auto [i, j] = PairFromIndex(k, n);
    const double c = ts::Pearson(series[i], series[j]);
    corr(i, j) = c;
    corr(j, i) = c;
  });
  return corr;
}

la::Matrix PairwiseCorrelationMatrix(const std::vector<ts::TimeSeries>& series,
                                     ExecContext& ctx) {
  StageTimer timer(&ctx.metrics(), "cluster.correlation_seconds");
  const std::size_t n = series.size();
  la::Matrix corr(n, n);
  for (std::size_t i = 0; i < n; ++i) corr(i, i) = 1.0;
  const std::size_t num_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  // Skipped pairs on cancellation leave zero slots; callers re-check the
  // token before using the matrix (ParallelFor's barrier contract).
  ParallelFor(ctx, num_pairs, [&](std::size_t k) {
    const auto [i, j] = PairFromIndex(k, n);
    const double c = ts::Pearson(series[i], series[j]);
    corr(i, j) = c;
    corr(j, i) = c;
  });
  return corr;
}

double ClusterAvgCorrelation(const std::vector<std::size_t>& cluster,
                             const la::Matrix& corr) {
  if (cluster.size() < 2) return 1.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < cluster.size(); ++a) {
    for (std::size_t b = a + 1; b < cluster.size(); ++b) {
      sum += std::fabs(corr(cluster[a], cluster[b]));
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

double AverageIntraClusterCorrelation(const Clustering& clustering,
                                      const la::Matrix& corr) {
  double sum = 0.0;
  std::size_t total = 0;
  for (const auto& c : clustering.clusters) {
    sum += ClusterAvgCorrelation(c, corr) * static_cast<double>(c.size());
    total += c.size();
  }
  return total > 0 ? sum / static_cast<double>(total) : 0.0;
}

double CorrelationGain(const std::vector<std::size_t>& a,
                       const std::vector<std::size_t>& b,
                       const la::Matrix& corr, std::size_t total_series) {
  if (total_series == 0) return 0.0;
  std::vector<std::size_t> merged = a;
  merged.insert(merged.end(), b.begin(), b.end());
  const double rho_merged = ClusterAvgCorrelation(merged, corr);
  const double rho_a = ClusterAvgCorrelation(a, corr);
  const double rho_b = ClusterAvgCorrelation(b, corr);
  const double m = static_cast<double>(total_series);
  return (1.0 / (2.0 * m)) * (rho_merged - rho_a * rho_b / m);
}

}  // namespace adarts::cluster
