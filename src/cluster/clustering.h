#ifndef ADARTS_CLUSTER_CLUSTERING_H_
#define ADARTS_CLUSTER_CLUSTERING_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "ts/time_series.h"

namespace adarts {
class ExecContext;
class ThreadPool;
}  // namespace adarts

namespace adarts::cluster {

/// A partition of series indices into clusters.
struct Clustering {
  std::vector<std::vector<std::size_t>> clusters;

  std::size_t NumClusters() const { return clusters.size(); }

  /// Inverse map: series index -> cluster id. `n` is the number of series.
  std::vector<std::size_t> Assignments(std::size_t n) const;
};

/// Pairwise Pearson correlation matrix of a series set (symmetric, unit
/// diagonal). The labeling pipeline computes this once and reuses it.
la::Matrix PairwiseCorrelationMatrix(const std::vector<ts::TimeSeries>& series);

/// Pool-backed variant: fans the n*(n-1)/2 upper-triangle pairs out over
/// `pool` (nullptr or a size-1 pool runs serially). Each task owns exactly
/// one pair index k, decoded to (i, j) with `PairFromIndex`, and writes only
/// the two mirrored slots (i, j) / (j, i) — the matrix is bit-identical to
/// the serial pass for every thread count.
la::Matrix PairwiseCorrelationMatrix(const std::vector<ts::TimeSeries>& series,
                                     ThreadPool* pool);

/// Context variant: runs on `ctx`'s shared pool (serial contexts never
/// construct one) and accumulates the wall-clock into the
/// `cluster.correlation_seconds` span of `ctx`'s metrics. Same bit-identity
/// contract as the pool overload.
la::Matrix PairwiseCorrelationMatrix(const std::vector<ts::TimeSeries>& series,
                                     ExecContext& ctx);

/// Decodes a linear upper-triangle pair index into its (row, col) pair,
/// row < col, over an n x n matrix: index 0 is (0, 1), index n-2 is
/// (0, n-1), index n-1 is (1, 2), ..., index n*(n-1)/2 - 1 is (n-2, n-1).
/// Exposed for the parallel tests; `k` must be < n*(n-1)/2.
std::pair<std::size_t, std::size_t> PairFromIndex(std::size_t k, std::size_t n);

/// Average absolute pairwise correlation inside one cluster (rho-bar of
/// Algorithm 2); 1.0 for singletons.
double ClusterAvgCorrelation(const std::vector<std::size_t>& cluster,
                             const la::Matrix& corr);

/// Mean of ClusterAvgCorrelation over all clusters, weighted by cluster
/// size (the Fig. 11a quality measure).
double AverageIntraClusterCorrelation(const Clustering& clustering,
                                      const la::Matrix& corr);

/// Correlation gain of merging clusters `a` and `b` (Definition 1):
/// Delta G = (1/2m) * (rho(a u b) - rho(a) * rho(b) / m).
double CorrelationGain(const std::vector<std::size_t>& a,
                       const std::vector<std::size_t>& b, const la::Matrix& corr,
                       std::size_t total_series);

}  // namespace adarts::cluster

#endif  // ADARTS_CLUSTER_CLUSTERING_H_
