#ifndef ADARTS_CLUSTER_CLUSTERING_H_
#define ADARTS_CLUSTER_CLUSTERING_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "ts/time_series.h"

namespace adarts::cluster {

/// A partition of series indices into clusters.
struct Clustering {
  std::vector<std::vector<std::size_t>> clusters;

  std::size_t NumClusters() const { return clusters.size(); }

  /// Inverse map: series index -> cluster id. `n` is the number of series.
  std::vector<std::size_t> Assignments(std::size_t n) const;
};

/// Pairwise Pearson correlation matrix of a series set (symmetric, unit
/// diagonal). The labeling pipeline computes this once and reuses it.
la::Matrix PairwiseCorrelationMatrix(const std::vector<ts::TimeSeries>& series);

/// Average absolute pairwise correlation inside one cluster (rho-bar of
/// Algorithm 2); 1.0 for singletons.
double ClusterAvgCorrelation(const std::vector<std::size_t>& cluster,
                             const la::Matrix& corr);

/// Mean of ClusterAvgCorrelation over all clusters, weighted by cluster
/// size (the Fig. 11a quality measure).
double AverageIntraClusterCorrelation(const Clustering& clustering,
                                      const la::Matrix& corr);

/// Correlation gain of merging clusters `a` and `b` (Definition 1):
/// Delta G = (1/2m) * (rho(a u b) - rho(a) * rho(b) / m).
double CorrelationGain(const std::vector<std::size_t>& a,
                       const std::vector<std::size_t>& b, const la::Matrix& corr,
                       std::size_t total_series);

}  // namespace adarts::cluster

#endif  // ADARTS_CLUSTER_CLUSTERING_H_
