#include "cluster/incremental.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "cluster/kshape.h"
#include "common/exec_context.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "la/vector_ops.h"
#include "ts/correlation.h"

namespace adarts::cluster {

namespace {

/// Best merge/move partner for `source` among `clusters`, skipping index
/// `skip` and empty clusters. Every candidate's correlation gain and merged
/// correlation floor check is evaluated on the pool (one slot per candidate
/// index); the argmax reduction then runs serially in index order, so the
/// winner is bit-identical to the serial scan. Returns clusters.size() when
/// no candidate has positive gain and an admissible merged correlation.
std::size_t BestPartner(const std::vector<std::size_t>& source,
                        std::size_t skip,
                        const std::vector<std::vector<std::size_t>>& clusters,
                        const la::Matrix& corr, std::size_t n,
                        double merge_floor, ExecContext& ctx) {
  std::vector<double> gains(clusters.size(), 0.0);
  std::vector<char> admissible(clusters.size(), 0);
  LatencyHistogram* const candidate_hist =
      ctx.metrics().histogram("cluster.candidate");
  ParallelFor(ctx, clusters.size(), [&](std::size_t j) {
    if (j == skip || clusters[j].empty()) return;
    TraceSpan span("cluster.candidate");
    Stopwatch watch;
    gains[j] = CorrelationGain(source, clusters[j], corr, n);
    std::vector<std::size_t> merged = source;
    merged.insert(merged.end(), clusters[j].begin(), clusters[j].end());
    admissible[j] = ClusterAvgCorrelation(merged, corr) >= merge_floor ? 1 : 0;
    candidate_hist->RecordSeconds(watch.ElapsedSeconds());
  });
  double best_gain = 0.0;
  std::size_t best_j = clusters.size();
  for (std::size_t j = 0; j < clusters.size(); ++j) {
    if (j == skip || clusters[j].empty()) continue;
    if (gains[j] > best_gain && admissible[j]) {
      best_gain = gains[j];
      best_j = j;
    }
  }
  return best_j;
}

}  // namespace

Result<Clustering> IncrementalClustering(
    const std::vector<ts::TimeSeries>& series,
    const IncrementalOptions& options) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ExecContext ctx(options.num_threads);
#pragma GCC diagnostic pop
  return IncrementalClustering(series, options, ctx);
}

Result<Clustering> IncrementalClustering(
    const std::vector<ts::TimeSeries>& series,
    const IncrementalOptions& options, ExecContext& ctx) {
  if (series.empty()) return Status::InvalidArgument("no series to cluster");
  // A constant series has zero variance, so its Pearson correlation to any
  // other series is undefined; with *every* series constant the whole
  // correlation matrix is meaningless and no threshold can partition it.
  bool any_varying = false;
  for (const ts::TimeSeries& s : series) {
    if (la::StdDev(s.values()) > 0.0) {
      any_varying = true;
      break;
    }
  }
  if (!any_varying) {
    return Status::InvalidArgument(
        "every series in the corpus is constant; pairwise correlation is "
        "undefined");
  }
  const std::size_t n = series.size();
  const la::Matrix corr = PairwiseCorrelationMatrix(series, ctx);
  ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("IncrementalClustering correlation"));

  // ---- Phase 1: recursive splitting (Algorithm 2, lines 2-8).
  std::deque<std::vector<std::size_t>> pending;
  {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    pending.push_back(std::move(all));
  }

  Clustering result;
  std::uint64_t seed = options.seed;
  while (!pending.empty()) {
    std::vector<std::size_t> cur = std::move(pending.front());
    pending.pop_front();
    if (cur.size() <= 1 ||
        ClusterAvgCorrelation(cur, corr) >= options.correlation_threshold) {
      result.clusters.push_back(std::move(cur));
      continue;
    }
    const auto num_sub = std::max<std::size_t>(
        2, static_cast<std::size_t>(options.split_fraction *
                                    static_cast<double>(cur.size())));
    std::vector<ts::TimeSeries> subset;
    subset.reserve(cur.size());
    for (std::size_t i : cur) subset.push_back(series[i]);
    KShapeOptions kopts;
    kopts.k = std::min(num_sub, cur.size());
    kopts.max_iters = 10;
    kopts.seed = ++seed;
    TraceSpan split_span("cluster.split");
    if (split_span.enabled()) {
      split_span.SetDetail("members=" + std::to_string(cur.size()) +
                           " k=" + std::to_string(kopts.k));
    }
    ADARTS_ASSIGN_OR_RETURN(Clustering split, KShapeClustering(subset, kopts));
    split_span.Stop();
    if (split.NumClusters() < 2) {
      // The sub-clusterer could not separate the set; accept it as-is to
      // guarantee termination.
      result.clusters.push_back(std::move(cur));
      continue;
    }
    ctx.metrics().Increment("cluster.splits");
    for (const auto& part : split.clusters) {
      std::vector<std::size_t> mapped;
      mapped.reserve(part.size());
      for (std::size_t local : part) mapped.push_back(cur[local]);
      pending.push_back(std::move(mapped));
    }
  }
  ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("IncrementalClustering split phase"));

  // ---- Phase 2: refinement by merge and move (lines 10-18). A merge or
  // move is applied only when the correlation gain is positive AND the
  // receiving cluster stays above the correlation threshold, preserving the
  // invariant established by phase 1.
  auto& clusters = result.clusters;

  const double merge_floor =
      options.merge_correlation_slack * options.correlation_threshold;

  // Merge small clusters into their best partner. Candidate partners are
  // scored concurrently (the merged-correlation check is the refinement
  // phase's hot loop); the cluster lists only mutate between BestPartner
  // calls, on this thread.
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i].empty() || clusters[i].size() > options.small_cluster_size) {
      continue;
    }
    const std::size_t best_j =
        BestPartner(clusters[i], i, clusters, corr, n, merge_floor, ctx);
    if (best_j < clusters.size()) {
      clusters[best_j].insert(clusters[best_j].end(), clusters[i].begin(),
                              clusters[i].end());
      clusters[i].clear();
      ctx.metrics().Increment("cluster.merges");
      continue;
    }
    // No whole-cluster merge: try moving individual series (lines 15-18).
    // A series never moves back into a cluster it left (guaranteed here by
    // the single pass over members).
    std::vector<std::size_t> remaining;
    for (std::size_t x : clusters[i]) {
      const std::vector<std::size_t> singleton = {x};
      const std::size_t target =
          BestPartner(singleton, i, clusters, corr, n, merge_floor, ctx);
      if (target < clusters.size()) {
        clusters[target].push_back(x);
        ctx.metrics().Increment("cluster.moves");
      } else {
        remaining.push_back(x);
      }
    }
    clusters[i] = std::move(remaining);
  }

  std::erase_if(clusters,
                [](const std::vector<std::size_t>& c) { return c.empty(); });
  return result;
}

Result<SeriesAssignment> AssignSeriesToClusters(
    const ts::TimeSeries& series,
    const std::vector<std::vector<ts::TimeSeries>>& representatives,
    const IncrementalOptions& options, ExecContext& ctx) {
  if (representatives.empty()) {
    return Status::InvalidArgument("no clusters to assign against");
  }
  ADARTS_RETURN_NOT_OK(series.ValidateObservedFinite());
  for (const auto& reps : representatives) {
    for (const ts::TimeSeries& rep : reps) {
      if (rep.length() != series.length()) {
        return Status::InvalidArgument(
            "series length " + std::to_string(series.length()) +
            " does not match cluster representative length " +
            std::to_string(rep.length()));
      }
    }
  }
  // Mean |corr| to each cluster's representatives, one slot per cluster on
  // the shared pool; a constant series correlates 0 with everything and
  // therefore always splits.
  std::vector<double> affinity(representatives.size(), 0.0);
  ParallelFor(ctx, representatives.size(), [&](std::size_t j) {
    const auto& reps = representatives[j];
    if (reps.empty()) return;  // never admissible
    TraceSpan span("cluster.candidate");
    double total = 0.0;
    for (const ts::TimeSeries& rep : reps) {
      total += std::fabs(ts::Pearson(series, rep));
    }
    affinity[j] = total / static_cast<double>(reps.size());
  });
  ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("AssignSeriesToClusters"));

  // Same admissibility floor as the refinement phase's merges; the serial
  // index-order argmax keeps the winner bit-identical to a serial scan.
  const double floor =
      options.merge_correlation_slack * options.correlation_threshold;
  SeriesAssignment out;
  out.split = true;
  for (std::size_t j = 0; j < representatives.size(); ++j) {
    if (representatives[j].empty() || affinity[j] < floor) continue;
    if (out.split || affinity[j] > out.correlation) {
      out.split = false;
      out.cluster = j;
      out.correlation = affinity[j];
    }
  }
  return out;
}

}  // namespace adarts::cluster
