#include "cluster/incremental.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "cluster/kshape.h"

namespace adarts::cluster {

Result<Clustering> IncrementalClustering(
    const std::vector<ts::TimeSeries>& series,
    const IncrementalOptions& options) {
  if (series.empty()) return Status::InvalidArgument("no series to cluster");
  const std::size_t n = series.size();
  const la::Matrix corr = PairwiseCorrelationMatrix(series);

  // ---- Phase 1: recursive splitting (Algorithm 2, lines 2-8).
  std::deque<std::vector<std::size_t>> pending;
  {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    pending.push_back(std::move(all));
  }

  Clustering result;
  std::uint64_t seed = options.seed;
  while (!pending.empty()) {
    std::vector<std::size_t> cur = std::move(pending.front());
    pending.pop_front();
    if (cur.size() <= 1 ||
        ClusterAvgCorrelation(cur, corr) >= options.correlation_threshold) {
      result.clusters.push_back(std::move(cur));
      continue;
    }
    const auto num_sub = std::max<std::size_t>(
        2, static_cast<std::size_t>(options.split_fraction *
                                    static_cast<double>(cur.size())));
    std::vector<ts::TimeSeries> subset;
    subset.reserve(cur.size());
    for (std::size_t i : cur) subset.push_back(series[i]);
    KShapeOptions kopts;
    kopts.k = std::min(num_sub, cur.size());
    kopts.max_iters = 10;
    kopts.seed = ++seed;
    ADARTS_ASSIGN_OR_RETURN(Clustering split, KShapeClustering(subset, kopts));
    if (split.NumClusters() < 2) {
      // The sub-clusterer could not separate the set; accept it as-is to
      // guarantee termination.
      result.clusters.push_back(std::move(cur));
      continue;
    }
    for (const auto& part : split.clusters) {
      std::vector<std::size_t> mapped;
      mapped.reserve(part.size());
      for (std::size_t local : part) mapped.push_back(cur[local]);
      pending.push_back(std::move(mapped));
    }
  }

  // ---- Phase 2: refinement by merge and move (lines 10-18). A merge or
  // move is applied only when the correlation gain is positive AND the
  // receiving cluster stays above the correlation threshold, preserving the
  // invariant established by phase 1.
  auto& clusters = result.clusters;

  const double merge_floor =
      options.merge_correlation_slack * options.correlation_threshold;
  const auto merged_corr_ok = [&](const std::vector<std::size_t>& a,
                                  const std::vector<std::size_t>& b) {
    std::vector<std::size_t> merged = a;
    merged.insert(merged.end(), b.begin(), b.end());
    return ClusterAvgCorrelation(merged, corr) >= merge_floor;
  };

  // Merge small clusters into their best partner.
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i].empty() || clusters[i].size() > options.small_cluster_size) {
      continue;
    }
    double best_gain = 0.0;
    std::size_t best_j = clusters.size();
    for (std::size_t j = 0; j < clusters.size(); ++j) {
      if (j == i || clusters[j].empty()) continue;
      const double gain = CorrelationGain(clusters[i], clusters[j], corr, n);
      if (gain > best_gain && merged_corr_ok(clusters[i], clusters[j])) {
        best_gain = gain;
        best_j = j;
      }
    }
    if (best_j < clusters.size()) {
      clusters[best_j].insert(clusters[best_j].end(), clusters[i].begin(),
                              clusters[i].end());
      clusters[i].clear();
      continue;
    }
    // No whole-cluster merge: try moving individual series (lines 15-18).
    // A series never moves back into a cluster it left (guaranteed here by
    // the single pass over members).
    std::vector<std::size_t> remaining;
    for (std::size_t x : clusters[i]) {
      double best_move_gain = 0.0;
      std::size_t target = clusters.size();
      const std::vector<std::size_t> singleton = {x};
      for (std::size_t j = 0; j < clusters.size(); ++j) {
        if (j == i || clusters[j].empty()) continue;
        const double gain = CorrelationGain(singleton, clusters[j], corr, n);
        if (gain > best_move_gain && merged_corr_ok(singleton, clusters[j])) {
          best_move_gain = gain;
          target = j;
        }
      }
      if (target < clusters.size()) {
        clusters[target].push_back(x);
      } else {
        remaining.push_back(x);
      }
    }
    clusters[i] = std::move(remaining);
  }

  std::erase_if(clusters,
                [](const std::vector<std::size_t>& c) { return c.empty(); });
  return result;
}

}  // namespace adarts::cluster
