#ifndef ADARTS_CLUSTER_INCREMENTAL_H_
#define ADARTS_CLUSTER_INCREMENTAL_H_

#include <cstdint>

#include "cluster/clustering.h"

namespace adarts::cluster {

/// Options for A-DARTS's incremental clustering (Algorithm 2).
struct IncrementalOptions {
  /// Minimum average intra-cluster correlation delta; clusters below it are
  /// split further during the initial phase.
  double correlation_threshold = 0.8;
  /// Split factor p: a low-correlation cluster of size s is re-clustered
  /// into max(2, p * s) sub-clusters (paper sets p to 20%).
  double split_fraction = 0.2;
  /// Clusters of at most this size are "small" and candidates for merging
  /// during the refinement phase.
  std::size_t small_cluster_size = 3;
  /// The refinement phase may trade a little correlation for fewer clusters
  /// (the labeling cost scales with the cluster count): a merge is accepted
  /// while the merged cluster stays above slack * threshold.
  double merge_correlation_slack = 0.85;
  std::uint64_t seed = 1;
  /// Worker threads for the correlation matrix and the refinement phase's
  /// per-candidate gain evaluation. Ignored when an explicit `ExecContext`
  /// is passed — the context's pool is used instead. Clusterings are
  /// bit-identical for every value; see the determinism contract in
  /// common/thread_pool.h.
  [[deprecated(
      "pass an ExecContext to IncrementalClustering instead")]] std::size_t
      num_threads = 0;

  // Spelled-out defaulted special members inside a diagnostic guard:
  // default-constructing/copying the options must not itself warn about the
  // deprecated field — only direct reads and writes of it do.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  IncrementalOptions() = default;
  IncrementalOptions(const IncrementalOptions&) = default;
  IncrementalOptions& operator=(const IncrementalOptions&) = default;
  IncrementalOptions(IncrementalOptions&&) = default;
  IncrementalOptions& operator=(IncrementalOptions&&) = default;
#pragma GCC diagnostic pop
};

/// Two-phase incremental clustering: (1) recursively split clusters whose
/// average correlation is below the threshold; (2) merge small clusters and
/// move individual series guided by the correlation gain of Definition 1,
/// never letting a merge drop a cluster below the threshold.
Result<Clustering> IncrementalClustering(
    const std::vector<ts::TimeSeries>& series,
    const IncrementalOptions& options = {});

/// Context variant: the correlation matrix and the refinement phase's gain
/// evaluation run on `ctx`'s shared pool, the context's cancellation token
/// is honoured between phases, and `ctx`'s metrics gain the
/// `cluster.splits` / `cluster.merges` / `cluster.moves` counters plus the
/// `cluster.correlation_seconds` span. The legacy overload delegates here
/// with a default context built from the deprecated `num_threads` field.
Result<Clustering> IncrementalClustering(
    const std::vector<ts::TimeSeries>& series,
    const IncrementalOptions& options, ExecContext& ctx);

/// Where one new series landed during incremental corpus growth.
struct SeriesAssignment {
  /// Index of the winning cluster in the representative list, or — when
  /// `split` is true — unset (the caller opens a fresh cluster).
  std::size_t cluster = 0;
  /// True when no existing cluster was admissible: the series splits off
  /// into a new singleton cluster (the append-path analogue of Algorithm
  /// 2's phase-1 split).
  bool split = false;
  /// Mean absolute correlation between the series and the winning
  /// cluster's representatives; 0 for a split.
  double correlation = 0.0;
};

/// Places one new series against the existing clusters without re-running
/// the full clustering: each cluster is summarised by its stored
/// representative series (correlation medoids), the series' mean absolute
/// correlation to every cluster's representatives is evaluated on `ctx`'s
/// pool (one slot per cluster), and the argmax reduction runs serially in
/// index order — bit-identical across thread counts. The winner must pass
/// the same admissibility floor the refinement phase of
/// `IncrementalClustering` uses for merges (`merge_correlation_slack *
/// correlation_threshold`); when no cluster passes, the series splits off.
Result<SeriesAssignment> AssignSeriesToClusters(
    const ts::TimeSeries& series,
    const std::vector<std::vector<ts::TimeSeries>>& representatives,
    const IncrementalOptions& options, ExecContext& ctx);

}  // namespace adarts::cluster

#endif  // ADARTS_CLUSTER_INCREMENTAL_H_
