#ifndef ADARTS_CLUSTER_INCREMENTAL_H_
#define ADARTS_CLUSTER_INCREMENTAL_H_

#include <cstdint>

#include "cluster/clustering.h"

namespace adarts::cluster {

/// Options for A-DARTS's incremental clustering (Algorithm 2).
struct IncrementalOptions {
  /// Minimum average intra-cluster correlation delta; clusters below it are
  /// split further during the initial phase.
  double correlation_threshold = 0.8;
  /// Split factor p: a low-correlation cluster of size s is re-clustered
  /// into max(2, p * s) sub-clusters (paper sets p to 20%).
  double split_fraction = 0.2;
  /// Clusters of at most this size are "small" and candidates for merging
  /// during the refinement phase.
  std::size_t small_cluster_size = 3;
  /// The refinement phase may trade a little correlation for fewer clusters
  /// (the labeling cost scales with the cluster count): a merge is accepted
  /// while the merged cluster stays above slack * threshold.
  double merge_correlation_slack = 0.85;
  std::uint64_t seed = 1;
  /// Worker threads for the correlation matrix and the refinement phase's
  /// per-candidate gain evaluation: 0 sizes the pool from
  /// `std::thread::hardware_concurrency()`, 1 runs serially. Clusterings are
  /// bit-identical for every value; see the determinism contract in
  /// common/thread_pool.h.
  std::size_t num_threads = 0;
};

/// Two-phase incremental clustering: (1) recursively split clusters whose
/// average correlation is below the threshold; (2) merge small clusters and
/// move individual series guided by the correlation gain of Definition 1,
/// never letting a merge drop a cluster below the threshold.
Result<Clustering> IncrementalClustering(
    const std::vector<ts::TimeSeries>& series,
    const IncrementalOptions& options = {});

}  // namespace adarts::cluster

#endif  // ADARTS_CLUSTER_INCREMENTAL_H_
