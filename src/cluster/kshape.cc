#include "cluster/kshape.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "common/rng.h"
#include "ts/correlation.h"

namespace adarts::cluster {

namespace {

la::Vector ZNormVec(const ts::TimeSeries& s) {
  return s.ZNormalized().values();
}

/// Shifts `v` right by `shift` samples with zero padding (negative = left).
la::Vector ShiftVector(const la::Vector& v, int shift) {
  la::Vector out(v.size(), 0.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) - shift;
    if (j >= 0 && j < static_cast<std::ptrdiff_t>(v.size())) {
      out[i] = v[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

/// Shape extraction: the k-shape centroid is the dominant eigenvector of
/// Q^T A^T A Q over the aligned members A (Q centres the vector). Computed
/// by power iteration using only matrix-vector products with A.
la::Vector ExtractShape(const std::vector<la::Vector>& aligned,
                        const la::Vector& previous_centroid) {
  if (aligned.empty()) return previous_centroid;
  const std::size_t len = aligned[0].size();

  const auto center = [](la::Vector v) {
    const double m = la::Mean(v);
    for (double& x : v) x -= m;
    return v;
  };

  // v <- Q A^T A Q v, normalised.
  la::Vector v = previous_centroid;
  if (la::Norm2(v) < 1e-9) v.assign(len, 1.0);
  for (int iter = 0; iter < 30; ++iter) {
    la::Vector qv = center(v);
    la::Vector acc(len, 0.0);
    for (const la::Vector& row : aligned) {
      const double dot = la::Dot(row, qv);
      la::Axpy(dot, row, &acc);
    }
    acc = center(acc);
    const double norm = la::Norm2(acc);
    if (norm < 1e-12) break;
    for (double& x : acc) x /= norm;
    // Early exit when converged.
    la::Vector diff = la::Subtract(acc, v);
    v = std::move(acc);
    if (la::Norm2(diff) < 1e-8) break;
  }
  // Resolve the sign ambiguity: the centroid should correlate positively
  // with the members.
  double agreement = 0.0;
  for (const la::Vector& row : aligned) agreement += la::Dot(row, v);
  if (agreement < 0.0) {
    for (double& x : v) x = -x;
  }
  return v;
}

}  // namespace

Result<Clustering> KShapeClustering(const std::vector<ts::TimeSeries>& series,
                                    const KShapeOptions& options) {
  if (series.empty()) return Status::InvalidArgument("no series to cluster");
  const std::size_t n = series.size();
  const std::size_t k = std::min(options.k, n);
  if (k == 0) return Status::InvalidArgument("k must be positive");

  std::vector<la::Vector> z;
  z.reserve(n);
  for (const auto& s : series) z.push_back(ZNormVec(s));
  const std::size_t len = z[0].size();
  for (const auto& v : z) {
    if (v.size() != len) {
      return Status::InvalidArgument("k-shape requires equal-length series");
    }
  }

  Rng rng(options.seed);
  // Farthest-first initial centroids over the SBD metric: the first is a
  // random member, each next the series farthest from the chosen set. This
  // reliably separates distinct shape families from iteration one.
  std::vector<la::Vector> centroids;
  centroids.reserve(k);
  {
    std::vector<double> min_dist(n, 1e300);
    std::size_t next = static_cast<std::size_t>(rng.UniformInt(n));
    for (std::size_t c = 0; c < k; ++c) {
      centroids.push_back(z[next]);
      double best = -1.0;
      std::size_t best_idx = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = 1.0 - ts::BestAlignment(z[next], z[i]).ncc;
        min_dist[i] = std::min(min_dist[i], d);
        if (min_dist[i] > best) {
          best = min_dist[i];
          best_idx = i;
        }
      }
      next = best_idx;
    }
  }
  std::vector<std::size_t> assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    double best = 1e300;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = 1.0 - ts::BestAlignment(centroids[c], z[i]).ncc;
      if (d < best) {
        best = d;
        assign[i] = c;
      }
    }
  }

  for (int iter = 0; iter < options.max_iters; ++iter) {
    // --- Refinement: re-extract every centroid from aligned members.
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<la::Vector> aligned;
      for (std::size_t i = 0; i < n; ++i) {
        if (assign[i] != c) continue;
        if (la::Norm2(centroids[c]) < 1e-9) {
          aligned.push_back(z[i]);
        } else {
          const ts::SbdAlignment al = ts::BestAlignment(centroids[c], z[i]);
          aligned.push_back(ShiftVector(z[i], al.shift));
        }
      }
      centroids[c] = ExtractShape(aligned, centroids[c]);
    }

    // --- Assignment: nearest centroid under SBD.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = 1e300;
      std::size_t best_c = assign[i];
      for (std::size_t c = 0; c < k; ++c) {
        if (la::Norm2(centroids[c]) < 1e-9) continue;
        const double d = 1.0 - ts::BestAlignment(centroids[c], z[i]).ncc;
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (best_c != assign[i]) {
        assign[i] = best_c;
        changed = true;
      }
    }

    // Reseed empty clusters with a random member of the largest cluster.
    std::vector<std::size_t> sizes(k, 0);
    for (std::size_t a : assign) ++sizes[a];
    for (std::size_t c = 0; c < k; ++c) {
      if (sizes[c] > 0) continue;
      const std::size_t big = static_cast<std::size_t>(
          std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
      for (std::size_t i = 0; i < n; ++i) {
        if (assign[i] == big) {
          assign[i] = c;
          --sizes[big];
          ++sizes[c];
          changed = true;
          break;
        }
      }
    }
    if (!changed && iter > 0) break;
  }

  Clustering out;
  out.clusters.assign(k, {});
  for (std::size_t i = 0; i < n; ++i) out.clusters[assign[i]].push_back(i);
  std::erase_if(out.clusters,
                [](const std::vector<std::size_t>& c) { return c.empty(); });
  return out;
}

Result<Clustering> KShapeGridSearch(const std::vector<ts::TimeSeries>& series,
                                    std::size_t max_k, const la::Matrix& corr,
                                    std::uint64_t seed) {
  if (series.size() < 2) return Status::InvalidArgument("too few series");
  max_k = std::min(max_k, series.size());
  Clustering best;
  double best_score = -1.0;
  for (std::size_t k = 2; k <= max_k; ++k) {
    KShapeOptions opts;
    opts.k = k;
    opts.seed = seed + k;
    ADARTS_ASSIGN_OR_RETURN(Clustering c, KShapeClustering(series, opts));
    // Quality trades correlation against fragmentation: prefer the smallest
    // k whose correlation is within 1% of the best seen.
    const double score = AverageIntraClusterCorrelation(c, corr) -
                         0.002 * static_cast<double>(c.NumClusters());
    if (score > best_score) {
      best_score = score;
      best = std::move(c);
    }
  }
  return best;
}

Result<Clustering> KShapeIterativeSplit(
    const std::vector<ts::TimeSeries>& series, double threshold,
    const la::Matrix& corr, std::uint64_t seed) {
  if (series.empty()) return Status::InvalidArgument("no series to cluster");
  std::deque<std::vector<std::size_t>> pending;
  std::vector<std::size_t> all(series.size());
  std::iota(all.begin(), all.end(), 0);
  pending.push_back(std::move(all));

  Clustering out;
  std::uint64_t split_seed = seed;
  while (!pending.empty()) {
    std::vector<std::size_t> cur = std::move(pending.front());
    pending.pop_front();
    if (cur.size() <= 1 || ClusterAvgCorrelation(cur, corr) >= threshold) {
      out.clusters.push_back(std::move(cur));
      continue;
    }
    // Split in two with 2-shape on the subset.
    std::vector<ts::TimeSeries> subset;
    subset.reserve(cur.size());
    for (std::size_t i : cur) subset.push_back(series[i]);
    KShapeOptions opts;
    opts.k = 2;
    opts.seed = ++split_seed;
    ADARTS_ASSIGN_OR_RETURN(Clustering split, KShapeClustering(subset, opts));
    if (split.NumClusters() < 2) {
      out.clusters.push_back(std::move(cur));  // unsplittable
      continue;
    }
    for (const auto& part : split.clusters) {
      std::vector<std::size_t> mapped;
      mapped.reserve(part.size());
      for (std::size_t local : part) mapped.push_back(cur[local]);
      pending.push_back(std::move(mapped));
    }
  }
  return out;
}

}  // namespace adarts::cluster
