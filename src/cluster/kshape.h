#ifndef ADARTS_CLUSTER_KSHAPE_H_
#define ADARTS_CLUSTER_KSHAPE_H_

#include <cstddef>
#include <cstdint>

#include "cluster/clustering.h"

namespace adarts::cluster {

/// Options for the k-shape baseline (Paparrizos & Gravano 2015).
struct KShapeOptions {
  std::size_t k = 8;        ///< number of clusters (paper default)
  int max_iters = 20;       ///< refinement iterations
  std::uint64_t seed = 1;   ///< initial random assignment
};

/// Shape-based clustering: assigns series to the centroid with minimal
/// shape-based distance (1 - max NCC_c) and re-extracts centroids by power
/// iteration on the aligned, centred Gram operator.
Result<Clustering> KShapeClustering(const std::vector<ts::TimeSeries>& series,
                                    const KShapeOptions& options = {});

/// Fig. 11 variant: grid-searches k in [2, max_k] and returns the clustering
/// with the best average intra-cluster correlation (the "ground truth"
/// cluster count at a very high runtime cost).
Result<Clustering> KShapeGridSearch(const std::vector<ts::TimeSeries>& series,
                                    std::size_t max_k,
                                    const la::Matrix& corr,
                                    std::uint64_t seed = 1);

/// Fig. 11 variant: iteratively splits every cluster whose average
/// correlation is below `threshold` with 2-shape, without any merge phase —
/// high correlation but a cluster explosion.
Result<Clustering> KShapeIterativeSplit(
    const std::vector<ts::TimeSeries>& series, double threshold,
    const la::Matrix& corr, std::uint64_t seed = 1);

}  // namespace adarts::cluster

#endif  // ADARTS_CLUSTER_KSHAPE_H_
