#ifndef ADARTS_COMMON_BOUNDED_QUEUE_H_
#define ADARTS_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace adarts {

/// A fixed-capacity MPMC FIFO — the admission queue behind the serving
/// daemon (DESIGN.md §10). Producers never block: `TryPush` returns false
/// when the queue is full (the caller sheds the work with an explicit
/// `kUnavailable` response) or closed. Consumers block in `Pop` until an
/// item arrives or the queue is closed AND drained — so closing during
/// shutdown lets workers finish every already-admitted item before exiting,
/// which is what "no lost in-flight requests" rests on.
template <typename T>
class BoundedQueue {
 public:
  /// Capacity 0 degenerates to "shed everything" (every TryPush fails).
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues without blocking. False when full or closed — the item is
  /// untouched (still valid at the caller) in that case.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (true, item moved into *out) or the
  /// queue is closed and empty (false).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects future pushes and wakes every blocked consumer; items already
  /// queued remain poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace adarts

#endif  // ADARTS_COMMON_BOUNDED_QUEUE_H_
