#include "common/cancellation.h"

namespace adarts {

CancellationToken CancellationToken::WithDeadline(double seconds) {
  CancellationToken token;
  token.state_->has_deadline = true;
  token.state_->deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds > 0.0 ? seconds : 0.0));
  return token;
}

bool CancellationToken::expired() const {
  if (cancel_requested()) return true;
  return state_->has_deadline &&
         std::chrono::steady_clock::now() >= state_->deadline;
}

double CancellationToken::RemainingSeconds() const {
  if (cancel_requested()) return 0.0;
  if (!state_->has_deadline) return std::numeric_limits<double>::infinity();
  const double left =
      std::chrono::duration<double>(state_->deadline -
                                    std::chrono::steady_clock::now())
          .count();
  return left > 0.0 ? left : 0.0;
}

Status CancellationToken::Check(std::string_view what) const {
  if (cancel_requested()) {
    return Status::Cancelled(std::string(what) + " cancelled");
  }
  if (state_->has_deadline &&
      std::chrono::steady_clock::now() >= state_->deadline) {
    return Status::DeadlineExceeded(std::string(what) + " deadline exceeded");
  }
  return Status::OK();
}

}  // namespace adarts
