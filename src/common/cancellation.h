#ifndef ADARTS_COMMON_CANCELLATION_H_
#define ADARTS_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace adarts {

/// Cooperative cancellation with an optional wall-clock deadline.
///
/// A token is a cheap copyable handle to shared state: the caller keeps one
/// copy (to `Cancel()` from another thread) and passes a pointer down
/// through option structs (`TrainOptions::cancel`,
/// `ModelRaceOptions::cancel`, `RecommendBatchOptions::cancel`). Long
/// phases poll `Check()` between units of work and return the resulting
/// `kCancelled` / `kDeadlineExceeded` Status up the stack — nothing is
/// preempted, no thread is killed, and partially-computed state never
/// escapes (every caller returns the error before publishing results).
///
/// Determinism: a token with no deadline and no `Cancel()` call never
/// fires, so plumbing one through changes nothing; deadlines make control
/// flow depend on wall-clock time and are therefore off by default
/// everywhere (see DESIGN.md §7).
class CancellationToken {
 public:
  /// A token that never expires on its own (no deadline).
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// A token that expires `seconds` of wall-clock time from now (in
  /// addition to explicit Cancel()). Non-positive budgets are already
  /// expired.
  static CancellationToken WithDeadline(double seconds);

  /// Requests cancellation; thread-safe and idempotent.
  void Cancel() { state_->cancelled.store(true, std::memory_order_release); }

  /// True once Cancel() has been called.
  bool cancel_requested() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  bool has_deadline() const { return state_->has_deadline; }

  /// True when cancelled or past the deadline — work should stop.
  bool expired() const;

  /// Seconds left until the deadline (+inf without one, 0 when expired).
  double RemainingSeconds() const;

  /// OK while work may continue; `kCancelled` / `kDeadlineExceeded`
  /// (mentioning `what`) once it should stop.
  Status Check(std::string_view what) const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };
  std::shared_ptr<State> state_;
};

}  // namespace adarts

#endif  // ADARTS_COMMON_CANCELLATION_H_
