#ifndef ADARTS_COMMON_CHECK_H_
#define ADARTS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace adarts::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "ADARTS_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace adarts::internal

/// Aborts the process when `cond` is false. Used for programming-error
/// invariants (dimension mismatches, index bounds) that are not recoverable
/// at runtime; recoverable conditions return Status instead.
#define ADARTS_CHECK(cond)                                        \
  do {                                                            \
    if (!(cond)) ::adarts::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

/// Debug-only invariant check; compiled out in NDEBUG (Release) builds on
/// hot paths.
#ifdef NDEBUG
#define ADARTS_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define ADARTS_DCHECK(cond) ADARTS_CHECK(cond)
#endif

#endif  // ADARTS_COMMON_CHECK_H_
