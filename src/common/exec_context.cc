#include "common/exec_context.h"

#include "common/log.h"

namespace adarts {

ExecContext::ExecContext(std::size_t num_threads,
                         const CancellationToken* cancel)
    : ExecContext(num_threads, cancel, TraceOptions::FromEnv()) {}

ExecContext::ExecContext(std::size_t num_threads,
                         const CancellationToken* cancel,
                         const TraceOptions& trace)
    : num_threads_(num_threads), cancel_(cancel), trace_options_(trace) {
  if (trace_options_.enabled) {
    // First-owner-wins: under a tool's ScopedTrace (or an outer context)
    // Start returns false and this context just records into the session.
    owns_trace_ = Tracer::Global().Start(trace_options_);
  }
}

ExecContext::~ExecContext() {
  if (!owns_trace_) return;
  Tracer& tracer = Tracer::Global();
  tracer.Stop();
  if (trace_options_.path.empty()) return;
  const Status written = tracer.WriteJson(trace_options_.path);
  if (!written.ok()) {
    LogWarn("trace export failed: " + written.ToString());
  }
}

ThreadPool& ExecContext::pool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  return *pool_;
}

bool ExecContext::pool_created() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_ != nullptr;
}

std::vector<Rng> ExecContext::ForkRngs(Rng* parent, std::size_t count) {
  std::vector<Rng> children;
  children.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    children.push_back(parent->Fork());
  }
  return children;
}

void ParallelFor(ExecContext& ctx, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // A serial context (or a single iteration) never needs the pool; avoiding
  // the lazy construction keeps serial paths thread-free end to end.
  ThreadPool* pool = nullptr;
  if (n > 1 && ThreadPool::ResolveThreadCount(ctx.num_threads()) > 1) {
    pool = &ctx.pool();
  }
  ParallelFor(pool, n, fn, ctx.cancel());
}

}  // namespace adarts
