#include "common/exec_context.h"

namespace adarts {

ThreadPool& ExecContext::pool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  return *pool_;
}

bool ExecContext::pool_created() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_ != nullptr;
}

std::vector<Rng> ExecContext::ForkRngs(Rng* parent, std::size_t count) {
  std::vector<Rng> children;
  children.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    children.push_back(parent->Fork());
  }
  return children;
}

void ParallelFor(ExecContext& ctx, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // A serial context (or a single iteration) never needs the pool; avoiding
  // the lazy construction keeps serial paths thread-free end to end.
  ThreadPool* pool = nullptr;
  if (n > 1 && ThreadPool::ResolveThreadCount(ctx.num_threads()) > 1) {
    pool = &ctx.pool();
  }
  ParallelFor(pool, n, fn, ctx.cancel());
}

}  // namespace adarts
