#ifndef ADARTS_COMMON_EXEC_CONTEXT_H_
#define ADARTS_COMMON_EXEC_CONTEXT_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace adarts {

/// The execution spine of the engine (DESIGN.md §8): one object carrying
/// everything a run needs besides its inputs —
///
///   * the shared `ThreadPool`, lazily constructed on first parallel use and
///     never per stage: a whole `Adarts::Train` run builds exactly one pool
///     and hands it to clustering, labeling, feature extraction, ModelRace
///     and the committee refits;
///   * the cooperative `CancellationToken` (not owned; optional), polled by
///     every long phase and inside the cancel-aware parallel loops;
///   * the `Metrics` registry the stages record counters and wall-clock
///     spans into (`train.clustering_seconds`, `race.pipelines_eliminated`,
///     `recommend.degradation_rung`, ...);
///   * the deterministic RNG fork policy (`ForkRngs`): per-task child
///     generators are forked up front in index order on the calling thread,
///     which is what keeps every parallel stage bit-identical across thread
///     counts.
///
/// A context is cheap to create, not copyable (it owns the pool), and safe
/// to share across the stages of one run or across many runs — metrics
/// accumulate, the pool is reused. `ExecContext&` replaces the deprecated
/// per-options `num_threads` / `cancel` fields throughout the API; the old
/// fields still work for one release by populating a temporary default
/// context behind the scenes.
class ExecContext {
 public:
  /// A context with `num_threads` workers (0 = hardware concurrency, 1 =
  /// serial) and an optional cancellation/deadline token (not owned; must
  /// outlive the context's users, nullptr disables cancellation). Tracing
  /// follows `ADARTS_TRACE=<path>` (via `TraceOptions::FromEnv`).
  explicit ExecContext(std::size_t num_threads = 0,
                       const CancellationToken* cancel = nullptr);

  /// Same, with explicit tracing control. When `trace.enabled` and no other
  /// owner already started the global tracer, this context starts a trace
  /// session and — on destruction — stops it and exports the JSON to
  /// `trace.path`. A context that did not win ownership (e.g. running under
  /// a tool's `ScopedTrace`) still records events, it just doesn't manage
  /// the session.
  ExecContext(std::size_t num_threads, const CancellationToken* cancel,
              const TraceOptions& trace);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;
  ~ExecContext();

  /// The configured worker count (unresolved: 0 means hardware concurrency).
  std::size_t num_threads() const { return num_threads_; }

  /// The shared pool, constructed on first call — exactly one per context,
  /// regardless of how many stages ask for it. Thread-safe.
  ThreadPool& pool();

  /// True once `pool()` has constructed the pool (observability for the
  /// one-pool-per-run contract tests).
  bool pool_created() const;

  const CancellationToken* cancel() const { return cancel_; }

  /// Swaps the cancellation token (e.g. to scope a deadline to one phase).
  /// Not thread-safe against concurrent readers; set it between stages.
  void set_cancel(const CancellationToken* cancel) { cancel_ = cancel; }

  /// OK while work may continue; the token's `kCancelled` /
  /// `kDeadlineExceeded` Status (mentioning `what`) once it should stop.
  /// Always OK without a token.
  Status CheckCancelled(std::string_view what) const {
    return cancel_ == nullptr ? Status::OK() : cancel_->Check(what);
  }

  /// True when the token is cancelled or past its deadline.
  bool cancelled() const { return cancel_ != nullptr && cancel_->expired(); }

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// The tracing configuration this context was built with.
  const TraceOptions& trace_options() const { return trace_options_; }

  /// True when this context started (and will export) the trace session.
  bool owns_trace() const { return owns_trace_; }

  /// The deterministic fork policy (PR 1's contract): `count` child
  /// generators forked from `parent` serially on the calling thread, child
  /// `i` coming from the i-th `Fork()` call — so the per-index streams are
  /// identical no matter how many workers later consume them.
  static std::vector<Rng> ForkRngs(Rng* parent, std::size_t count);

 private:
  std::size_t num_threads_ = 0;
  const CancellationToken* cancel_ = nullptr;
  TraceOptions trace_options_;
  bool owns_trace_ = false;
  Metrics metrics_;
  mutable std::mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_;
};

/// `ParallelFor` on the context's spine: runs `fn(0) .. fn(n-1)` on the
/// context's shared pool, honouring the context's cancellation token with
/// the skip-but-count barrier semantics of the cancel-aware overload (the
/// caller MUST re-check the token afterwards before publishing results).
/// Serial contexts (and `n <= 1`) run inline without ever constructing the
/// pool. Same determinism contract as `ParallelFor(ThreadPool*, ...)`.
void ParallelFor(ExecContext& ctx, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace adarts

#endif  // ADARTS_COMMON_EXEC_CONTEXT_H_
