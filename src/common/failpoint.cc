#include "common/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

namespace adarts {

namespace {

/// Parses a spec-list code token. Accepts the short and long spellings used
/// in docs and tests.
Result<StatusCode> ParseCode(std::string_view token) {
  if (token == "internal") return StatusCode::kInternal;
  if (token == "invalid" || token == "invalid_argument") {
    return StatusCode::kInvalidArgument;
  }
  if (token == "numerical" || token == "numerical_error") {
    return StatusCode::kNumericalError;
  }
  if (token == "notfound" || token == "not_found") return StatusCode::kNotFound;
  if (token == "failed_precondition") return StatusCode::kFailedPrecondition;
  if (token == "out_of_range") return StatusCode::kOutOfRange;
  if (token == "cancelled") return StatusCode::kCancelled;
  if (token == "deadline" || token == "deadline_exceeded") {
    return StatusCode::kDeadlineExceeded;
  }
  return Status::InvalidArgument("unknown failpoint status code: " +
                                 std::string(token));
}

}  // namespace

std::atomic<int> FailpointRegistry::armed_count_{0};

namespace {

/// Forces env-configured activations to arm at process start. The macro
/// fast path (`Armed()`) never constructs the registry while the armed
/// count is zero, so without this a binary that sets ADARTS_FAILPOINTS but
/// never touches the registry programmatically would silently run healthy.
const struct ArmFromEnvAtStartup {
  ArmFromEnvAtStartup() {
    if (std::getenv("ADARTS_FAILPOINTS") != nullptr) {
      FailpointRegistry::Instance();
    }
  }
} arm_from_env_at_startup;

}  // namespace

struct FailpointRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, Activation, std::less<>> active;
};

FailpointRegistry::FailpointRegistry() : impl_(new Impl) {
  // Env-configured activations arm once, at first registry use; a bad spec
  // cannot return a Status from here, so it aborts loudly rather than
  // silently running the suite without the requested faults.
  if (const char* env = std::getenv("ADARTS_FAILPOINTS")) {
    const Status st = ArmFromSpec(env);
    if (!st.ok()) {
      std::fprintf(stderr, "ADARTS_FAILPOINTS: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Enable(const std::string& site, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto [it, inserted] =
      impl_->active.insert_or_assign(site, Activation{std::move(spec), 0});
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FailpointRegistry::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->active.erase(site) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  armed_count_.fetch_sub(static_cast<int>(impl_->active.size()),
                         std::memory_order_relaxed);
  impl_->active.clear();
}

Status FailpointRegistry::ArmFromSpec(std::string_view spec_list) {
  std::size_t pos = 0;
  while (pos < spec_list.size()) {
    std::size_t end = spec_list.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = spec_list.size();
    std::string_view entry = spec_list.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding spaces.
    while (!entry.empty() && entry.front() == ' ') entry.remove_prefix(1);
    while (!entry.empty() && entry.back() == ' ') entry.remove_suffix(1);
    if (entry.empty()) continue;

    FailpointSpec spec;
    // `site[=code][@skip]` — split off @skip first, then =code.
    if (const std::size_t at = entry.rfind('@'); at != std::string_view::npos) {
      const std::string_view skip_str = entry.substr(at + 1);
      if (skip_str.empty() ||
          skip_str.find_first_not_of("0123456789") != std::string_view::npos) {
        return Status::InvalidArgument("bad failpoint skip count in '" +
                                       std::string(entry) + "'");
      }
      spec.skip = std::strtoull(std::string(skip_str).c_str(), nullptr, 10);
      entry = entry.substr(0, at);
    }
    if (const std::size_t eq = entry.find('='); eq != std::string_view::npos) {
      ADARTS_ASSIGN_OR_RETURN(spec.code, ParseCode(entry.substr(eq + 1)));
      entry = entry.substr(0, eq);
    }
    if (entry.empty()) {
      return Status::InvalidArgument("empty failpoint site name in spec list");
    }
    Enable(std::string(entry), std::move(spec));
  }
  return Status::OK();
}

Status FailpointRegistry::Check(std::string_view site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->active.find(site);
  if (it == impl_->active.end()) return Status::OK();
  Activation& act = it->second;
  ++act.hits;
  if (act.hits <= act.spec.skip) return Status::OK();
  if (act.spec.max_fires >= 0 &&
      act.hits > act.spec.skip +
                     static_cast<std::uint64_t>(act.spec.max_fires)) {
    return Status::OK();
  }
  const std::string message =
      act.spec.message.empty()
          ? "failpoint '" + std::string(site) + "' fired"
          : act.spec.message;
  return Status(act.spec.code, message);
}

bool FailpointRegistry::Triggers(std::string_view site) {
  return !Check(site).ok();
}

std::uint64_t FailpointRegistry::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->active.find(site);
  return it == impl_->active.end() ? 0 : it->second.hits;
}

std::vector<std::string> FailpointRegistry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> out;
  out.reserve(impl_->active.size());
  for (const auto& [name, act] : impl_->active) out.push_back(name);
  return out;  // std::map iterates sorted
}

const std::vector<std::string_view>& AllFailpointSites() {
  // Every ADARTS_FAILPOINT / ADARTS_FAILPOINT_TRIGGERS site in the library.
  // tests/fault_injection_test.cc fires each entry and asserts the planted
  // site reacts, which keeps this list honest.
  static const std::vector<std::string_view>* sites =
      new std::vector<std::string_view>{
          "adarts.load.read",
          "adarts.load.verify",
          "adarts.save.commit",
          "adarts.save.write",
          "adarts.train.start",
          "adarts.update.assign",
          "adarts.update.label",
          "adarts.update.race",
          "adarts.update.start",
          "automl.pipeline.fit",
          "automl.race.iteration",
          "automl.vote.member",
          "features.extract",
          "impute.cdrec.fit",
          "impute.dynammo.fit",
          "impute.grouse.fit",
          "impute.rosl.fit",
          "impute.soft.fit",
          "impute.svd.fit",
          "impute.svt.fit",
          "impute.tenmf.fit",
          "impute.trmf.fit",
          "io.csv.read",
          "io.csv.write",
          "la.pca.fit",
          "la.svd",
          "net.accept",
          "net.queue.push",
          "net.read.frame",
          "net.reload.swap",
          "net.reload.verify",
          "net.write.frame",
      };
  return *sites;
}

ScopedFailpoint::ScopedFailpoint(std::string site, FailpointSpec spec)
    : site_(std::move(site)) {
  FailpointRegistry::Instance().Enable(site_, std::move(spec));
}

ScopedFailpoint::~ScopedFailpoint() {
  FailpointRegistry::Instance().Disable(site_);
}

}  // namespace adarts
