#ifndef ADARTS_COMMON_FAILPOINT_H_
#define ADARTS_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace adarts {

/// Deterministic fault injection for testing Status paths that healthy
/// inputs cannot reach (a non-converging fit, a failed write, a poisoned
/// committee member).
///
/// Library code plants named sites with `ADARTS_FAILPOINT("la.svd")`; the
/// macro is a no-op unless at least one failpoint is armed (one relaxed
/// atomic load), so production paths pay nothing. Tests arm sites
/// programmatically (`ScopedFailpoint`) or via the `ADARTS_FAILPOINTS`
/// environment variable, read once at first use:
///
///   ADARTS_FAILPOINTS="la.svd=internal;io.csv.read=notfound@3"
///
/// Each entry is `site[=code][@skip]`: `code` names the injected StatusCode
/// (`internal`, `invalid`, `numerical`, `notfound`, `failed_precondition`,
/// `out_of_range`, `cancelled`, `deadline`; default `internal`) and `skip`
/// is the number of hits to let through before firing (default 0: fire on
/// the first hit). Hit counting is per-activation and deterministic under
/// serial execution.
///
/// Naming convention (DESIGN.md §7): `<module>.<component>.<operation>`,
/// lower-case, dot-separated — e.g. `impute.cdrec.fit`,
/// `adarts.save.write`.

/// Activation parameters of one armed failpoint.
struct FailpointSpec {
  StatusCode code = StatusCode::kInternal;
  /// Custom message; empty uses "failpoint '<site>' fired".
  std::string message;
  /// Hits to let through before the site starts firing.
  std::uint64_t skip = 0;
  /// Fires at most this many times after `skip`; -1 = every hit.
  std::int64_t max_fires = -1;
};

/// Process-wide registry of armed failpoints. Thread-safe; the unarmed fast
/// path is a single relaxed atomic load.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Arms `site` with `spec` (re-arming resets the hit counter).
  void Enable(const std::string& site, FailpointSpec spec = {});
  /// Disarms `site`; unknown names are ignored.
  void Disable(const std::string& site);
  /// Disarms everything (including env-configured activations).
  void DisableAll();

  /// Parses an `ADARTS_FAILPOINTS`-style spec list and arms each entry.
  Status ArmFromSpec(std::string_view spec_list);

  /// Evaluates `site`: increments its hit counter and returns the injected
  /// error when armed and triggered, OK otherwise. Called via the macros.
  Status Check(std::string_view site);

  /// Bool-valued variant for sites that cannot return a Status (e.g. a
  /// committee member producing a probability vector): true = simulate the
  /// site's failure mode.
  bool Triggers(std::string_view site);

  /// Total evaluations of `site` since it was (re-)armed; 0 when unarmed.
  std::uint64_t HitCount(const std::string& site) const;

  /// Names currently armed, sorted.
  std::vector<std::string> ArmedSites() const;

  /// True when at least one site is armed (the macro fast path).
  static bool Armed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  FailpointRegistry();

  struct Activation {
    FailpointSpec spec;
    std::uint64_t hits = 0;
  };

  /// Decides firing and counts the hit; returns the message to inject (or
  /// nullopt). Implemented in the .cc to keep <map>/<mutex> out of the
  /// header users include everywhere.
  struct Impl;
  Impl* impl_;

  static std::atomic<int> armed_count_;
};

/// Canonical list of every injection site planted in the library, kept in
/// one place so sweep harnesses (tests/fault_injection_test.cc, the CI
/// fault-injection job) can iterate all of them. A test cross-checks that
/// each listed site actually fires.
const std::vector<std::string_view>& AllFailpointSites();

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string site, FailpointSpec spec = {});
  ~ScopedFailpoint();
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

/// Evaluates a failpoint in a Status- or Result-returning function:
/// propagates the injected error out of the enclosing function when armed
/// and triggered.
#define ADARTS_FAILPOINT(site)                                       \
  do {                                                               \
    if (::adarts::FailpointRegistry::Armed()) {                      \
      ::adarts::Status _adarts_fp =                                  \
          ::adarts::FailpointRegistry::Instance().Check(site);       \
      if (!_adarts_fp.ok()) return _adarts_fp;                       \
    }                                                                \
  } while (false)

/// Bool expression for sites that cannot return Status; false when unarmed.
#define ADARTS_FAILPOINT_TRIGGERS(site)       \
  (::adarts::FailpointRegistry::Armed() &&    \
   ::adarts::FailpointRegistry::Instance().Triggers(site))

}  // namespace adarts

#endif  // ADARTS_COMMON_FAILPOINT_H_
