#include "common/histogram.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace adarts {

namespace {

constexpr std::uint64_t kMaxValue =
    (std::uint64_t{1} << (LatencyHistogram::kMaxExponent + 1)) - 1;

/// Smallest bucket whose cumulative count reaches `target` (1-based), given
/// the already-loaded bucket counts. Returns the bucket's upper bound.
std::uint64_t PercentileFromBuckets(
    const std::uint64_t (&counts)[LatencyHistogram::kNumBuckets],
    std::uint64_t target) {
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    cumulative += counts[b];
    if (cumulative >= target) return LatencyHistogram::BucketUpperBound(b);
  }
  return LatencyHistogram::BucketUpperBound(LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

std::size_t LatencyHistogram::BucketIndex(std::uint64_t ns) {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  if (ns > kMaxValue) ns = kMaxValue;
  const int msb = 63 - std::countl_zero(ns);  // >= kSubBucketBits here
  const int shift = msb - kSubBucketBits;
  const std::size_t sub =
      static_cast<std::size_t>(ns >> shift) - kSubBuckets;  // [0, 16)
  const std::size_t tier = static_cast<std::size_t>(msb - kSubBucketBits);
  return kSubBuckets + tier * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::BucketUpperBound(std::size_t index) {
  if (index < kSubBuckets) return index;  // exact unit buckets
  const std::size_t tier = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  const std::uint64_t low = (kSubBuckets + sub) << tier;
  return low + (std::uint64_t{1} << tier) - 1;
}

void LatencyHistogram::Record(std::uint64_t ns) {
  buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::RecordSeconds(double seconds) {
  if (!(seconds > 0.0)) {
    Record(0);
    return;
  }
  Record(static_cast<std::uint64_t>(std::llround(seconds * 1e9)));
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  const std::uint64_t other_max =
      other.max_ns_.load(std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_ns_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Reset() {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  // Load the buckets once so every percentile reads the same state; the
  // count is re-derived from the loaded buckets, keeping target ranks and
  // cumulative sums consistent even if recorders raced the snapshot.
  std::uint64_t counts[kNumBuckets];
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  snap.count = total;
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  snap.max_ns = max_ns_.load(std::memory_order_relaxed);
  if (total == 0) return snap;
  // Nearest-rank percentiles: rank = ceil(q * count), 1-based.
  const auto rank = [total](std::uint64_t num, std::uint64_t den) {
    return (total * num + den - 1) / den;
  };
  snap.p50_ns = PercentileFromBuckets(counts, rank(50, 100));
  snap.p90_ns = PercentileFromBuckets(counts, rank(90, 100));
  snap.p99_ns = PercentileFromBuckets(counts, rank(99, 100));
  return snap;
}

std::string HistogramSnapshotToJson(const HistogramSnapshot& snapshot) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"sum_ns\":%llu,\"max_ns\":%llu,"
                "\"p50_ns\":%llu,\"p90_ns\":%llu,\"p99_ns\":%llu}",
                static_cast<unsigned long long>(snapshot.count),
                static_cast<unsigned long long>(snapshot.sum_ns),
                static_cast<unsigned long long>(snapshot.max_ns),
                static_cast<unsigned long long>(snapshot.p50_ns),
                static_cast<unsigned long long>(snapshot.p90_ns),
                static_cast<unsigned long long>(snapshot.p99_ns));
  return buf;
}

}  // namespace adarts
