#ifndef ADARTS_COMMON_HISTOGRAM_H_
#define ADARTS_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace adarts {

/// Point-in-time summary of one `LatencyHistogram`: event count, exact
/// maximum, and log-bucket percentile estimates in nanoseconds. Percentile
/// values are the *bucket representatives* (the largest value the winning
/// bucket can hold), so two histograms with the same recorded multiset
/// produce bit-identical snapshots — the basis of the 1-vs-N-thread
/// determinism tests.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;

  bool operator==(const HistogramSnapshot&) const = default;

  /// Mean in nanoseconds; 0 when empty.
  double MeanNs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
};

/// A fixed-layout, log-bucketed latency histogram (HDR-style): values are
/// nanoseconds, buckets are powers of two subdivided into 16 linear
/// sub-buckets (values below 16 ns land in exact unit buckets). The layout
/// is a compile-time constant — no resizing, no configuration — so bucket
/// indices, merges, and percentile snapshots are bit-deterministic: the same
/// multiset of durations produces the same buckets no matter how many
/// threads recorded them or in what order.
///
/// `Record` is wait-free (two relaxed atomic adds plus a relaxed CAS-max)
/// and safe to call from any number of threads concurrently; the pointer
/// returned by `Metrics::histogram()` is stable, so hot loops hoist the
/// handle exactly like `MetricCounter`. Recorded values never feed back
/// into any computation — histograms observe the engine, they cannot
/// perturb its bit-determinism contract.
class LatencyHistogram {
 public:
  /// 16 exact unit buckets + one 16-sub-bucket tier per power of two up to
  /// 2^44 ns (~4.9 hours); larger values clamp into the top bucket.
  static constexpr int kSubBucketBits = 4;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  static constexpr int kMaxExponent = 44;
  static constexpr std::size_t kNumBuckets =
      kSubBuckets +
      static_cast<std::size_t>(kMaxExponent - kSubBucketBits + 1) * kSubBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one duration in nanoseconds.
  void Record(std::uint64_t ns);

  /// Records one duration in seconds (negative durations clamp to 0).
  void RecordSeconds(double seconds);

  /// Adds every bucket, the count/sum, and the max of `other` into this
  /// histogram. Because the layout is fixed, merging per-thread histograms
  /// is bucket-wise addition and commutes — merge order cannot change the
  /// result. Safe to call while `other`'s recorders are still writing: all
  /// reads are relaxed atomics, so a live merge sees some consistent-enough
  /// prefix of the traffic (the scrape path of DESIGN.md §14) and never
  /// tears.
  void MergeFrom(const LatencyHistogram& other);

  /// Zeroes every bucket, the count/sum, and the max (relaxed stores). Used
  /// by `SlidingHistogram` to recycle an expired window bucket. Concurrent
  /// `Record`s during a reset land before or after it nondeterministically —
  /// benign for a rotating observability window, never a data race.
  void Reset();

  /// Count / exact max / p50-p90-p99 summary. Safe to call concurrently
  /// with `Record`; for a bit-exact snapshot, quiesce recorders first (the
  /// engine snapshots after joining its parallel loops).
  HistogramSnapshot Snapshot() const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// The bucket a value lands in — exposed for the layout/determinism tests.
  static std::size_t BucketIndex(std::uint64_t ns);

  /// The largest value bucket `index` can hold (the percentile
  /// representative).
  static std::uint64_t BucketUpperBound(std::size_t index);

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// `{"count":N,"sum_ns":...,"max_ns":...,"p50_ns":...,"p90_ns":...,
/// "p99_ns":...}` — the fragment `StageMetrics::ToJson` embeds per
/// histogram.
std::string HistogramSnapshotToJson(const HistogramSnapshot& snapshot);

}  // namespace adarts

#endif  // ADARTS_COMMON_HISTOGRAM_H_
