#include "common/json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace adarts::json {
namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Status Parse(JsonValue* out) {
    ADARTS_RETURN_NOT_OK(ParseValue(out, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing bytes after document");
    return Status::OK();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return Error("expected '{'");
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      ADARTS_RETURN_NOT_OK(ParseString(&key));
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      ADARTS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return Error("expected '['");
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      ADARTS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected '\"'");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          // The engine's writers only emit \u00XX escapes for control
          // characters; decode the low byte and ignore the always-zero
          // high byte.
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          for (std::size_t i = 0; i < 4; ++i) {
            if (std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])) ==
                0) {
              return Error("bad \\u escape");
            }
          }
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          out->push_back(static_cast<char>(
              std::strtol(hex.c_str(), nullptr, 16) & 0xff));
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return Error("unexpected character");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return Status::OK();
  }

  Status ParseLiteral(JsonValue* out) {
    const auto match = [&](const char* word) {
      const std::size_t len = std::strlen(word);
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return Status::OK();
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return Status::OK();
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return Status::OK();
    }
    return Error("unknown literal");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
}

Result<JsonValue> ParseJson(const std::string& text) {
  JsonValue value;
  ADARTS_RETURN_NOT_OK(Parser(text).Parse(&value));
  return value;
}

}  // namespace adarts::json
