#ifndef ADARTS_COMMON_JSON_H_
#define ADARTS_COMMON_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace adarts::json {

/// A parsed JSON value. The repo deliberately has no third-party JSON
/// dependency; this is the minimal recursive-descent reader shared by the
/// offline tools (trace_stats, bench_compare) that digest the engine's own
/// JSON output (trace exports, BENCH_*.json records, metrics dumps).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  /// `Find(key)->number` when that member is a number, else `fallback`.
  double NumberOr(const std::string& key, double fallback) const;
};

/// Parses `text` as one complete JSON document. Hostile input never
/// crashes: malformed syntax, trailing bytes, unterminated strings and
/// nesting deeper than 128 levels (a stack-overflow guard) all return
/// InvalidArgument with a byte offset.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace adarts::json

#endif  // ADARTS_COMMON_JSON_H_
