#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <utility>

#include "common/trace.h"

namespace adarts {

namespace {

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& SinkSlot() {
  static LogSink sink;  // empty → default stderr sink
  return sink;
}

/// Small process-local sequential thread id (1, 2, 3, ... in first-log
/// order) — readable in a drain transcript where the kernel's tids are
/// seven-digit noise, and stable for a thread's whole lifetime.
std::uint64_t CurrentLogThreadId() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void DefaultSink(LogLevel level, const std::string& message) {
  // Re-read the environment on every call: the old implementation latched
  // ADARTS_QUIET in a function-local static, so a test that set the
  // variable after the first log line could never silence (or un-silence)
  // the library. ERROR is never suppressed.
  if (level != LogLevel::kError && std::getenv("ADARTS_QUIET") != nullptr) {
    return;
  }
  // Wall-clock stamp (UTC, millisecond precision): the serving daemon's
  // lines must line up with scrape timestamps and other processes' logs,
  // which a steady-clock offset cannot do.
  struct timespec ts = {};
  clock_gettime(CLOCK_REALTIME, &ts);
  struct tm tm_utc = {};
  gmtime_r(&ts.tv_sec, &tm_utc);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(ts.tv_nsec / 1000000));
  std::fprintf(stderr, "[adarts] %s t%llu %s: %s\n", stamp,
               static_cast<unsigned long long>(CurrentLogThreadId()),
               LogLevelName(level), message.c_str());
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

void LogMessage(LogLevel level, const std::string& message) {
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    switch (level) {
      case LogLevel::kWarn:
        tracer.RecordInstant("log.warn", message);
        break;
      case LogLevel::kError:
        tracer.RecordInstant("log.error", message);
        break;
      case LogLevel::kInfo:
        break;  // progress lines would drown the timeline
    }
  }
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    sink = SinkSlot();  // copy: the sink runs outside the lock, so a sink
                        // that logs (or swaps sinks) cannot deadlock
  }
  if (sink) {
    sink(level, message);
  } else {
    DefaultSink(level, message);
  }
}

}  // namespace adarts
