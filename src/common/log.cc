#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "common/trace.h"

namespace adarts {

namespace {

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& SinkSlot() {
  static LogSink sink;  // empty → default stderr sink
  return sink;
}

void DefaultSink(LogLevel level, const std::string& message) {
  // Re-read the environment on every call: the old implementation latched
  // ADARTS_QUIET in a function-local static, so a test that set the
  // variable after the first log line could never silence (or un-silence)
  // the library. ERROR is never suppressed.
  if (level != LogLevel::kError && std::getenv("ADARTS_QUIET") != nullptr) {
    return;
  }
  std::fprintf(stderr, "[adarts] %s: %s\n", LogLevelName(level),
               message.c_str());
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

void LogMessage(LogLevel level, const std::string& message) {
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    switch (level) {
      case LogLevel::kWarn:
        tracer.RecordInstant("log.warn", message);
        break;
      case LogLevel::kError:
        tracer.RecordInstant("log.error", message);
        break;
      case LogLevel::kInfo:
        break;  // progress lines would drown the timeline
    }
  }
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    sink = SinkSlot();  // copy: the sink runs outside the lock, so a sink
                        // that logs (or swaps sinks) cannot deadlock
  }
  if (sink) {
    sink(level, message);
  } else {
    DefaultSink(level, message);
  }
}

}  // namespace adarts
