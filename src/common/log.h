#ifndef ADARTS_COMMON_LOG_H_
#define ADARTS_COMMON_LOG_H_

#include <functional>
#include <string>

namespace adarts {

/// Severity of one diagnostic line. The library logs sparingly: INFO for
/// operator-facing progress (tools only), WARN for events it survives but
/// the operator should know about (degradation-ladder hops, non-converged
/// fits, repair fallbacks), ERROR for failures that abort the current
/// operation.
enum class LogLevel : int { kInfo = 0, kWarn = 1, kError = 2 };

/// "INFO" / "WARN" / "ERROR".
const char* LogLevelName(LogLevel level);

/// Receives every log line. Called outside the logger's lock, possibly from
/// multiple threads concurrently — sinks must be thread-safe.
using LogSink = std::function<void(LogLevel, const std::string& message)>;

/// Replaces the process-wide sink so tests can capture and assert on
/// warnings instead of scraping stderr. An empty sink restores the default
/// stderr sink. A custom sink receives every message regardless of
/// `ADARTS_QUIET` — quieting is a property of the stderr default, not of
/// the logging call.
void SetLogSink(LogSink sink);

/// Routes one line to the active sink. The default sink writes
/// `[adarts] <UTC timestamp> t<tid> LEVEL: message` to stderr, where the
/// timestamp is wall-clock with millisecond precision and `t<tid>` is a
/// small process-local sequential thread id — a drained daemon's
/// transcript interleaves many threads, and lines must line up with scrape
/// timestamps. `ADARTS_QUIET` (re-read on every call, never latched)
/// suppresses INFO and WARN there, ERROR always prints. While a trace
/// session is active, WARN and ERROR also record an instant event
/// (`log.warn` / `log.error`) so fallbacks show up on the timeline next to
/// the spans that caused them.
void LogMessage(LogLevel level, const std::string& message);

inline void LogInfo(const std::string& message) {
  LogMessage(LogLevel::kInfo, message);
}
inline void LogWarn(const std::string& message) {
  LogMessage(LogLevel::kWarn, message);
}
inline void LogError(const std::string& message) {
  LogMessage(LogLevel::kError, message);
}

}  // namespace adarts

#endif  // ADARTS_COMMON_LOG_H_
