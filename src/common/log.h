#ifndef ADARTS_COMMON_LOG_H_
#define ADARTS_COMMON_LOG_H_

#include <cstdio>
#include <string>

namespace adarts {

/// Minimal stderr diagnostics for events the library survives but the
/// operator should know about (degradation-ladder hops, non-converged
/// fits, repair fallbacks). Not a logging framework: one line, one
/// severity, silence available for tests via ADARTS_QUIET.
inline void LogWarn(const std::string& message) {
  static const bool quiet = std::getenv("ADARTS_QUIET") != nullptr;
  if (!quiet) {
    std::fprintf(stderr, "[adarts] WARN: %s\n", message.c_str());
  }
}

}  // namespace adarts

#endif  // ADARTS_COMMON_LOG_H_
