#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

namespace adarts {

namespace {

/// Escapes the characters JSON string literals cannot hold verbatim. Metric
/// names are plain identifiers today, but the writer must not emit broken
/// JSON if that ever changes.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint64_t StageMetrics::Counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double StageMetrics::SpanSeconds(const std::string& name) const {
  const auto it = spans_seconds.find(name);
  return it == spans_seconds.end() ? 0.0 : it->second;
}

HistogramSnapshot StageMetrics::Histogram(const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? HistogramSnapshot{} : it->second;
}

std::string StageMetrics::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(name) << "\":" << value;
  }
  out << "},\"spans_seconds\":{";
  first = true;
  for (const auto& [name, seconds] : spans_seconds) {
    if (!first) out << ',';
    first = false;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", seconds);
    out << '"' << JsonEscape(name) << "\":" << buf;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snapshot] : histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(name) << "\":" << HistogramSnapshotToJson(snapshot);
  }
  out << "}}";
  return out.str();
}

std::string StageMetrics::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << '=' << value << '\n';
  }
  for (const auto& [name, seconds] : spans_seconds) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", seconds);
    out << name << '=' << buf << '\n';
  }
  for (const auto& [name, snapshot] : histograms) {
    out << name << "=count:" << snapshot.count << " p50_ns:" << snapshot.p50_ns
        << " p90_ns:" << snapshot.p90_ns << " p99_ns:" << snapshot.p99_ns
        << " max_ns:" << snapshot.max_ns << '\n';
  }
  return out.str();
}

MetricCounter* Metrics::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  auto [inserted, _] =
      counters_.emplace(std::string(name), std::make_unique<MetricCounter>());
  return inserted->second.get();
}

LatencyHistogram* Metrics::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  auto [inserted, _] = histograms_.emplace(std::string(name),
                                           std::make_unique<LatencyHistogram>());
  return inserted->second.get();
}

void Metrics::RecordSpanSeconds(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = spans_.find(name);
  if (it != spans_.end()) {
    it->second += seconds;
  } else {
    spans_.emplace(std::string(name), seconds);
  }
}

void Metrics::MergeInto(Metrics* dst) const {
  // Take no lock on dst while holding ours: gather under our lock, then
  // apply through dst's public (self-locking) API.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> spans;
  std::vector<std::pair<std::string, const LatencyHistogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      counters[name] = counter->value();
    }
    spans.insert(spans_.begin(), spans_.end());
    histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      // Histogram pointers are stable for this registry's lifetime and
      // MergeFrom reads them with atomics, so sampling outside the lock
      // below is safe.
      histograms.emplace_back(name, histogram.get());
    }
  }
  for (const auto& [name, value] : counters) {
    if (value > 0) dst->counter(name)->Increment(value);
  }
  for (const auto& [name, seconds] : spans) {
    dst->RecordSpanSeconds(name, seconds);
  }
  for (const auto& [name, histogram] : histograms) {
    dst->histogram(name)->MergeFrom(*histogram);
  }
}

StageMetrics Metrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StageMetrics out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms[name] = histogram->Snapshot();
  }
  out.spans_seconds.insert(spans_.begin(), spans_.end());
  return out;
}

}  // namespace adarts
