#ifndef ADARTS_COMMON_METRICS_H_
#define ADARTS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "common/stopwatch.h"

namespace adarts {

/// One monotonic counter of a `Metrics` registry. The pointer returned by
/// `Metrics::counter()` is stable for the registry's lifetime, so hot loops
/// look the counter up once and then increment lock-free.
class MetricCounter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time snapshot of a `Metrics` registry: plain maps, safe to copy,
/// store in reports (`Adarts::TrainReport`, `Recommendation`) and serialize.
/// Keys follow the `<stage>.<name>` scheme of DESIGN.md §8 — counters are
/// bare (`race.pipelines_eliminated`), wall-clock spans end in `_seconds`
/// (`train.clustering_seconds`).
struct StageMetrics {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> spans_seconds;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && spans_seconds.empty() && histograms.empty();
  }

  /// Value of one counter; 0 when absent.
  std::uint64_t Counter(const std::string& name) const;

  /// Accumulated seconds of one span; 0.0 when absent.
  double SpanSeconds(const std::string& name) const;

  /// Snapshot of one latency histogram; empty snapshot when absent.
  HistogramSnapshot Histogram(const std::string& name) const;

  /// `{"counters":{...},"spans_seconds":{...},"histograms":{...}}` with
  /// keys in sorted order (the bench `--json` record format). Histogram
  /// entries carry count/sum/max and p50/p90/p99 in nanoseconds.
  std::string ToJson() const;

  /// One `name=value` line per metric, sorted — the human-readable dump the
  /// fault_sweep driver prints per run.
  std::string ToString() const;
};

/// A lightweight metrics registry: named monotonic counters plus named
/// wall-clock spans. Registration and span recording take a mutex (cold
/// paths: once per counter name, once per stage); counter increments through
/// the returned `MetricCounter*` are relaxed atomics — lock-free on the hot
/// path. Metric values never feed back into any computation, so recording
/// them cannot perturb the engine's bit-determinism contract.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// The counter registered under `name`, created on first use. The pointer
  /// stays valid for the registry's lifetime.
  MetricCounter* counter(std::string_view name);

  /// The latency histogram registered under `name`, created on first use.
  /// Same contract as `counter()`: look it up once outside the hot loop,
  /// then `Record` lock-free from any thread. Names follow the
  /// `<stage>.<name>` scheme (`race.eval`, `label.impute`,
  /// `recommend.latency`).
  LatencyHistogram* histogram(std::string_view name);

  /// Convenience for cold paths: look up and increment in one call.
  void Increment(std::string_view name, std::uint64_t delta = 1) {
    counter(name)->Increment(delta);
  }

  /// Adds `seconds` to the span registered under `name` (stage spans of one
  /// registry accumulate across repeated runs of the same stage).
  void RecordSpanSeconds(std::string_view name, double seconds);

  /// Copies every counter and span into a `StageMetrics` snapshot.
  StageMetrics Snapshot() const;

  /// Accumulates this registry into `dst`: counter values and span seconds
  /// add, histograms merge bucket-wise (`LatencyHistogram::MergeFrom`, so
  /// percentiles of the union are exact, not an average of percentiles).
  /// The serving daemon uses this to fold per-worker `ExecContext` metrics
  /// into one exported registry — both at shutdown and on every live
  /// `/metrics` / `kStats` scrape (DESIGN.md §14). Safe against recorders
  /// that are still writing: counter and histogram reads are relaxed
  /// atomics, so a live fold observes a consistent monotone prefix of the
  /// traffic (successive scrapes never see a count regress); quiesce
  /// recorders first only when a bit-exact fold matters (the engine's
  /// determinism tests do). `dst` must not be `this`.
  void MergeInto(Metrics* dst) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  std::map<std::string, double, std::less<>> spans_;
};

/// RAII stage span: starts a stopwatch on construction and records the
/// elapsed seconds under `name` when stopped (or destroyed). A null
/// `metrics` makes the timer a no-op, so call sites need no branching.
class StageTimer {
 public:
  StageTimer(Metrics* metrics, std::string name)
      : metrics_(metrics), name_(std::move(name)) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { Stop(); }

  /// Records the span now; idempotent (the destructor becomes a no-op).
  void Stop() {
    if (metrics_ == nullptr) return;
    metrics_->RecordSpanSeconds(name_, watch_.ElapsedSeconds());
    metrics_ = nullptr;
  }

 private:
  Metrics* metrics_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace adarts

#endif  // ADARTS_COMMON_METRICS_H_
