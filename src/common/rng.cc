#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace adarts {

namespace {

std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(&s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int Rng::UniformInt(int lo, int hi) {
  return lo + static_cast<int>(
                  UniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is nudged away from zero so log() stays finite.
  double u1 = Uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be shuffled.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(UniformInt(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace adarts
