#ifndef ADARTS_COMMON_RNG_H_
#define ADARTS_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace adarts {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic step in the library (data generation, sampling,
/// stratified splits, classifier initialisation) draws from an explicitly
/// seeded Rng so that experiments are reproducible bit-for-bit. The engine
/// is a plain value type; copying it forks the stream.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Standard normal variate (Box-Muller, cached pair).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Forks an independent child generator (distinct stream).
  Rng Fork();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace adarts

#endif  // ADARTS_COMMON_RNG_H_
