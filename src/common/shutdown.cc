#include "common/shutdown.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>

namespace adarts {

namespace {

std::atomic<bool> g_shutdown_requested{false};
// Self-pipe; write end is touched from signal context, so plain ints set
// once at install time (before any signal can arrive) and never changed.
int g_wake_read_fd = -1;
int g_wake_write_fd = -1;
std::atomic<bool> g_installed{false};

// Monotonic count of reload requests (SIGHUP); consumed_ trails it.
std::atomic<std::uint64_t> g_reload_requested{0};
std::atomic<std::uint64_t> g_reload_consumed{0};

void WakePipe() {
  if (g_wake_write_fd >= 0) {
    const char byte = 1;
    // The pipe is non-blocking; if it is already full the wake was
    // delivered long ago. EINTR cannot stack here (one write, no loop).
    [[maybe_unused]] ssize_t n = ::write(g_wake_write_fd, &byte, 1);
  }
}

void ShutdownSignalHandler(int /*signum*/) {
  // Only async-signal-safe operations: an atomic store and a write(2).
  g_shutdown_requested.store(true, std::memory_order_release);
  WakePipe();
}

void ReloadSignalHandler(int /*signum*/) {
  g_reload_requested.fetch_add(1, std::memory_order_acq_rel);
  WakePipe();
}

}  // namespace

Status InstallShutdownHandler() {
  if (g_installed.load(std::memory_order_acquire)) return Status::OK();
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal(std::string("shutdown pipe: ") +
                            std::strerror(errno));
  }
  for (int fd : fds) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
  }
  g_wake_read_fd = fds[0];
  g_wake_write_fd = fds[1];

  struct sigaction action = {};
  action.sa_handler = ShutdownSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked syscalls return EINTR
  for (int sig : {SIGTERM, SIGINT}) {
    if (::sigaction(sig, &action, nullptr) != 0) {
      return Status::Internal(std::string("sigaction: ") +
                              std::strerror(errno));
    }
  }
  g_installed.store(true, std::memory_order_release);
  return Status::OK();
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_acquire);
}

int ShutdownWakeFd() { return g_wake_read_fd; }

void RequestShutdown() { ShutdownSignalHandler(0); }

Status InstallReloadHandler() {
  if (!g_installed.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "reload handler needs InstallShutdownHandler first (shared pipe)");
  }
  struct sigaction action = {};
  action.sa_handler = ReloadSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  if (::sigaction(SIGHUP, &action, nullptr) != 0) {
    return Status::Internal(std::string("sigaction(SIGHUP): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

bool ConsumeReloadRequest() {
  const std::uint64_t requested =
      g_reload_requested.load(std::memory_order_acquire);
  std::uint64_t consumed = g_reload_consumed.load(std::memory_order_relaxed);
  while (consumed < requested) {
    // CAS so concurrent consumers cannot double-count one signal.
    if (g_reload_consumed.compare_exchange_weak(consumed, consumed + 1,
                                                std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void RequestReloadSignal() { ReloadSignalHandler(0); }

void ResetShutdownLatchForTest() {
  g_shutdown_requested.store(false, std::memory_order_release);
  if (g_wake_read_fd >= 0) {
    char buf[16];
    while (::read(g_wake_read_fd, buf, sizeof(buf)) > 0) {
    }
  }
}

}  // namespace adarts
