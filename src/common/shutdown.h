#ifndef ADARTS_COMMON_SHUTDOWN_H_
#define ADARTS_COMMON_SHUTDOWN_H_

#include "common/status.h"

namespace adarts {

/// Process-wide graceful-shutdown latch (DESIGN.md §10).
///
/// `InstallShutdownHandler` registers SIGTERM/SIGINT handlers that do the
/// only two things that are async-signal-safe and useful: set an atomic
/// flag and write one byte to a self-pipe. Everything else — stopping the
/// accept loop, draining the admission queue, flushing metrics — happens in
/// normal code that either polls `ShutdownRequested()` or multiplexes
/// `ShutdownWakeFd()` into its poll set (the adarts_serve accept loop does
/// the latter, so a signal wakes a blocked accept immediately).
///
/// The latch is one-shot by design: a daemon shuts down once. Tests reset
/// it with `ResetShutdownLatchForTest`.

/// Installs the SIGTERM/SIGINT handlers and creates the wake pipe.
/// Idempotent; returns Internal when the pipe or sigaction fails.
Status InstallShutdownHandler();

/// True once a shutdown signal arrived (or `RequestShutdown` was called).
bool ShutdownRequested();

/// Read end of the self-pipe: becomes readable on the first shutdown
/// request. Poll it alongside sockets; never read it dry in more than one
/// place. -1 until `InstallShutdownHandler` succeeded.
int ShutdownWakeFd();

/// Trips the latch programmatically (tests, internal fatal paths).
/// Async-signal-safe.
void RequestShutdown();

/// Clears the flag and drains the pipe so the next test starts fresh.
void ResetShutdownLatchForTest();

/// Registers a SIGHUP handler that bumps an atomic reload counter and
/// writes to the same self-pipe, waking the daemon's poll loop. Unlike the
/// shutdown latch, reloads are repeatable: each SIGHUP is one request.
/// Requires `InstallShutdownHandler` to have run first (shares the pipe).
Status InstallReloadHandler();

/// Consumes one pending reload request: true exactly once per SIGHUP (or
/// `RequestReloadSignal`) since the last call. The daemon polls this after
/// each pipe wake and triggers `Server::RequestReload` on true.
bool ConsumeReloadRequest();

/// Trips the reload counter programmatically (tests). Async-signal-safe.
void RequestReloadSignal();

}  // namespace adarts

#endif  // ADARTS_COMMON_SHUTDOWN_H_
