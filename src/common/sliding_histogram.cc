#include "common/sliding_histogram.h"

#include <algorithm>
#include <chrono>

namespace adarts {

namespace {

constexpr std::uint64_t kUninitialized = ~std::uint64_t{0};

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SlidingHistogram::SlidingHistogram(std::size_t num_buckets,
                                   std::uint64_t bucket_ns)
    : num_buckets_(std::max<std::size_t>(1, num_buckets)),
      bucket_ns_(std::max<std::uint64_t>(1, bucket_ns)),
      buckets_(new Bucket[std::max<std::size_t>(1, num_buckets)]),
      current_slice_(kUninitialized) {
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    buckets_[i].slice.store(kUninitialized, std::memory_order_relaxed);
  }
}

void SlidingHistogram::Rotate(std::uint64_t slice) const {
  std::uint64_t seen = current_slice_.load(std::memory_order_acquire);
  while (seen == kUninitialized || slice > seen) {
    if (!current_slice_.compare_exchange_weak(seen, slice,
                                              std::memory_order_acq_rel)) {
      continue;  // another thread advanced; re-check against its value
    }
    // CAS winner: reset every ring slot whose slice just expired. A slot is
    // reset at most once per slice it is reused for; losers see the advanced
    // current_slice_ and never enter this block for the same transition.
    const std::uint64_t oldest =
        slice >= num_buckets_ - 1 ? slice - (num_buckets_ - 1) : 0;
    const std::uint64_t from =
        seen == kUninitialized ? oldest : std::max(oldest, seen + 1);
    for (std::uint64_t s = from; s <= slice; ++s) {
      Bucket& bucket = buckets_[s % num_buckets_];
      bucket.histogram.Reset();
      bucket.slice.store(s, std::memory_order_release);
    }
    if (first_slice_.load(std::memory_order_relaxed) == kUninitialized) {
      first_slice_.store(slice, std::memory_order_relaxed);
    }
    return;
  }
}

void SlidingHistogram::RecordAt(std::uint64_t value_ns, std::uint64_t now_ns) {
  const std::uint64_t slice = now_ns / bucket_ns_;
  Rotate(slice);
  // Record into the slot for our slice even if a racing rotation is about
  // to clear it — losing one edge sample beats taking a lock per record.
  buckets_[slice % num_buckets_].histogram.Record(value_ns);
}

void SlidingHistogram::Record(std::uint64_t value_ns) {
  RecordAt(value_ns, SteadyNowNs());
}

WindowedSnapshot SlidingHistogram::SnapshotAt(std::uint64_t now_ns) const {
  const std::uint64_t slice = now_ns / bucket_ns_;
  Rotate(slice);  // expire buckets that fell out of the window while idle
  WindowedSnapshot out;
  out.window_seconds = window_seconds();

  LatencyHistogram merged;
  const std::uint64_t oldest =
      slice >= num_buckets_ - 1 ? slice - (num_buckets_ - 1) : 0;
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    const std::uint64_t tag = buckets_[i].slice.load(std::memory_order_acquire);
    if (tag == kUninitialized || tag < oldest || tag > slice) continue;
    merged.MergeFrom(buckets_[i].histogram);
  }
  out.histogram = merged.Snapshot();

  const std::uint64_t first = first_slice_.load(std::memory_order_relaxed);
  if (first != kUninitialized) {
    const std::uint64_t observed_ns =
        now_ns > first * bucket_ns_ ? now_ns - first * bucket_ns_ : 0;
    out.covered_seconds =
        std::min(out.window_seconds, static_cast<double>(observed_ns) / 1e9);
  }
  return out;
}

WindowedSnapshot SlidingHistogram::Snapshot() const {
  return SnapshotAt(SteadyNowNs());
}

}  // namespace adarts
