#ifndef ADARTS_COMMON_SLIDING_HISTOGRAM_H_
#define ADARTS_COMMON_SLIDING_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/histogram.h"

namespace adarts {

/// Point-in-time summary of the sliding window: the merged percentile
/// snapshot of every live bucket plus how many seconds of history it
/// actually covers (less than the configured span right after startup or
/// after an idle gap expired every bucket).
struct WindowedSnapshot {
  HistogramSnapshot histogram;
  /// Seconds the snapshot spans: number of live buckets x bucket width,
  /// capped at the configured window. 0 when nothing was recorded inside
  /// the window.
  double covered_seconds = 0.0;
  /// Width of the whole configured window in seconds (buckets x width).
  double window_seconds = 0.0;
};

/// Last-N-seconds percentiles over `LatencyHistogram` (DESIGN.md §14): a
/// ring of `num_buckets` fixed-layout histograms, each covering one
/// `bucket_ns` slice of time. Recording lands wait-free in the bucket the
/// timestamp falls into; a snapshot merges every bucket still inside the
/// window, so scrapes report "p99 over the last minute" next to the
/// cumulative since-start percentiles (which can never show "latency right
/// now" once hours of history flattened them).
///
/// Rotation: the first recorder (or snapshotter) to observe that time moved
/// into a new slice CASes the window forward and resets the buckets whose
/// slices expired. Resets are relaxed atomic stores — a racing recorder
/// holding the previous slice index can lose its one sample into a freshly
/// cleared bucket, which is acceptable for an observability window and
/// keeps the hot path free of locks; there is no data race, only benign
/// imprecision at bucket edges.
///
/// Time is caller-supplied in the `*At(now_ns)` variants (monotone
/// nanoseconds, e.g. steady_clock) so rotation and expiry are unit-testable
/// without sleeping; the clockless overloads read steady_clock themselves.
class SlidingHistogram {
 public:
  /// `num_buckets` slices of `bucket_ns` each; defaults give a 60-second
  /// window at 5-second granularity (12 x 5 s).
  explicit SlidingHistogram(std::size_t num_buckets = 12,
                            std::uint64_t bucket_ns = 5'000'000'000ull);

  SlidingHistogram(const SlidingHistogram&) = delete;
  SlidingHistogram& operator=(const SlidingHistogram&) = delete;

  /// Records one duration at the given timestamp (both nanoseconds).
  void RecordAt(std::uint64_t value_ns, std::uint64_t now_ns);

  /// Records one duration now (steady clock).
  void Record(std::uint64_t value_ns);

  /// Merged snapshot of every bucket whose slice is still inside the
  /// window ending at `now_ns`. Safe to call concurrently with recorders.
  WindowedSnapshot SnapshotAt(std::uint64_t now_ns) const;

  /// Merged snapshot of the window ending now (steady clock).
  WindowedSnapshot Snapshot() const;

  std::size_t num_buckets() const { return num_buckets_; }
  std::uint64_t bucket_ns() const { return bucket_ns_; }
  double window_seconds() const {
    return static_cast<double>(num_buckets_) *
           static_cast<double>(bucket_ns_) / 1e9;
  }

 private:
  /// One ring slot: the histogram plus the slice index it currently holds
  /// samples for. `slice` is updated only under rotation; readers treat a
  /// mismatched slice as "expired, skip".
  struct Bucket {
    LatencyHistogram histogram;
    std::atomic<std::uint64_t> slice{0};
  };

  /// Advances the ring so `slice` is current: resets every bucket whose
  /// slice expired. Called by recorders and snapshotters alike; only the
  /// CAS winner does the resets.
  void Rotate(std::uint64_t slice) const;

  const std::size_t num_buckets_;
  const std::uint64_t bucket_ns_;
  std::unique_ptr<Bucket[]> buckets_;
  /// Most recent slice index any caller has observed.
  mutable std::atomic<std::uint64_t> current_slice_{0};
  /// First slice ever observed — the start of observation, for
  /// `covered_seconds` (a window scraped 10 s after startup only covers
  /// 10 s of history, whatever its configured span).
  mutable std::atomic<std::uint64_t> first_slice_{~std::uint64_t{0}};
};

}  // namespace adarts

#endif  // ADARTS_COMMON_SLIDING_HISTOGRAM_H_
