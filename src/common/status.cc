#include "common/status.h"

namespace adarts {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kNumericalError:
      return "Numerical error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace adarts
