#ifndef ADARTS_COMMON_STATUS_H_
#define ADARTS_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace adarts {

/// Error categories used across the library. Mirrors the Arrow/RocksDB idiom:
/// library code never throws; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kNumericalError,
  kNotImplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a human-readable name for a status code ("OK", "Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// Status is cheap to copy in the OK case (no allocation) and is
/// [[nodiscard]] so that ignored failures are compile-time visible.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The resource cannot take the work right now but may later: a full
  /// admission queue shedding load, a draining server, a closed connection.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error union: holds T on success, a non-OK Status on failure.
///
/// Usage:
///   Result<Matrix> r = ComputeSvd(m);
///   if (!r.ok()) return r.status();
///   Matrix u = std::move(r).value();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return some_t;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::Invalid(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    // A Result constructed from a Status must carry an error; an OK status
    // without a value would be unusable.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates a non-OK Status out of the current function.
#define ADARTS_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::adarts::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define ADARTS_ASSIGN_OR_RETURN(lhs, expr)            \
  ADARTS_ASSIGN_OR_RETURN_IMPL(                       \
      ADARTS_CONCAT_(_adarts_result_, __LINE__), lhs, expr)
#define ADARTS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()
#define ADARTS_CONCAT_(a, b) ADARTS_CONCAT_IMPL_(a, b)
#define ADARTS_CONCAT_IMPL_(a, b) a##b

}  // namespace adarts

#endif  // ADARTS_COMMON_STATUS_H_
