#ifndef ADARTS_COMMON_STOPWATCH_H_
#define ADARTS_COMMON_STOPWATCH_H_

#include <chrono>

namespace adarts {

/// Wall-clock stopwatch used by ModelRace's runtime-aware scoring and by the
/// reproduction benchmarks. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace adarts

#endif  // ADARTS_COMMON_STOPWATCH_H_
