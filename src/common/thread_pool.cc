#include "common/thread_pool.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "common/cancellation.h"
#include "common/trace.h"

namespace adarts {

namespace {
std::atomic<std::uint64_t> g_pools_created{0};
}  // namespace

std::uint64_t ThreadPool::TotalCreated() {
  return g_pools_created.load(std::memory_order_relaxed);
}

std::size_t ThreadPool::ResolveThreadCount(std::size_t num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  g_pools_created.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = ResolveThreadCount(num_threads);
  if (n <= 1) return;  // size-1 pool: callers run everything inline
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      // Sticky per-thread track name for the tracer: one string build per
      // worker lifetime, so untraced runs pay nothing per task.
      Tracer::SetCurrentThreadName("pool-worker-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// State of one ParallelFor, shared between the caller and the helper tasks
/// via shared_ptr: a helper that only gets dequeued after the loop finished
/// (the caller drained every index itself) must still find the state alive.
struct LoopState {
  std::function<void(std::size_t)> fn;
  std::size_t n = 0;
  const CancellationToken* cancel = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;

  void Drain() {
    // One span per thread per loop — the work-stealing "chunk" this thread
    // claimed. Cancelled (recording nothing) if the thread arrived after
    // every index was taken.
    TraceSpan span("pool.chunk");
    std::size_t executed = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      // Cooperative cancellation: an expired token skips the body but still
      // counts the index, so the completion barrier (done == n) holds and
      // the caller can fold the partial state after re-checking the token.
      if (cancel == nullptr || !cancel->expired()) fn(i);
      ++executed;
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
    if (executed == 0) {
      span.Cancel();
    } else if (span.enabled()) {
      char detail[32];
      std::snprintf(detail, sizeof(detail), "indices=%zu", executed);
      span.SetDetail(detail);
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  ParallelFor(pool, n, fn, nullptr);
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn,
                 const CancellationToken* cancel) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->expired()) return;
      fn(i);
    }
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->fn = fn;
  state->n = n;
  state->cancel = cancel;
  const std::size_t helpers = std::min(pool->size() - 1, n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { state->Drain(); });
  }
  // The caller participates too: the loop completes even if every worker is
  // busy, and nested ParallelFor calls on one pool cannot deadlock.
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  // done == n implies every fn(i) has returned, so references captured by
  // `fn` may safely die with the caller's frame; stragglers that dequeue
  // later see next >= n and return immediately.
}

}  // namespace adarts
