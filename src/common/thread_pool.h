#ifndef ADARTS_COMMON_THREAD_POOL_H_
#define ADARTS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adarts {

/// A fixed-size worker pool for the library's embarrassingly-parallel loops
/// (ModelRace candidate evaluation, corpus feature extraction, exhaustive
/// labeling). Tasks are plain `std::function<void()>`; Status-style error
/// handling is expected — tasks must not throw.
///
/// Determinism contract: the pool only changes *when* work runs, never *what*
/// it computes. Callers keep results bit-identical across thread counts by
/// (a) writing into pre-sized slots indexed by task id instead of appending,
/// (b) forking any per-task `Rng` up front in index order on the calling
/// thread, and (c) folding reductions in a serial post-pass.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means size from
  /// `std::thread::hardware_concurrency()`. A pool of size 1 spawns no
  /// workers at all — submitted tasks then run inline on the waiting caller.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers the pool resolves to (>= 1; counts the caller's
  /// thread when no workers were spawned).
  std::size_t size() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Enqueues one task. Fire-and-forget; pair with ParallelFor (or an
  /// external latch) to wait for completion.
  void Submit(std::function<void()> task);

  /// Resolves a `num_threads` option value: 0 -> hardware concurrency
  /// (at least 1), anything else passes through.
  static std::size_t ResolveThreadCount(std::size_t num_threads);

  /// Process-wide count of ThreadPool objects ever constructed. Tests use
  /// before/after deltas to assert the one-pool-per-`ExecContext` contract
  /// (a whole `Adarts::Train` run must construct exactly one pool).
  static std::uint64_t TotalCreated();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

class CancellationToken;

/// Runs `fn(0) .. fn(n-1)` across the pool and blocks until every call has
/// returned. Indices are claimed dynamically (work stealing via a shared
/// atomic cursor), so completion *order* is nondeterministic — results are
/// deterministic as long as `fn(i)` touches only state private to index `i`.
/// The calling thread participates, so the loop makes progress even when
/// every pool worker is busy elsewhere. `pool == nullptr`, a single-worker
/// pool, or `n <= 1` degrade to a plain serial loop.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Cancellable variant: once `cancel` is expired (cancelled or past its
/// deadline), indices not yet started are *skipped* — their slots keep
/// whatever default the caller pre-filled, and the loop still returns only
/// after every started `fn(i)` finished. The caller MUST re-check the token
/// afterwards and propagate its Status instead of publishing the partial
/// results. `cancel == nullptr` behaves exactly like the plain overload.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn,
                 const CancellationToken* cancel);

}  // namespace adarts

#endif  // ADARTS_COMMON_THREAD_POOL_H_
