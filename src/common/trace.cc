#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/log.h"

namespace adarts {

namespace {

/// Per-thread tracer state: the buffer registered for the current trace
/// session (keyed by generation) and the sticky thread name. The
/// shared_ptr keeps a buffer alive for a thread that records a final event
/// while the tracer is resetting.
struct TlsState {
  std::uint64_t generation = 0;
  std::shared_ptr<void> buffer_owner;
  void* buffer = nullptr;
  std::string name;
};

TlsState& Tls() {
  static thread_local TlsState state;
  return state;
}

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Escapes text for a JSON string literal (same rules as the metrics
/// writer: quotes, backslashes, and control characters).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceOptions TraceOptions::FromEnv() {
  TraceOptions options;
  // Read every call, never latched: a test (or a long-lived process) that
  // changes the environment between runs gets the current value.
  const char* path = std::getenv("ADARTS_TRACE");
  if (path != nullptr && *path != '\0') {
    options.enabled = true;
    options.path = path;
  }
  return options;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed: threads may
                                         // record until process exit
  return *tracer;
}

bool Tracer::Start(const TraceOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (enabled_.load(std::memory_order_relaxed)) return false;
  capacity_per_thread_ = std::max<std::size_t>(1, options.capacity_per_thread);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
  return true;
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_release);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::SetCurrentThreadName(std::string name) {
  TlsState& tls = Tls();
  tls.name = std::move(name);
  if (tls.buffer != nullptr) {
    // Already registered in the active session: rename the track in place.
    Tracer& tracer = Global();
    std::lock_guard<std::mutex> lock(tracer.mu_);
    if (tls.generation == tracer.generation_.load(std::memory_order_relaxed)) {
      static_cast<ThreadBuffer*>(tls.buffer)->thread_name = tls.name;
    }
  }
}

std::uint64_t Tracer::NowNs() const {
  if (!enabled()) return 0;  // documented contract; not on the hot path —
                             // every recording caller checks enabled() first
  const std::uint64_t now = SteadyNowNs();
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  return now >= epoch ? now - epoch : 0;
}

Tracer::ThreadBuffer* Tracer::CurrentBuffer() {
  TlsState& tls = Tls();
  if (tls.buffer == nullptr ||
      tls.generation != generation_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_.load(std::memory_order_relaxed)) return nullptr;
    auto buffer = std::make_shared<ThreadBuffer>(capacity_per_thread_);
    buffer->tid = static_cast<int>(buffers_.size());
    buffer->thread_name = tls.name.empty()
                              ? "thread-" + std::to_string(buffer->tid)
                              : tls.name;
    tls.buffer = buffer.get();
    tls.buffer_owner = buffer;
    tls.generation = generation_.load(std::memory_order_relaxed);
    buffers_.push_back(std::move(buffer));
  }
  return static_cast<ThreadBuffer*>(tls.buffer);
}

void Tracer::Append(Kind kind, const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, double value,
                    std::string_view detail) {
  ThreadBuffer* buffer = CurrentBuffer();
  if (buffer == nullptr) return;  // tracer stopped while we were en route
  // Single-writer ring with a drop-new overflow policy: a full buffer
  // counts the event instead of blocking the engine or reallocating
  // (reallocation would invalidate the exporter's lock-free reads).
  const std::size_t idx = buffer->count.load(std::memory_order_relaxed);
  if (idx >= buffer->slots.size()) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = buffer->slots[idx];
  e.kind = kind;
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.value = value;
  const std::size_t n = std::min(detail.size(), sizeof(e.detail) - 1);
  detail.copy(e.detail, n);
  e.detail[n] = '\0';
  // The release publish pairs with the exporter's acquire load: slot idx is
  // fully written before it becomes visible.
  buffer->count.store(idx + 1, std::memory_order_release);
}

void Tracer::RecordComplete(const char* name, std::uint64_t start_ns,
                            std::uint64_t dur_ns, std::string_view detail) {
  if (!enabled()) return;
  Append(Kind::kComplete, name, start_ns, dur_ns, 0.0, detail);
}

void Tracer::RecordInstant(const char* name, std::string_view detail) {
  if (!enabled()) return;
  Append(Kind::kInstant, name, NowNs(), 0, 0.0, detail);
}

void Tracer::RecordCounter(const char* name, double value) {
  if (!enabled()) return;
  Append(Kind::kCounter, name, NowNs(), 0, value, {});
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    total += std::min(buffer->count.load(std::memory_order_acquire),
                      buffer->slots.size());
  }
  return total;
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t Tracer::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

std::string Tracer::ToJson() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
    for (const auto& buffer : buffers_) {
      dropped += buffer->dropped.load(std::memory_order_relaxed);
    }
  }
  std::string out = "{\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"adarts\"}}";
  char buf[160];
  for (const auto& buffer : buffers) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                  buffer->tid);
    out += buf;
    out += JsonEscape(buffer->thread_name);
    out += "\"}}";
  }
  for (const auto& buffer : buffers) {
    const std::size_t n = std::min(
        buffer->count.load(std::memory_order_acquire), buffer->slots.size());
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = buffer->slots[i];
      const double ts_us = static_cast<double>(e.start_ns) / 1e3;
      switch (e.kind) {
        case Kind::kComplete:
          std::snprintf(buf, sizeof(buf),
                        ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"cat\":"
                        "\"adarts\",\"ts\":%.3f,\"dur\":%.3f,\"name\":\"",
                        buffer->tid, ts_us,
                        static_cast<double>(e.dur_ns) / 1e3);
          break;
        case Kind::kInstant:
          std::snprintf(buf, sizeof(buf),
                        ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"cat\":"
                        "\"adarts\",\"ts\":%.3f,\"s\":\"t\",\"name\":\"",
                        buffer->tid, ts_us);
          break;
        case Kind::kCounter:
          std::snprintf(buf, sizeof(buf),
                        ",\n{\"ph\":\"C\",\"pid\":1,\"tid\":%d,"
                        "\"ts\":%.3f,\"name\":\"",
                        buffer->tid, ts_us);
          break;
      }
      out += buf;
      out += JsonEscape(e.name);
      out += '"';
      if (e.kind == Kind::kCounter) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.6f}", e.value);
        out += buf;
      } else if (e.detail[0] != '\0') {
        out += ",\"args\":{\"detail\":\"";
        out += JsonEscape(e.detail);
        out += "\"}";
      }
      out += '}';
    }
  }
  std::snprintf(buf, sizeof(buf),
                "],\n\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"dropped_events\":%llu}}\n",
                static_cast<unsigned long long>(dropped));
  out += buf;
  return out;
}

Status Tracer::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::OK();
}

ScopedTrace::ScopedTrace(const TraceOptions& options) : path_(options.path) {
  if (options.enabled) {
    active_ = Tracer::Global().Start(options);
  }
}

ScopedTrace::~ScopedTrace() {
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  tracer.Stop();
  if (path_.empty()) return;
  const Status written = tracer.WriteJson(path_);
  if (!written.ok()) {
    LogWarn("trace export failed: " + written.ToString());
  } else {
    const std::uint64_t dropped = tracer.dropped_events();
    if (dropped > 0) {
      LogWarn("trace ring buffers dropped " + std::to_string(dropped) +
              " events; raise TraceOptions::capacity_per_thread");
    }
  }
}

}  // namespace adarts
