#ifndef ADARTS_COMMON_TRACE_H_
#define ADARTS_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace adarts {

/// Operator knobs for the event tracer (DESIGN.md §9). Tracing is OFF by
/// default; when off, every instrumented hot path costs exactly one relaxed
/// atomic load. `TraceOptions::FromEnv()` honours `ADARTS_TRACE=<path>`, so
/// any tool built on `ExecContext` can be traced without a flag.
struct TraceOptions {
  /// Arms the global tracer for the lifetime of the owning scope.
  bool enabled = false;
  /// Events each thread can hold. The ring never blocks or reallocates:
  /// once a thread's buffer is full, further events are dropped and counted
  /// in `Tracer::dropped_events()`.
  std::size_t capacity_per_thread = std::size_t{1} << 16;
  /// Where the Chrome trace-event JSON is written when the owning scope
  /// ends (`ExecContext` destruction / `ScopedTrace` destruction). Empty:
  /// the caller exports explicitly via `Tracer::WriteJson`.
  std::string path;

  /// `ADARTS_TRACE=<path>` → `{enabled: true, path: <path>}`; unset or
  /// empty → disabled. Read per call — never latched.
  static TraceOptions FromEnv();
};

/// The process-wide event tracer behind the engine's timeline profiling
/// (DESIGN.md §9): duration spans, instant events and counter tracks,
/// recorded into fixed-capacity per-thread ring buffers and exported as
/// Chrome trace-event JSON (`{"traceEvents":[...]}`) that loads directly in
/// chrome://tracing or ui.perfetto.dev.
///
/// Concurrency model: each buffer has exactly one writer (its thread), so
/// recording takes no lock — a slot write plus a release increment of the
/// buffer's count; the exporter reads counts with acquire. Buffer
/// registration (once per thread per trace session) and export take the
/// tracer mutex. The disabled path — the default — is one relaxed atomic
/// load, verified by `TraceTest.DisabledTracerRecordsNothing`.
///
/// Event `name`s must be string literals (or otherwise outlive the trace):
/// the tracer stores the pointer. Dynamic text goes in the `detail`
/// argument, which is copied (and truncated) into the event's inline
/// buffer.
class Tracer {
 public:
  /// Bytes of dynamic detail kept per event (truncating copy).
  static constexpr std::size_t kDetailCapacity = 48;

  static Tracer& Global();

  /// True while a trace session is active — THE hot-path check.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts a session: clears previous buffers, re-bases the clock, arms
  /// recording. Starting an already-active tracer is a no-op returning
  /// false (the first owner keeps the session).
  bool Start(const TraceOptions& options);

  /// Disarms recording. Buffers stay readable until the next Start/Reset.
  void Stop();

  /// Drops every buffer and thread registration (test isolation).
  void Reset();

  /// Names the calling thread's track in the exported JSON (`thread_name`
  /// metadata). Sticky for the thread's lifetime, across sessions;
  /// `ThreadPool` workers call this once at spawn.
  static void SetCurrentThreadName(std::string name);

  /// Nanoseconds since the session epoch (Start); 0 when disabled.
  std::uint64_t NowNs() const;

  /// A finished `ph:"X"` complete event on the calling thread's track.
  void RecordComplete(const char* name, std::uint64_t start_ns,
                      std::uint64_t dur_ns, std::string_view detail = {});

  /// A `ph:"i"` instant event (thread scope) — degradation hops, warnings,
  /// eliminations.
  void RecordInstant(const char* name, std::string_view detail = {});

  /// A `ph:"C"` counter-track sample (e.g. `race.active`).
  void RecordCounter(const char* name, double value);

  /// Events currently recorded across every thread buffer.
  std::size_t event_count() const;

  /// Events dropped by full ring buffers since Start.
  std::uint64_t dropped_events() const;

  /// Thread buffers registered since Start (one per recording thread).
  std::size_t thread_count() const;

  /// The full trace as Chrome trace-event JSON: `thread_name` metadata per
  /// track, then every event; `otherData.dropped_events` carries the
  /// overflow count.
  std::string ToJson() const;

  /// Writes `ToJson()` to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t { kComplete, kInstant, kCounter };

  struct Event {
    Kind kind;
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;   // kComplete only
    double value;           // kCounter only
    char detail[kDetailCapacity];
  };

  /// One thread's ring: single writer, fixed capacity, drop-new overflow.
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t capacity) : slots(capacity) {}
    std::vector<Event> slots;
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::string thread_name;
    int tid = 0;
  };

  Tracer() = default;
  ThreadBuffer* CurrentBuffer();
  void Append(Kind kind, const char* name, std::uint64_t start_ns,
              std::uint64_t dur_ns, double value, std::string_view detail);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};
  /// Session start in steady-clock nanoseconds. Atomic so recorders can
  /// read it without the mutex; their registration through `CurrentBuffer`
  /// already synchronizes with `Start`.
  std::atomic<std::uint64_t> epoch_ns_{0};
  mutable std::mutex mu_;
  std::size_t capacity_per_thread_ = std::size_t{1} << 16;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII duration span: captures the start time at construction and records
/// a complete event on destruction (or `Stop`). When the tracer is
/// disabled, construction is one relaxed atomic load and destruction a
/// branch on the cached flag. `name` must be a string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::string_view detail = {})
      : name_(name) {
    Tracer& tracer = Tracer::Global();
    enabled_ = tracer.enabled();
    if (enabled_) {
      SetDetail(detail);
      start_ns_ = tracer.NowNs();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { Stop(); }

  bool enabled() const { return enabled_; }

  /// Replaces the span's detail text (e.g. a count known only at the end).
  /// No-op while disabled.
  void SetDetail(std::string_view detail) {
    if (!enabled_) return;
    const std::size_t n =
        detail.size() < sizeof(detail_) - 1 ? detail.size()
                                            : sizeof(detail_) - 1;
    detail.copy(detail_, n);
    detail_[n] = '\0';
    has_detail_ = n > 0;
  }

  /// Discards the span: nothing is recorded (e.g. a pool chunk that never
  /// claimed an index).
  void Cancel() { enabled_ = false; }

  /// Records the span now; idempotent (the destructor becomes a no-op).
  void Stop() {
    if (!enabled_) return;
    enabled_ = false;
    Tracer& tracer = Tracer::Global();
    const std::uint64_t end_ns = tracer.NowNs();
    tracer.RecordComplete(
        name_, start_ns_, end_ns >= start_ns_ ? end_ns - start_ns_ : 0,
        has_detail_ ? std::string_view(detail_) : std::string_view());
  }

 private:
  const char* name_;
  bool enabled_;
  bool has_detail_ = false;
  std::uint64_t start_ns_ = 0;
  char detail_[Tracer::kDetailCapacity]{};
};

/// RAII trace session for tools: starts the global tracer when
/// `options.enabled` (and no other owner already started it), then stops
/// and exports to `options.path` on destruction. The pattern behind every
/// `--trace <path>` flag.
class ScopedTrace {
 public:
  explicit ScopedTrace(const TraceOptions& options);
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace();

  /// True when this scope owns the active session.
  bool active() const { return active_; }

 private:
  bool active_ = false;
  std::string path_;
};

}  // namespace adarts

#endif  // ADARTS_COMMON_TRACE_H_
