#include "data/forecast_data.h"

#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace adarts::data {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// A seasonal + trend + noise composer shared by all forecast datasets.
/// `coupling` controls how much of the signal is shared across the
/// dataset's series: coupled fleets favour cross-series repairs, decoupled
/// (independently shifted) fleets favour within-series pattern repairs —
/// the spread that makes adaptive algorithm selection matter downstream.
struct Recipe {
  double period;         ///< main seasonal period in samples
  double seasonal_amp;   ///< seasonal amplitude
  double second_period;  ///< secondary seasonality (0 = none)
  double second_amp;
  double trend_slope;    ///< deterministic drift per sample
  double noise;          ///< observation noise sigma
  double spike_rate;     ///< sporadic spikes (events)
  double spike_amp;
  double coupling;       ///< in [0, 1]: shared-signal fraction
  double shift_scale;    ///< per-series phase shift, fraction of the period
};

Recipe RecipeFor(std::string_view name) {
  //                      per    amp  per2 amp2 trend noise spk amp  cpl shift
  if (name == "ATM") return {24, 3.0, 120, 1.5, 0.000, 0.30, 0.01, 3.0, 0.9, 0.05};
  if (name == "Weather") return {48, 8.0, 0, 0.0, 0.002, 0.30, 0.0, 0.0, 0.2, 0.5};
  if (name == "ParisMobility") return {24, 5.0, 120, 2.5, 0.000, 0.20, 0.0, 0.0, 0.85, 0.04};
  if (name == "Electricity") return {24, 4.0, 120, 1.5, 0.004, 0.30, 0.005, 2.0, 0.5, 0.2};
  if (name == "Tourism") return {12, 6.0, 0, 0.0, 0.010, 0.20, 0.0, 0.0, 0.1, 0.6};
  if (name == "Traffic") return {24, 3.5, 120, 2.0, 0.000, 0.40, 0.02, 2.0, 0.8, 0.08};
  if (name == "Solar") return {24, 7.0, 0, 0.0, 0.000, 0.25, 0.01, -2.0, 0.3, 0.4};
  return {24, 1.0, 0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.5, 0.1};
}

}  // namespace

std::vector<std::string> ForecastDatasetNames() {
  return {"ATM",     "Weather", "ParisMobility", "Electricity",
          "Tourism", "Traffic", "Solar"};
}

std::vector<ts::TimeSeries> GenerateForecastDataset(std::string_view name,
                                                    std::size_t num_series,
                                                    std::size_t length,
                                                    std::uint64_t seed) {
  const Recipe r = RecipeFor(name);
  Rng rng(seed * 31ULL + std::hash<std::string_view>{}(name));

  // One shared realisation of the structured signal for the whole fleet.
  la::Vector shared(length, 0.0);
  {
    const double phase = rng.Uniform(0.0, r.period);
    for (std::size_t t = 0; t < length; ++t) {
      double x = r.trend_slope * static_cast<double>(t);
      x += r.seasonal_amp *
           std::sin(kTwoPi * (static_cast<double>(t) + phase) / r.period);
      if (r.second_period > 0.0) {
        x += r.second_amp *
             std::sin(kTwoPi * static_cast<double>(t) / r.second_period);
      }
      if (r.spike_rate > 0.0 && rng.Bernoulli(r.spike_rate)) {
        x += r.spike_amp * rng.Uniform(0.5, 1.5);
      }
      shared[t] = x;
    }
  }

  std::vector<ts::TimeSeries> out;
  for (std::size_t s = 0; s < num_series; ++s) {
    // The series' own structured component: same recipe, its own phase
    // shift (and light period jitter for strongly decoupled fleets).
    const double shift = rng.Uniform(0.0, r.shift_scale * r.period);
    const double own_period =
        r.period * (1.0 + (r.coupling < 0.5 ? rng.Uniform(-0.06, 0.06) : 0.0));
    const double level = rng.Uniform(15.0, 25.0);
    const double scale = rng.Uniform(0.9, 1.1);
    la::Vector v(length);
    for (std::size_t t = 0; t < length; ++t) {
      double own = r.trend_slope * static_cast<double>(t);
      own += r.seasonal_amp *
             std::sin(kTwoPi * (static_cast<double>(t) + shift) / own_period);
      if (r.second_period > 0.0) {
        own += r.second_amp *
               std::sin(kTwoPi * (static_cast<double>(t) + shift) /
                        r.second_period);
      }
      double x = level + scale * (r.coupling * shared[t] +
                                  (1.0 - r.coupling) * own);
      if (r.spike_rate > 0.0 && rng.Bernoulli(r.spike_rate)) {
        x += r.spike_amp * rng.Uniform(0.5, 1.5);
      }
      x += rng.Normal(0.0, r.noise);
      v[t] = x;
    }
    ts::TimeSeries series(std::move(v));
    series.set_name(std::string(name) + "_" + std::to_string(s));
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace adarts::data
