#ifndef ADARTS_DATA_FORECAST_DATA_H_
#define ADARTS_DATA_FORECAST_DATA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ts/time_series.h"

namespace adarts::data {

/// The seven forecasting datasets of the downstream experiment (Fig. 12),
/// modeled after the Monash-benchmark sources the paper cites: each has a
/// distinctive mix of seasonality, trend, and noise so that repair quality
/// visibly moves the forecast error.
std::vector<std::string> ForecastDatasetNames();

/// Generates the named dataset (`num_series` series of `length` points).
/// Unknown names return an empty vector.
std::vector<ts::TimeSeries> GenerateForecastDataset(std::string_view name,
                                                    std::size_t num_series,
                                                    std::size_t length,
                                                    std::uint64_t seed);

}  // namespace adarts::data

#endif  // ADARTS_DATA_FORECAST_DATA_H_
