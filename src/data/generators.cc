#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>

#include "common/rng.h"

namespace adarts::data {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Power: a daily load curve (two harmonics + evening peak) with per-series
/// random phase shifts (smart meters are not synchronised) and usage noise.
/// Variants model structurally different deployments — synchronised meters,
/// heavily shifted meters, and noisy meters — whose best repair algorithm
/// differs (matrix methods vs pattern matching vs smoothing).
std::vector<ts::TimeSeries> GeneratePower(const GeneratorOptions& opt,
                                          Rng* rng) {
  std::vector<ts::TimeSeries> out;
  const double period = 32.0 + 4.0 * (opt.variant % 3);
  const int mode = opt.variant % 3;
  const double max_shift = mode == 0 ? 0.0 : (mode == 1 ? period : period / 8.0);
  const double extra_noise = mode == 2 ? 0.35 : 0.0;
  for (std::size_t s = 0; s < opt.num_series; ++s) {
    const double shift = max_shift > 0.0 ? rng->Uniform(0.0, max_shift) : 0.0;
    const double base = rng->Uniform(0.5, 2.0);
    const double amp = rng->Uniform(0.5, 1.5);
    la::Vector v(opt.length);
    for (std::size_t t = 0; t < opt.length; ++t) {
      const double phase = (static_cast<double>(t) + shift) / period;
      double x = base + amp * std::sin(kTwoPi * phase) +
                 0.4 * amp * std::sin(2.0 * kTwoPi * phase + 0.7);
      // Evening peak: a narrow bump once per cycle.
      const double frac = phase - std::floor(phase);
      x += 0.8 * amp * std::exp(-std::pow((frac - 0.75) / 0.06, 2.0));
      x += rng->Normal(0.0, (0.08 + extra_noise) * amp);
      v[t] = x;
    }
    ts::TimeSeries series(std::move(v));
    series.set_name("power_" + std::to_string(opt.variant) + "_" +
                    std::to_string(s));
    out.push_back(std::move(series));
  }
  return out;
}

/// Water: a shared smooth random-walk trend (synchronised across series)
/// plus per-series scaling and sporadic anomaly spikes.
std::vector<ts::TimeSeries> GenerateWater(const GeneratorOptions& opt,
                                          Rng* rng) {
  // The common discharge trend.
  la::Vector trend(opt.length, 0.0);
  double level = 0.0;
  double momentum = 0.0;
  for (std::size_t t = 0; t < opt.length; ++t) {
    momentum = 0.95 * momentum + rng->Normal(0.0, 0.05);
    level += momentum;
    trend[t] = level;
  }
  std::vector<ts::TimeSeries> out;
  for (std::size_t s = 0; s < opt.num_series; ++s) {
    const double scale = rng->Uniform(0.6, 1.6);
    const double offset = rng->Uniform(-40.0, 60.0);  // pH vs conductivity
    const double anomaly_rate = 0.01 + 0.01 * (opt.variant % 2);
    la::Vector v(opt.length);
    for (std::size_t t = 0; t < opt.length; ++t) {
      double x = offset + scale * trend[t] + rng->Normal(0.0, 0.12);
      if (rng->Bernoulli(anomaly_rate)) {
        x += rng->Uniform(4.0, 12.0) * (rng->Bernoulli(0.5) ? 1.0 : -1.0);
      }
      v[t] = x;
    }
    ts::TimeSeries series(std::move(v));
    series.set_name("water_" + std::to_string(opt.variant) + "_" +
                    std::to_string(s));
    out.push_back(std::move(series));
  }
  return out;
}

/// Motion: frequency-modulated oscillation with activity bursts — erratic
/// fluctuations and varying frequency. Variants model sensor rigs: multiple
/// sensors on one body (coupled motion) vs independent subjects vs
/// burst-heavy activities.
std::vector<ts::TimeSeries> GenerateMotion(const GeneratorOptions& opt,
                                           Rng* rng) {
  const int mode = opt.variant % 3;
  // Coupled mode: all sensors follow one body's frequency trajectory.
  la::Vector shared_freq(opt.length, 0.0);
  {
    double freq = rng->Uniform(0.05, 0.25);
    for (std::size_t t = 0; t < opt.length; ++t) {
      freq += rng->Normal(0.0, 0.002);
      if (rng->Bernoulli(0.02)) freq = rng->Uniform(0.05, 0.3);
      shared_freq[t] = std::clamp(freq, 0.02, 0.35);
    }
  }
  const double burst_rate = mode == 2 ? 0.15 : 0.05;
  std::vector<ts::TimeSeries> out;
  for (std::size_t s = 0; s < opt.num_series; ++s) {
    double freq = rng->Uniform(0.05, 0.25);
    double phase = rng->Uniform(0.0, kTwoPi);
    const double amp = rng->Uniform(0.5, 2.0);
    la::Vector v(opt.length);
    for (std::size_t t = 0; t < opt.length; ++t) {
      if (mode == 0) {
        freq = shared_freq[t];  // one body, many sensors
      } else {
        freq += rng->Normal(0.0, 0.002);
        if (rng->Bernoulli(0.02)) freq = rng->Uniform(0.05, 0.3);
        freq = std::clamp(freq, 0.02, 0.35);
      }
      phase += kTwoPi * freq;
      double x = amp * std::sin(phase) + rng->Normal(0.0, 0.25 * amp);
      if (rng->Bernoulli(burst_rate)) x += rng->Normal(0.0, amp);
      v[t] = x;
    }
    ts::TimeSeries series(std::move(v));
    series.set_name("motion_" + std::to_string(opt.variant) + "_" +
                    std::to_string(s));
    out.push_back(std::move(series));
  }
  return out;
}

/// Climate: one strong seasonal cycle shared by every series with small
/// idiosyncratic noise — periodic and very highly correlated.
std::vector<ts::TimeSeries> GenerateClimate(const GeneratorOptions& opt,
                                            Rng* rng) {
  const double period = 48.0 + 8.0 * (opt.variant % 3);
  la::Vector common(opt.length);
  for (std::size_t t = 0; t < opt.length; ++t) {
    const double phase = static_cast<double>(t) / period;
    common[t] = 10.0 * std::sin(kTwoPi * phase) +
                2.0 * std::sin(3.0 * kTwoPi * phase + 1.1);
  }
  std::vector<ts::TimeSeries> out;
  for (std::size_t s = 0; s < opt.num_series; ++s) {
    const double offset = rng->Uniform(-5.0, 15.0);  // city base temperature
    const double scale = rng->Uniform(0.9, 1.1);
    la::Vector v(opt.length);
    for (std::size_t t = 0; t < opt.length; ++t) {
      v[t] = offset + scale * common[t] + rng->Normal(0.0, 0.4);
    }
    ts::TimeSeries series(std::move(v));
    series.set_name("climate_" + std::to_string(opt.variant) + "_" +
                    std::to_string(s));
    out.push_back(std::move(series));
  }
  return out;
}

/// Lightning: damped-oscillation transients at random times. Half the
/// series share event times (high correlation, sometimes inverted), half
/// have independent events (low correlation) — the mixed-correlation trait.
std::vector<ts::TimeSeries> GenerateLightning(const GeneratorOptions& opt,
                                              Rng* rng) {
  // Shared event schedule.
  std::vector<std::size_t> shared_events;
  for (std::size_t t = 8; t + 24 < opt.length; ++t) {
    if (rng->Bernoulli(0.03)) shared_events.push_back(t);
  }
  const auto add_burst = [&](la::Vector* v, std::size_t at, double amp,
                             double sign) {
    for (std::size_t i = 0; i < 24 && at + i < v->size(); ++i) {
      const double x = static_cast<double>(i);
      (*v)[at + i] +=
          sign * amp * std::exp(-x / 6.0) * std::sin(kTwoPi * x / 5.0);
    }
  };
  // Variant modes: a fully synchronised sensor array, an independent array,
  // and a mixed deployment. Within-variant homogeneity keeps each dataset's
  // best repair algorithm decisive, while the category as a whole spans the
  // mixed-correlation trait the paper describes.
  const int mode = opt.variant % 3;
  std::vector<ts::TimeSeries> out;
  for (std::size_t s = 0; s < opt.num_series; ++s) {
    const bool synced = mode == 0 || (mode == 2 && s % 2 == 0);
    const double sign = rng->Bernoulli(0.3) ? -1.0 : 1.0;  // inverted sensors
    la::Vector v(opt.length, 0.0);
    for (std::size_t t = 0; t < opt.length; ++t) v[t] = rng->Normal(0.0, 0.15);
    if (synced) {
      for (std::size_t at : shared_events) {
        add_burst(&v, at, rng->Uniform(2.0, 5.0), sign);
      }
    } else {
      for (std::size_t t = 8; t + 24 < opt.length; ++t) {
        if (rng->Bernoulli(0.03)) {
          add_burst(&v, t, rng->Uniform(2.0, 5.0), sign);
        }
      }
    }
    // Partial trend similarity: a mild common drift on every series.
    for (std::size_t t = 0; t < opt.length; ++t) {
      v[t] += 0.3 * std::sin(kTwoPi * static_cast<double>(t) /
                             static_cast<double>(opt.length));
    }
    ts::TimeSeries series(std::move(v));
    series.set_name("lightning_" + std::to_string(opt.variant) + "_" +
                    std::to_string(s));
    out.push_back(std::move(series));
  }
  return out;
}

/// Medical: ECG-like pulse trains — sharp quasi-periodic spikes over a slow
/// baseline. Variants model different recording setups: tightly aligned
/// leads (cross-series methods win), strongly delayed leads (alignment
/// matters), and independent patients (only within-series structure helps).
std::vector<ts::TimeSeries> GenerateMedical(const GeneratorOptions& opt,
                                            Rng* rng) {
  const int mode = opt.variant % 3;
  const double shared_beat = 20.0 + 2.0 * (opt.variant % 3);
  std::vector<ts::TimeSeries> out;
  for (std::size_t s = 0; s < opt.num_series; ++s) {
    const double beat =
        mode == 2 ? rng->Uniform(16.0, 28.0) : shared_beat;  // per patient
    const double max_delay = mode == 0 ? 1.5 : beat / 2.0;
    const double delay = rng->Uniform(0.0, max_delay);
    const double amp = rng->Uniform(0.8, 1.4);
    la::Vector v(opt.length);
    for (std::size_t t = 0; t < opt.length; ++t) {
      const double phase =
          (static_cast<double>(t) + delay) -
          beat * std::floor((static_cast<double>(t) + delay) / beat);
      // QRS-like spike at the start of each beat, T-wave bump later.
      double x = amp * 2.2 * std::exp(-std::pow(phase / 1.2, 2.0));
      x -= amp * 0.6 * std::exp(-std::pow((phase - 2.5) / 1.0, 2.0));
      x += amp * 0.5 * std::exp(-std::pow((phase - beat * 0.6) / 2.5, 2.0));
      x += 0.15 * std::sin(kTwoPi * static_cast<double>(t) / 90.0);  // resp.
      x += rng->Normal(0.0, 0.04);
      v[t] = x;
    }
    ts::TimeSeries series(std::move(v));
    series.set_name("medical_" + std::to_string(opt.variant) + "_" +
                    std::to_string(s));
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace

std::string_view CategoryToString(Category c) {
  switch (c) {
    case Category::kPower:
      return "Power";
    case Category::kWater:
      return "Water";
    case Category::kMotion:
      return "Motion";
    case Category::kClimate:
      return "Climate";
    case Category::kLightning:
      return "Lightning";
    case Category::kMedical:
      return "Medical";
  }
  return "Unknown";
}

std::vector<Category> AllCategories() {
  std::vector<Category> out;
  out.reserve(kNumCategories);
  for (int i = 0; i < kNumCategories; ++i) {
    out.push_back(static_cast<Category>(i));
  }
  return out;
}

std::vector<ts::TimeSeries> GenerateCategory(Category category,
                                             const GeneratorOptions& options) {
  // Fold the variant into the seed so variants differ deterministically.
  Rng rng(options.seed * 1000003ULL +
          static_cast<std::uint64_t>(options.variant) * 7919ULL +
          static_cast<std::uint64_t>(category) * 104729ULL);
  switch (category) {
    case Category::kPower:
      return GeneratePower(options, &rng);
    case Category::kWater:
      return GenerateWater(options, &rng);
    case Category::kMotion:
      return GenerateMotion(options, &rng);
    case Category::kClimate:
      return GenerateClimate(options, &rng);
    case Category::kLightning:
      return GenerateLightning(options, &rng);
    case Category::kMedical:
      return GenerateMedical(options, &rng);
  }
  return {};
}

std::vector<ts::TimeSeries> GenerateMixedCorpus(
    std::size_t datasets_per_category, const GeneratorOptions& base_options) {
  std::vector<ts::TimeSeries> out;
  for (Category c : AllCategories()) {
    for (std::size_t v = 0; v < datasets_per_category; ++v) {
      GeneratorOptions opts = base_options;
      opts.variant = static_cast<int>(v);
      std::vector<ts::TimeSeries> part = GenerateCategory(c, opts);
      for (auto& s : part) out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<std::size_t> InjectSpikeAnomalies(std::size_t count,
                                              double magnitude,
                                              std::size_t margin,
                                              adarts::Rng* rng,
                                              ts::TimeSeries* series) {
  const std::size_t n = series->length();
  if (count == 0 || margin * 2 + count >= n) return {};
  const double scale = std::max(series->ObservedStdDev(), 1e-9);
  std::vector<std::size_t> slots =
      rng->SampleWithoutReplacement(n - 2 * margin, count);
  std::vector<std::size_t> positions;
  positions.reserve(count);
  for (std::size_t slot : slots) positions.push_back(slot + margin);
  std::sort(positions.begin(), positions.end());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double sign = i % 2 == 0 ? 1.0 : -1.0;
    const std::size_t p = positions[i];
    series->set_value(p, series->value(p) + sign * magnitude * scale);
  }
  return positions;
}

}  // namespace adarts::data
