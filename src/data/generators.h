#ifndef ADARTS_DATA_GENERATORS_H_
#define ADARTS_DATA_GENERATORS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "ts/time_series.h"

namespace adarts::data {

/// The six dataset categories of Section VII-A. The generators reproduce
/// the qualitative traits the paper lists per category (see DESIGN.md's
/// substitution table): which imputation algorithm wins differs across
/// categories, which is the signal the recommendation engine learns.
enum class Category {
  kPower = 0,   ///< periodic household load curves, some shifted in time
  kWater,       ///< synchronized trends with sporadic anomalies
  kMotion,      ///< erratic fluctuations with varying frequency
  kClimate,     ///< periodic, very highly correlated across series
  kLightning,   ///< mixed high/low, positive/negative correlation, transients
  kMedical,     ///< high-frequency quasi-periodic pulses, aligned + shifted
};

inline constexpr int kNumCategories = 6;

std::string_view CategoryToString(Category c);
std::vector<Category> AllCategories();

/// Options for one generated dataset.
struct GeneratorOptions {
  std::size_t num_series = 24;
  std::size_t length = 256;
  std::uint64_t seed = 1;
  /// Variant index: the paper's categories each contain several datasets;
  /// the variant perturbs the generator's parameters deterministically.
  int variant = 0;
};

/// Generates one dataset of `options.num_series` series of the category.
std::vector<ts::TimeSeries> GenerateCategory(Category category,
                                             const GeneratorOptions& options);

/// Generates a mixed corpus: `datasets_per_category` variants of every
/// category concatenated (used by the clustering and coverage benches).
std::vector<ts::TimeSeries> GenerateMixedCorpus(
    std::size_t datasets_per_category, const GeneratorOptions& base_options);

/// Plants `count` point anomalies in `series`: spikes of `magnitude`
/// observed standard deviations (sign alternating), at rng-chosen distinct
/// positions in [margin, length - margin). Returns the planted positions,
/// ascending — the ground truth of the anomaly-detection-after-repair
/// downstream task (bench_fig12). No-op (empty result) when the series is
/// too short for the margins.
std::vector<std::size_t> InjectSpikeAnomalies(std::size_t count,
                                              double magnitude,
                                              std::size_t margin,
                                              adarts::Rng* rng,
                                              ts::TimeSeries* series);

}  // namespace adarts::data

#endif  // ADARTS_DATA_GENERATORS_H_
