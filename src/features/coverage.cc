#include "features/coverage.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace adarts::features {

Result<CoverageReport> ComputeFeatureCoverage(
    const std::vector<std::vector<la::Vector>>& features_per_dataset,
    std::size_t num_buckets) {
  if (features_per_dataset.empty() || num_buckets == 0) {
    return Status::InvalidArgument("empty coverage input");
  }
  std::size_t dim = 0;
  for (const auto& ds : features_per_dataset) {
    for (const auto& f : ds) {
      if (dim == 0) dim = f.size();
      if (f.size() != dim) {
        return Status::InvalidArgument("inconsistent feature dimensionality");
      }
    }
  }
  if (dim == 0) return Status::InvalidArgument("no feature vectors");

  // Global min/max per feature for [0, 1] normalisation.
  la::Vector lo(dim, std::numeric_limits<double>::infinity());
  la::Vector hi(dim, -std::numeric_limits<double>::infinity());
  for (const auto& ds : features_per_dataset) {
    for (const auto& f : ds) {
      for (std::size_t k = 0; k < dim; ++k) {
        lo[k] = std::min(lo[k], f[k]);
        hi[k] = std::max(hi[k], f[k]);
      }
    }
  }

  const std::size_t num_datasets = features_per_dataset.size();
  CoverageReport report;
  report.num_buckets = num_buckets;
  report.coverage = la::Matrix(dim, num_datasets);
  report.feature_presence.assign(dim, 0.0);

  std::vector<bool> hit(num_buckets);
  for (std::size_t d = 0; d < num_datasets; ++d) {
    for (std::size_t k = 0; k < dim; ++k) {
      std::fill(hit.begin(), hit.end(), false);
      const double span = hi[k] - lo[k];
      for (const auto& f : features_per_dataset[d]) {
        double x = span > 0.0 ? (f[k] - lo[k]) / span : 0.0;
        auto b = static_cast<std::size_t>(x * static_cast<double>(num_buckets));
        b = std::min(b, num_buckets - 1);
        hit[b] = true;
      }
      std::size_t covered = 0;
      for (bool h : hit) covered += h ? 1 : 0;
      report.coverage(k, d) =
          static_cast<double>(covered) / static_cast<double>(num_buckets);
    }
  }

  for (std::size_t k = 0; k < dim; ++k) {
    std::size_t present = 0;
    for (std::size_t d = 0; d < num_datasets; ++d) {
      if (report.coverage(k, d) > 0.0) ++present;
    }
    report.feature_presence[k] =
        static_cast<double>(present) / static_cast<double>(num_datasets);
  }
  return report;
}

}  // namespace adarts::features
