#ifndef ADARTS_FEATURES_COVERAGE_H_
#define ADARTS_FEATURES_COVERAGE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace adarts::features {

/// Feature-coverage analysis backing Fig. 6: each feature value is
/// normalised to [0, 1] over the whole corpus, the interval is divided into
/// `num_buckets`, and for every (feature, dataset) cell we count the
/// fraction of buckets covered by at least one series of that dataset.
struct CoverageReport {
  /// coverage(f, d) in [0, 1]: rows = features, cols = datasets.
  la::Matrix coverage;
  /// Per-feature fraction of datasets covering at least one bucket.
  la::Vector feature_presence;
  std::size_t num_buckets = 0;
};

/// Computes the coverage report.
///
/// `features_per_dataset[d]` holds the feature vectors of dataset d's
/// series; all vectors must share one dimensionality.
Result<CoverageReport> ComputeFeatureCoverage(
    const std::vector<std::vector<la::Vector>>& features_per_dataset,
    std::size_t num_buckets = 10);

}  // namespace adarts::features

#endif  // ADARTS_FEATURES_COVERAGE_H_
