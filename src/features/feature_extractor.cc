#include "features/feature_extractor.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "la/pca.h"
#include "ts/acf.h"
#include "ts/fft.h"
#include "tda/delay_embedding.h"
#include "tda/diagram_stats.h"
#include "tda/persistence.h"

namespace adarts::features {

namespace {

double Median(la::Vector v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double Quantile(la::Vector v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Skewness(const la::Vector& v) {
  const double m = la::Mean(v);
  const double sd = la::StdDev(v);
  if (sd <= 0.0 || v.size() < 3) return 0.0;
  double s = 0.0;
  for (double x : v) s += std::pow((x - m) / sd, 3.0);
  return s / static_cast<double>(v.size());
}

double Kurtosis(const la::Vector& v) {
  const double m = la::Mean(v);
  const double sd = la::StdDev(v);
  if (sd <= 0.0 || v.size() < 4) return 0.0;
  double s = 0.0;
  for (double x : v) s += std::pow((x - m) / sd, 4.0);
  return s / static_cast<double>(v.size()) - 3.0;  // excess kurtosis
}

double MeanAbsChange(const la::Vector& v) {
  if (v.size() < 2) return 0.0;
  double s = 0.0;
  for (std::size_t i = 1; i < v.size(); ++i) s += std::fabs(v[i] - v[i - 1]);
  return s / static_cast<double>(v.size() - 1);
}

double ZeroCrossingRate(const la::Vector& v) {
  if (v.size() < 2) return 0.0;
  const double m = la::Mean(v);
  std::size_t crossings = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if ((v[i] - m) * (v[i - 1] - m) < 0.0) ++crossings;
  }
  return static_cast<double>(crossings) / static_cast<double>(v.size() - 1);
}

double LongestStreakAboveMean(const la::Vector& v) {
  const double m = la::Mean(v);
  std::size_t best = 0, cur = 0;
  for (double x : v) {
    cur = x > m ? cur + 1 : 0;
    best = std::max(best, cur);
  }
  return v.empty() ? 0.0
                   : static_cast<double>(best) / static_cast<double>(v.size());
}

double OutlierFraction(const la::Vector& v, double sigmas) {
  const double m = la::Mean(v);
  const double sd = la::StdDev(v);
  if (sd <= 0.0 || v.empty()) return 0.0;
  std::size_t count = 0;
  for (double x : v) {
    if (std::fabs(x - m) > sigmas * sd) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(v.size());
}

/// Least-squares line fit; returns {slope, r_squared}.
std::pair<double, double> LinearTrend(const la::Vector& v) {
  const std::size_t n = v.size();
  if (n < 2) return {0.0, 0.0};
  const double tm = static_cast<double>(n - 1) / 2.0;
  const double vm = la::Mean(v);
  double stv = 0.0, stt = 0.0, svv = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double dt = static_cast<double>(t) - tm;
    const double dv = v[t] - vm;
    stv += dt * dv;
    stt += dt * dt;
    svv += dv * dv;
  }
  if (stt <= 0.0 || svv <= 0.0) return {0.0, 0.0};
  const double slope = stv / stt;
  const double r2 = (stv * stv) / (stt * svv);
  return {slope, r2};
}

/// Moving-average smoother with centred window.
la::Vector Smooth(const la::Vector& v, std::size_t window) {
  if (window < 2 || v.size() < window) return v;
  la::Vector out(v.size(), 0.0);
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window / 2);
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(v.size()); ++i) {
    double s = 0.0;
    std::size_t c = 0;
    for (std::ptrdiff_t j = i - half; j <= i + half; ++j) {
      if (j < 0 || j >= static_cast<std::ptrdiff_t>(v.size())) continue;
      s += v[static_cast<std::size_t>(j)];
      ++c;
    }
    out[static_cast<std::size_t>(i)] = s / static_cast<double>(c);
  }
  return out;
}

/// Fraction of sign changes of the smoothed derivative — the "perturbation"
/// shape property (trend breaks, e.g. after a sensor malfunction).
double TrendChangeRate(const la::Vector& v) {
  const la::Vector s = Smooth(v, std::max<std::size_t>(v.size() / 16, 3));
  if (s.size() < 3) return 0.0;
  std::size_t changes = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const double d1 = s[i - 1] - s[i - 2];
    const double d2 = s[i] - s[i - 1];
    if (d1 * d2 < 0.0) ++changes;
  }
  return static_cast<double>(changes) / static_cast<double>(s.size() - 2);
}

/// Strength of the trend component: 1 - Var(detrended) / Var(raw).
double TrendStrength(const la::Vector& v) {
  const la::Vector trend = Smooth(v, std::max<std::size_t>(v.size() / 8, 5));
  const double var_raw = la::Variance(v);
  if (var_raw <= 0.0) return 0.0;
  la::Vector resid(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) resid[i] = v[i] - trend[i];
  return std::clamp(1.0 - la::Variance(resid) / var_raw, 0.0, 1.0);
}

/// Seasonality strength: ACF value at the dominant period (0 if aperiodic).
double SeasonalityStrength(const la::Vector& v) {
  const double period = ts::EstimatePeriod(v);
  if (period < 2.0 || period >= static_cast<double>(v.size()) / 2.0) {
    return 0.0;
  }
  const auto lag = static_cast<std::size_t>(std::lround(period));
  const la::Vector acf = ts::Acf(v, lag);
  return std::max(acf[lag], 0.0);
}

}  // namespace

const char* FeatureGroupToString(FeatureGroup group) {
  switch (group) {
    case FeatureGroup::kCanonical:
      return "canonical";
    case FeatureGroup::kDependency:
      return "dependency";
    case FeatureGroup::kTrend:
      return "trend";
    case FeatureGroup::kTopological:
      return "topological";
    case FeatureGroup::kMissingness:
      return "missingness";
  }
  return "unknown";
}

FeatureExtractor::FeatureExtractor(FeatureExtractorOptions options)
    : options_(options) {
  const auto add = [&](const char* name, FeatureGroup group) {
    schema_.push_back({name, group});
  };
  if (options_.statistical) {
    // Canonical.
    add("mean", FeatureGroup::kCanonical);
    add("std_dev", FeatureGroup::kCanonical);
    add("variance", FeatureGroup::kCanonical);
    add("min", FeatureGroup::kCanonical);
    add("max", FeatureGroup::kCanonical);
    add("range", FeatureGroup::kCanonical);
    add("median", FeatureGroup::kCanonical);
    add("iqr", FeatureGroup::kCanonical);
    add("skewness", FeatureGroup::kCanonical);
    add("kurtosis", FeatureGroup::kCanonical);
    add("rms", FeatureGroup::kCanonical);
    add("mean_abs_change", FeatureGroup::kCanonical);
    add("zero_crossing_rate", FeatureGroup::kCanonical);
    add("longest_streak_above_mean", FeatureGroup::kCanonical);
    add("fraction_above_mean", FeatureGroup::kCanonical);
    add("outlier_fraction_3sigma", FeatureGroup::kCanonical);
    add("coefficient_of_variation", FeatureGroup::kCanonical);
    add("is_symmetric", FeatureGroup::kCanonical);
    add("quantile_05", FeatureGroup::kCanonical);
    add("quantile_95", FeatureGroup::kCanonical);
    // Dependencies.
    add("acf_lag1", FeatureGroup::kDependency);
    add("acf_lag2", FeatureGroup::kDependency);
    add("acf_lag5", FeatureGroup::kDependency);
    add("acf_lag10", FeatureGroup::kDependency);
    add("acf_sum10", FeatureGroup::kDependency);
    add("first_acf_crossing", FeatureGroup::kDependency);
    add("pacf_lag1", FeatureGroup::kDependency);
    add("pacf_lag2", FeatureGroup::kDependency);
    add("pacf_lag3", FeatureGroup::kDependency);
    add("diff_acf_lag1", FeatureGroup::kDependency);
    add("abs_acf_mean10", FeatureGroup::kDependency);
    // Trends.
    add("linear_trend_slope", FeatureGroup::kTrend);
    add("linear_trend_r2", FeatureGroup::kTrend);
    add("dominant_period_fraction", FeatureGroup::kTrend);
    add("spectral_entropy", FeatureGroup::kTrend);
    add("seasonality_strength", FeatureGroup::kTrend);
    add("trend_strength", FeatureGroup::kTrend);
    add("trend_change_rate", FeatureGroup::kTrend);
    add("pca_top1_variance_ratio", FeatureGroup::kTrend);
    add("pca_top2_variance_ratio", FeatureGroup::kTrend);
  }
  if (options_.topological) {
    const char* h0_names[] = {
        "h0_count",         "h0_total_persistence", "h0_max_persistence",
        "h0_mean_persistence", "h0_persistence_std",
        "h0_persistence_entropy", "h0_mean_birth",  "h0_mean_death"};
    const char* h1_names[] = {
        "h1_count",         "h1_total_persistence", "h1_max_persistence",
        "h1_mean_persistence", "h1_persistence_std",
        "h1_persistence_entropy", "h1_mean_birth",  "h1_mean_death"};
    for (const char* n : h0_names) add(n, FeatureGroup::kTopological);
    for (const char* n : h1_names) add(n, FeatureGroup::kTopological);
  }
  if (options_.missingness) {
    add("missing_fraction", FeatureGroup::kMissingness);
    add("gap_count", FeatureGroup::kMissingness);
    add("max_gap_fraction", FeatureGroup::kMissingness);
    add("mean_gap_fraction", FeatureGroup::kMissingness);
    add("first_gap_position", FeatureGroup::kMissingness);
    add("last_gap_end_position", FeatureGroup::kMissingness);
    add("is_tip_gap", FeatureGroup::kMissingness);
    add("gap_dispersion", FeatureGroup::kMissingness);
  }
}

la::Vector InterpolateMissing(const ts::TimeSeries& series) {
  const std::size_t n = series.length();
  la::Vector out(n, 0.0);
  // Collect observed anchors.
  std::vector<std::size_t> observed;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = series.value(i);
    if (!series.IsMissing(i)) observed.push_back(i);
  }
  if (observed.empty()) return la::Vector(n, 0.0);

  // Leading / trailing gaps take the nearest observed value.
  for (std::size_t i = 0; i < observed.front(); ++i) {
    out[i] = series.value(observed.front());
  }
  for (std::size_t i = observed.back() + 1; i < n; ++i) {
    out[i] = series.value(observed.back());
  }
  // Interior gaps: linear interpolation between bracketing anchors.
  for (std::size_t k = 0; k + 1 < observed.size(); ++k) {
    const std::size_t a = observed[k];
    const std::size_t b = observed[k + 1];
    if (b == a + 1) continue;
    const double va = series.value(a);
    const double vb = series.value(b);
    for (std::size_t i = a + 1; i < b; ++i) {
      const double t = static_cast<double>(i - a) / static_cast<double>(b - a);
      out[i] = va + t * (vb - va);
    }
  }
  return out;
}

Result<la::Vector> FeatureExtractor::Extract(
    const ts::TimeSeries& series) const {
  ADARTS_FAILPOINT("features.extract");
  if (series.length() - series.MissingCount() < 8) {
    return Status::InvalidArgument(
        "feature extraction needs at least 8 observed points");
  }
  const la::Vector v = InterpolateMissing(series);
  la::Vector out;
  out.reserve(schema_.size());

  if (options_.statistical) {
    const double mean = la::Mean(v);
    const double sd = la::StdDev(v);
    const double var = la::Variance(v);
    const double vmin = *std::min_element(v.begin(), v.end());
    const double vmax = *std::max_element(v.begin(), v.end());
    const double med = Median(v);
    const double q25 = Quantile(v, 0.25);
    const double q75 = Quantile(v, 0.75);
    double rms = 0.0;
    for (double x : v) rms += x * x;
    rms = std::sqrt(rms / static_cast<double>(v.size()));
    double above = 0.0;
    for (double x : v) above += x > mean ? 1.0 : 0.0;
    above /= static_cast<double>(v.size());
    const double symmetric =
        (sd > 0.0 && std::fabs(mean - med) / sd < 0.1) ? 1.0 : 0.0;

    out.push_back(mean);
    out.push_back(sd);
    out.push_back(var);
    out.push_back(vmin);
    out.push_back(vmax);
    out.push_back(vmax - vmin);
    out.push_back(med);
    out.push_back(q75 - q25);
    out.push_back(Skewness(v));
    out.push_back(Kurtosis(v));
    out.push_back(rms);
    out.push_back(MeanAbsChange(v));
    out.push_back(ZeroCrossingRate(v));
    out.push_back(LongestStreakAboveMean(v));
    out.push_back(above);
    out.push_back(OutlierFraction(v, 3.0));
    out.push_back(std::fabs(mean) > 1e-12 ? sd / std::fabs(mean) : 0.0);
    out.push_back(symmetric);
    out.push_back(Quantile(v, 0.05));
    out.push_back(Quantile(v, 0.95));

    const std::size_t max_lag =
        std::min(options_.max_acf_lag, v.size() / 2);
    const la::Vector acf = ts::Acf(v, std::max<std::size_t>(max_lag, 10));
    const la::Vector pacf = ts::Pacf(v, 3);
    const auto acf_at = [&](std::size_t lag) {
      return lag < acf.size() ? acf[lag] : 0.0;
    };
    double acf_sum10 = 0.0;
    double abs_acf_mean10 = 0.0;
    for (std::size_t lag = 1; lag <= 10; ++lag) {
      acf_sum10 += acf_at(lag);
      abs_acf_mean10 += std::fabs(acf_at(lag));
    }
    abs_acf_mean10 /= 10.0;
    la::Vector diffs(v.size() > 1 ? v.size() - 1 : 0);
    for (std::size_t i = 1; i < v.size(); ++i) diffs[i - 1] = v[i] - v[i - 1];
    const la::Vector dacf = ts::Acf(diffs, 1);

    out.push_back(acf_at(1));
    out.push_back(acf_at(2));
    out.push_back(acf_at(5));
    out.push_back(acf_at(10));
    out.push_back(acf_sum10);
    out.push_back(static_cast<double>(ts::FirstAcfCrossing(v, max_lag)) /
                  static_cast<double>(std::max<std::size_t>(max_lag, 1)));
    out.push_back(pacf.size() > 0 ? pacf[0] : 0.0);
    out.push_back(pacf.size() > 1 ? pacf[1] : 0.0);
    out.push_back(pacf.size() > 2 ? pacf[2] : 0.0);
    out.push_back(dacf.size() > 1 ? dacf[1] : 0.0);
    out.push_back(abs_acf_mean10);

    const auto [slope, r2] = LinearTrend(v);
    const double period = ts::EstimatePeriod(v);
    out.push_back(sd > 0.0 ? slope / sd : 0.0);
    out.push_back(r2);
    out.push_back(period / static_cast<double>(v.size()));
    out.push_back(ts::SpectralEntropy(v));
    out.push_back(SeasonalityStrength(v));
    out.push_back(TrendStrength(v));
    out.push_back(TrendChangeRate(v));

    // PCA trend of the delay-embedded matrix: how one-dimensional the
    // underlying dynamics are.
    double pca1 = 0.0, pca2 = 0.0;
    auto embedded = tda::DelayEmbed(v, 3, 1);
    if (embedded.ok() && embedded->size() >= 4) {
      la::Matrix m(embedded->size(), 3);
      for (std::size_t i = 0; i < embedded->size(); ++i) {
        m.SetRow(i, (*embedded)[i]);
      }
      la::Pca pca;
      if (pca.Fit(m, 2).ok()) {
        const la::Vector& ratio = pca.explained_variance_ratio();
        pca1 = !ratio.empty() ? ratio[0] : 0.0;
        pca2 = ratio.size() > 1 ? ratio[1] : 0.0;
      }
    }
    out.push_back(pca1);
    out.push_back(pca2);
  }

  if (options_.topological) {
    // Z-normalise so diagram scale is comparable across series, then embed
    // and reduce to landmarks.
    la::Vector z = v;
    const double m = la::Mean(z);
    double sd = la::StdDev(z);
    if (sd <= 0.0) sd = 1.0;
    for (double& x : z) x = (x - m) / sd;

    std::size_t tau = options_.embedding_tau;
    if (tau == 0) {
      tau = std::max<std::size_t>(
          ts::FirstAcfCrossing(z, std::min<std::size_t>(z.size() / 4, 32)), 1);
    }
    tda::DiagramStats h0, h1;
    auto embedded = tda::DelayEmbed(z, options_.embedding_dimension, tau);
    if (!embedded.ok()) {
      embedded = tda::DelayEmbed(z, options_.embedding_dimension, 1);
    }
    if (embedded.ok() && embedded->size() >= 3) {
      const tda::PointCloud landmarks =
          tda::MaxMinLandmarks(*embedded, options_.landmarks);
      auto diagram = tda::ComputeRipsPersistence(landmarks);
      if (diagram.ok()) {
        h0 = tda::ComputeDiagramStats(*diagram, 0);
        h1 = tda::ComputeDiagramStats(*diagram, 1);
      }
    }
    for (double x : tda::DiagramStatsToVector(h0)) out.push_back(x);
    for (double x : tda::DiagramStatsToVector(h1)) out.push_back(x);
  }

  if (options_.missingness) {
    // Descriptors of the gap structure itself (the paper's future-work
    // extension): contiguous missing runs, their sizes and positions,
    // normalised by the series length.
    const double n = static_cast<double>(series.length());
    std::vector<std::pair<std::size_t, std::size_t>> gaps;  // [start, end)
    std::size_t t = 0;
    while (t < series.length()) {
      if (!series.IsMissing(t)) {
        ++t;
        continue;
      }
      std::size_t end = t;
      while (end < series.length() && series.IsMissing(end)) ++end;
      gaps.emplace_back(t, end);
      t = end;
    }
    const double missing_fraction =
        static_cast<double>(series.MissingCount()) / n;
    double max_gap = 0.0;
    double mean_gap = 0.0;
    double position_mean = 0.0;
    double position_sq = 0.0;
    for (const auto& [start, end] : gaps) {
      const double len = static_cast<double>(end - start) / n;
      max_gap = std::max(max_gap, len);
      mean_gap += len;
      const double center =
          (static_cast<double>(start) + static_cast<double>(end)) / (2.0 * n);
      position_mean += center;
      position_sq += center * center;
    }
    if (!gaps.empty()) {
      const double g = static_cast<double>(gaps.size());
      mean_gap /= g;
      position_mean /= g;
      position_sq /= g;
    }
    const double dispersion =
        gaps.size() > 1 ? std::sqrt(std::max(
                              position_sq - position_mean * position_mean, 0.0))
                        : 0.0;
    const bool tip = !gaps.empty() && gaps.back().second == series.length();

    out.push_back(missing_fraction);
    out.push_back(static_cast<double>(gaps.size()));
    out.push_back(max_gap);
    out.push_back(mean_gap);
    out.push_back(gaps.empty() ? 1.0
                               : static_cast<double>(gaps.front().first) / n);
    out.push_back(gaps.empty() ? 0.0
                               : static_cast<double>(gaps.back().second) / n);
    out.push_back(tip ? 1.0 : 0.0);
    out.push_back(dispersion);
  }

  ADARTS_DCHECK(out.size() == schema_.size());
  return out;
}

Result<std::vector<la::Vector>> FeatureExtractor::ExtractBatch(
    const std::vector<ts::TimeSeries>& series) const {
  std::vector<la::Vector> out;
  out.reserve(series.size());
  for (const auto& s : series) {
    ADARTS_ASSIGN_OR_RETURN(la::Vector f, Extract(s));
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace adarts::features
