#ifndef ADARTS_FEATURES_FEATURE_EXTRACTOR_H_
#define ADARTS_FEATURES_FEATURE_EXTRACTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "la/vector_ops.h"
#include "ts/time_series.h"

namespace adarts::features {

/// Coarse-grained feature categories from Section V-B of the paper, plus
/// the missing-pattern descriptors the paper's conclusion names as future
/// work ("automatically detect the types of missing patterns and include
/// them as additional features").
enum class FeatureGroup {
  kCanonical,    ///< basic statistical summaries (mean, variance, ...)
  kDependency,   ///< temporal dependencies (ACF/PACF, decorrelation time)
  kTrend,        ///< seasonality, frequency, linear/PCA trend
  kTopological,  ///< persistence-diagram statistics of the delay embedding
  kMissingness,  ///< descriptors of the gap structure itself
};

const char* FeatureGroupToString(FeatureGroup group);

/// Name and group of one feature dimension.
struct FeatureInfo {
  std::string name;
  FeatureGroup group;
};

/// Configuration of the extractor; the Fig. 9 ablation toggles the two
/// families.
struct FeatureExtractorOptions {
  bool statistical = true;   ///< canonical + dependency + trend groups
  bool topological = true;   ///< persistence statistics
  /// Missing-pattern descriptors (gap count/size/position): the paper's
  /// future-work extension, implemented here as an opt-in group.
  bool missingness = false;
  std::size_t embedding_dimension = 3;  ///< delay-embedding dimension d
  std::size_t embedding_tau = 0;        ///< delay; 0 = auto via ACF crossing
  std::size_t landmarks = 24;  ///< Rips point budget (cost is O(L^3))
  std::size_t max_acf_lag = 20;
};

/// Maps an (incomplete) time series to a fixed-schema numeric feature
/// vector. Missing positions are linearly interpolated before extraction so
/// that order-sensitive (dependency/topological) features remain defined.
///
/// The extractor is stateless and thread-compatible; the schema depends only
/// on the options.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureExtractorOptions options = {});

  /// Feature schema (names + groups) for the configured options.
  const std::vector<FeatureInfo>& Schema() const { return schema_; }

  /// Number of feature dimensions.
  std::size_t NumFeatures() const { return schema_.size(); }

  /// Extracts the feature vector of `series`. Fails for series shorter than
  /// 8 observed points.
  Result<la::Vector> Extract(const ts::TimeSeries& series) const;

  /// Extracts features of every series; rows align with input order.
  Result<std::vector<la::Vector>> ExtractBatch(
      const std::vector<ts::TimeSeries>& series) const;

  const FeatureExtractorOptions& options() const { return options_; }

 private:
  FeatureExtractorOptions options_;
  std::vector<FeatureInfo> schema_;
};

/// Fills missing positions by linear interpolation between the nearest
/// observed neighbours (edge gaps use the nearest observed value). Utility
/// shared with several imputers and the extractor.
la::Vector InterpolateMissing(const ts::TimeSeries& series);

}  // namespace adarts::features

#endif  // ADARTS_FEATURES_FEATURE_EXTRACTOR_H_
