#include "forecast/forecaster.h"

#include <algorithm>
#include <cmath>

#include "la/decompositions.h"
#include "la/matrix.h"
#include "ts/acf.h"
#include "ts/fft.h"

namespace adarts::forecast {

namespace {

std::size_t DetectPeriod(const la::Vector& history) {
  // FFT gives a coarse candidate (bin-quantised, so possibly off by a
  // sample or two); refine by maximising the ACF in a +-20% lag window —
  // a one-sample period error compounds across seasonal cycles otherwise.
  const double coarse = ts::EstimatePeriod(history);
  if (coarse < 2.0 || coarse > static_cast<double>(history.size()) / 3.0) {
    return 0;
  }
  const auto lo = static_cast<std::size_t>(std::floor(coarse * 0.8));
  const auto hi = std::min(static_cast<std::size_t>(std::ceil(coarse * 1.2)),
                           history.size() / 3);
  const la::Vector acf = ts::Acf(history, hi);
  std::size_t best = static_cast<std::size_t>(std::lround(coarse));
  double best_acf = -2.0;
  for (std::size_t lag = std::max<std::size_t>(lo, 2); lag <= hi; ++lag) {
    if (acf[lag] > best_acf) {
      best_acf = acf[lag];
      best = lag;
    }
  }
  return best;
}

class SeasonalNaive final : public Forecaster {
 public:
  std::string_view name() const override { return "seasonal_naive"; }
  Result<la::Vector> Forecast(const la::Vector& history,
                              std::size_t horizon) const override {
    if (history.empty()) return Status::InvalidArgument("empty history");
    const std::size_t period = DetectPeriod(history);
    la::Vector out(horizon);
    for (std::size_t h = 0; h < horizon; ++h) {
      if (period >= 1 && history.size() >= period) {
        out[h] = history[history.size() - period + (h % period)];
      } else {
        out[h] = history.back();
      }
    }
    return out;
  }
};

class Drift final : public Forecaster {
 public:
  std::string_view name() const override { return "drift"; }
  Result<la::Vector> Forecast(const la::Vector& history,
                              std::size_t horizon) const override {
    if (history.size() < 2) return Status::InvalidArgument("history too short");
    const double slope = (history.back() - history.front()) /
                         static_cast<double>(history.size() - 1);
    la::Vector out(horizon);
    for (std::size_t h = 0; h < horizon; ++h) {
      out[h] = history.back() + slope * static_cast<double>(h + 1);
    }
    return out;
  }
};

class HoltLinear final : public Forecaster {
 public:
  HoltLinear(double alpha, double beta) : alpha_(alpha), beta_(beta) {}
  std::string_view name() const override { return "holt_linear"; }
  Result<la::Vector> Forecast(const la::Vector& history,
                              std::size_t horizon) const override {
    if (history.size() < 3) return Status::InvalidArgument("history too short");
    double level = history[0];
    double trend = history[1] - history[0];
    for (std::size_t t = 1; t < history.size(); ++t) {
      const double prev_level = level;
      level = alpha_ * history[t] + (1.0 - alpha_) * (level + trend);
      trend = beta_ * (level - prev_level) + (1.0 - beta_) * trend;
    }
    la::Vector out(horizon);
    for (std::size_t h = 0; h < horizon; ++h) {
      out[h] = level + trend * static_cast<double>(h + 1);
    }
    return out;
  }

 private:
  double alpha_, beta_;
};

class HoltWinters final : public Forecaster {
 public:
  HoltWinters(double alpha, double beta, double gamma)
      : alpha_(alpha), beta_(beta), gamma_(gamma) {}
  std::string_view name() const override { return "holt_winters"; }
  Result<la::Vector> Forecast(const la::Vector& history,
                              std::size_t horizon) const override {
    const std::size_t period = DetectPeriod(history);
    if (period < 2 || history.size() < 2 * period) {
      // Aperiodic series degrade gracefully to Holt's linear method.
      return HoltLinear(alpha_, beta_).Forecast(history, horizon);
    }
    // Initial components from the first cycle.
    double level = 0.0;
    for (std::size_t i = 0; i < period; ++i) level += history[i];
    level /= static_cast<double>(period);
    double trend = 0.0;
    for (std::size_t i = 0; i < period; ++i) {
      trend += (history[period + i] - history[i]) / static_cast<double>(period);
    }
    trend /= static_cast<double>(period);
    la::Vector seasonal(period);
    for (std::size_t i = 0; i < period; ++i) seasonal[i] = history[i] - level;

    for (std::size_t t = period; t < history.size(); ++t) {
      const std::size_t s = t % period;
      const double prev_level = level;
      level = alpha_ * (history[t] - seasonal[s]) +
              (1.0 - alpha_) * (level + trend);
      trend = beta_ * (level - prev_level) + (1.0 - beta_) * trend;
      seasonal[s] =
          gamma_ * (history[t] - level) + (1.0 - gamma_) * seasonal[s];
    }
    la::Vector out(horizon);
    for (std::size_t h = 0; h < horizon; ++h) {
      out[h] = level + trend * static_cast<double>(h + 1) +
               seasonal[(history.size() + h) % period];
    }
    return out;
  }

 private:
  double alpha_, beta_, gamma_;
};

class AutoRegressive final : public Forecaster {
 public:
  explicit AutoRegressive(std::size_t order) : order_(order) {}
  std::string_view name() const override { return "ar_yule_walker"; }
  Result<la::Vector> Forecast(const la::Vector& history,
                              std::size_t horizon) const override {
    const std::size_t p = std::min(order_, history.size() / 3);
    if (p < 1) return Status::InvalidArgument("history too short for AR");

    // Yule-Walker: R phi = r with R the Toeplitz autocorrelation matrix.
    const la::Vector acf = ts::Acf(history, p);
    la::Matrix r_mat(p, p);
    la::Vector r_vec(p);
    for (std::size_t i = 0; i < p; ++i) {
      r_vec[i] = acf[i + 1];
      for (std::size_t j = 0; j < p; ++j) {
        r_mat(i, j) = acf[static_cast<std::size_t>(
            std::abs(static_cast<int>(i) - static_cast<int>(j)))];
      }
      r_mat(i, i) += 1e-6;  // ridge for near-singular Toeplitz systems
    }
    ADARTS_ASSIGN_OR_RETURN(la::Vector phi, la::SolveLinear(r_mat, r_vec));

    const double mean = la::Mean(history);
    la::Vector extended = history;
    la::Vector out(horizon);
    for (std::size_t h = 0; h < horizon; ++h) {
      double pred = mean;
      for (std::size_t j = 0; j < p; ++j) {
        pred += phi[j] * (extended[extended.size() - 1 - j] - mean);
      }
      extended.push_back(pred);
      out[h] = pred;
    }
    return out;
  }

 private:
  std::size_t order_;
};

}  // namespace

std::unique_ptr<Forecaster> CreateSeasonalNaive() {
  return std::make_unique<SeasonalNaive>();
}
std::unique_ptr<Forecaster> CreateDrift() { return std::make_unique<Drift>(); }
std::unique_ptr<Forecaster> CreateHoltLinear(double alpha, double beta) {
  return std::make_unique<HoltLinear>(alpha, beta);
}
std::unique_ptr<Forecaster> CreateHoltWinters(double alpha, double beta,
                                              double gamma) {
  return std::make_unique<HoltWinters>(alpha, beta, gamma);
}
std::unique_ptr<Forecaster> CreateAutoRegressive(std::size_t order) {
  return std::make_unique<AutoRegressive>(order);
}

}  // namespace adarts::forecast
