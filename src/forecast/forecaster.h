#ifndef ADARTS_FORECAST_FORECASTER_H_
#define ADARTS_FORECAST_FORECASTER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "la/vector_ops.h"

namespace adarts::forecast {

/// Forecasting models for the downstream experiment (Fig. 12). A forecaster
/// consumes a fully observed history and emits `horizon` future values.
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  virtual std::string_view name() const = 0;

  /// Predicts `horizon` values following `history`. Fails when the history
  /// is too short for the model.
  virtual Result<la::Vector> Forecast(const la::Vector& history,
                                      std::size_t horizon) const = 0;
};

/// Repeats the last observed seasonal cycle (period auto-detected via the
/// spectrum; falls back to the last value when aperiodic).
std::unique_ptr<Forecaster> CreateSeasonalNaive();

/// Last value plus the average historical increment ("drift" method).
std::unique_ptr<Forecaster> CreateDrift();

/// Holt's linear trend method (double exponential smoothing).
std::unique_ptr<Forecaster> CreateHoltLinear(double alpha = 0.4,
                                             double beta = 0.1);

/// Additive Holt-Winters (level + trend + seasonal component).
std::unique_ptr<Forecaster> CreateHoltWinters(double alpha = 0.3,
                                              double beta = 0.05,
                                              double gamma = 0.2);

/// AR(p) model fitted by the Yule-Walker equations.
std::unique_ptr<Forecaster> CreateAutoRegressive(std::size_t order = 8);

}  // namespace adarts::forecast

#endif  // ADARTS_FORECAST_FORECASTER_H_
