#include "impute/cdrec.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "impute/masked_matrix.h"
#include "la/vector_ops.h"

namespace adarts::impute {

namespace {

/// Greedy scalable-sign-vector search: finds z in {-1, +1}^rows maximising
/// ||X^T z||_2 by flipping one sign at a time while the objective improves.
std::vector<double> FindSignVector(const la::Matrix& x) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  std::vector<double> z(m, 1.0);

  // s = X^T z, maintained incrementally.
  la::Vector s(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) s[j] += x(i, j);
  }

  // Precompute row norms for the flip deltas.
  la::Vector row_sq(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_sq[i] += x(i, j) * x(i, j);
  }

  const int max_passes = 100;
  for (int pass = 0; pass < max_passes; ++pass) {
    double best_delta = 0.0;
    std::size_t best_i = m;
    for (std::size_t i = 0; i < m; ++i) {
      // Flipping z_i changes ||s||^2 by -4 z_i (x_i . s) + 4 ||x_i||^2.
      double dot = 0.0;
      for (std::size_t j = 0; j < n; ++j) dot += x(i, j) * s[j];
      const double delta = -4.0 * z[i] * dot + 4.0 * row_sq[i];
      if (delta > best_delta + 1e-12) {
        best_delta = delta;
        best_i = i;
      }
    }
    if (best_i == m) break;
    // Apply the flip and update s.
    const double zi_old = z[best_i];
    z[best_i] = -zi_old;
    for (std::size_t j = 0; j < n; ++j) {
      s[j] -= 2.0 * zi_old * x(best_i, j);
    }
  }
  return z;
}

}  // namespace

Result<CentroidDecomposition> ComputeCentroidDecomposition(const la::Matrix& x,
                                                           std::size_t rank) {
  if (x.empty()) return Status::InvalidArgument("CD of empty matrix");
  rank = std::min(rank, std::min(x.rows(), x.cols()));
  if (rank == 0) return Status::InvalidArgument("CD rank must be positive");

  la::Matrix residual = x;
  CentroidDecomposition cd;
  cd.loadings = la::Matrix(x.rows(), rank);
  cd.relevance = la::Matrix(x.cols(), rank);

  for (std::size_t r = 0; r < rank; ++r) {
    const std::vector<double> z = FindSignVector(residual);
    // c = X^T z / ||X^T z|| (relevance vector).
    la::Vector c(x.cols(), 0.0);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t j = 0; j < x.cols(); ++j) {
        c[j] += residual(i, j) * z[i];
      }
    }
    const double norm = la::Norm2(c);
    if (norm <= 1e-12) break;  // residual exhausted; later columns stay zero
    for (double& v : c) v /= norm;
    // l = X c (loading vector).
    la::Vector l = residual.MultiplyVec(c);
    for (std::size_t i = 0; i < x.rows(); ++i) cd.loadings(i, r) = l[i];
    for (std::size_t j = 0; j < x.cols(); ++j) cd.relevance(j, r) = c[j];
    // Deflate.
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t j = 0; j < x.cols(); ++j) {
        residual(i, j) -= l[i] * c[j];
      }
    }
  }
  return cd;
}

Result<std::vector<ts::TimeSeries>> CdRecImputer::ImputeSetWithDiagnostics(
    const std::vector<ts::TimeSeries>& set, FitDiagnostics* diagnostics) const {
  ADARTS_FAILPOINT("impute.cdrec.fit");
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  la::Matrix x = m.values;
  const std::size_t rank =
      std::min<std::size_t>(rank_, std::min(x.rows(), x.cols()));
  FitDiagnostics diag;
  diag.converged = false;
  for (int it = 0; it < max_iters_; ++it) {
    ADARTS_ASSIGN_OR_RETURN(CentroidDecomposition cd,
                            ComputeCentroidDecomposition(x, rank));
    la::Matrix recon = cd.loadings.Multiply(cd.relevance.Transpose());
    RestoreObserved(m, &recon);
    const double change = RelativeChange(recon, x);
    x = std::move(recon);
    diag.iterations = it + 1;
    diag.final_change = change;
    if (change < tol_) {
      diag.converged = true;
      break;
    }
  }
  if (diagnostics != nullptr) *diagnostics = diag;
  MaskedMatrix repaired = m;
  repaired.values = std::move(x);
  return MatrixToSeries(repaired, set);
}

}  // namespace adarts::impute
