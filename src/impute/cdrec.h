#ifndef ADARTS_IMPUTE_CDREC_H_
#define ADARTS_IMPUTE_CDREC_H_

#include <cstddef>

#include "common/status.h"
#include "impute/imputer.h"
#include "la/matrix.h"

namespace adarts::impute {

/// Centroid decomposition of X into L * R^T with `rank` centroid
/// components. The sign vector of each component is found by the greedy
/// scalable-sign-vector iteration. Exposed for testing.
struct CentroidDecomposition {
  la::Matrix loadings;   ///< rows x rank
  la::Matrix relevance;  ///< cols x rank
};

/// Computes the rank-`rank` centroid decomposition of `x`.
Result<CentroidDecomposition> ComputeCentroidDecomposition(const la::Matrix& x,
                                                           std::size_t rank);

/// CDRec (Khayati et al.): memory-efficient recovery of missing blocks via
/// iterative truncated centroid decomposition, the reference algorithm of
/// the ImputeBench family for highly correlated sets.
class CdRecImputer final : public Imputer {
 public:
  explicit CdRecImputer(std::size_t rank = 3, int max_iters = 40,
                        double tol = 1e-5)
      : rank_(rank), max_iters_(max_iters), tol_(tol) {}
  std::string_view name() const override { return "cdrec"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override {
    return ImputeSetWithDiagnostics(set, nullptr);
  }
  Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const override;

 private:
  std::size_t rank_;
  int max_iters_;
  double tol_;
};

}  // namespace adarts::impute

#endif  // ADARTS_IMPUTE_CDREC_H_
