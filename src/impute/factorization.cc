#include "impute/factorization.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/rng.h"
#include "impute/masked_matrix.h"
#include "la/decompositions.h"

namespace adarts::impute {

Result<std::vector<ts::TimeSeries>> TrmfImputer::ImputeSetWithDiagnostics(
    const std::vector<ts::TimeSeries>& set, FitDiagnostics* diagnostics) const {
  ADARTS_FAILPOINT("impute.trmf.fit");
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  const std::size_t t_len = m.rows();
  const std::size_t n = m.cols();
  const std::size_t k =
      std::min<std::size_t>(std::max<std::size_t>(rank_, 1),
                            std::min(t_len, n));

  // Initialise F from the SVD of the pre-filled matrix, G from V * S.
  la::Matrix f(t_len, k);
  la::Matrix g(n, k);
  {
    auto svd = la::ComputeSvd(m.values);
    if (svd.ok()) {
      for (std::size_t t = 0; t < t_len; ++t) {
        for (std::size_t c = 0; c < k; ++c) f(t, c) = svd->u(t, c);
      }
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t c = 0; c < k; ++c) {
          g(j, c) = svd->v(j, c) * svd->singular_values[c];
        }
      }
    } else {
      Rng rng(7);
      for (std::size_t t = 0; t < t_len; ++t)
        for (std::size_t c = 0; c < k; ++c) f(t, c) = rng.Normal(0, 0.1);
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t c = 0; c < k; ++c) g(j, c) = rng.Normal(0, 0.1);
    }
  }

  la::Matrix prev_recon = m.values;
  FitDiagnostics diag;
  diag.converged = false;
  for (int it = 0; it < max_iters_; ++it) {
    // --- Update G: per-series ridge regression on observed rows.
    for (std::size_t j = 0; j < n; ++j) {
      la::Matrix ata(k, k);
      la::Vector atb(k, 0.0);
      for (std::size_t t = 0; t < t_len; ++t) {
        if (m.missing[t][j]) continue;
        for (std::size_t a = 0; a < k; ++a) {
          atb[a] += f(t, a) * m.values(t, j);
          for (std::size_t b = a; b < k; ++b) {
            ata(a, b) += f(t, a) * f(t, b);
          }
        }
      }
      for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = a; b < k; ++b) ata(b, a) = ata(a, b);
        ata(a, a) += lambda_ridge_;
      }
      auto sol = la::SolveLinear(ata, atb);
      if (sol.ok()) {
        for (std::size_t c = 0; c < k; ++c) g(j, c) = (*sol)[c];
      }
    }

    // --- Update F: Gauss-Seidel over time with a temporal-smoothness pull
    // towards the average of the neighbouring factors.
    for (std::size_t t = 0; t < t_len; ++t) {
      la::Matrix ata(k, k);
      la::Vector atb(k, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        if (m.missing[t][j]) continue;
        for (std::size_t a = 0; a < k; ++a) {
          atb[a] += g(j, a) * m.values(t, j);
          for (std::size_t b = a; b < k; ++b) {
            ata(a, b) += g(j, a) * g(j, b);
          }
        }
      }
      double neighbor_weight = 0.0;
      la::Vector neighbor_sum(k, 0.0);
      if (t > 0) {
        neighbor_weight += lambda_temporal_;
        for (std::size_t c = 0; c < k; ++c) {
          neighbor_sum[c] += lambda_temporal_ * f(t - 1, c);
        }
      }
      if (t + 1 < t_len) {
        neighbor_weight += lambda_temporal_;
        for (std::size_t c = 0; c < k; ++c) {
          neighbor_sum[c] += lambda_temporal_ * f(t + 1, c);
        }
      }
      for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = a; b < k; ++b) ata(b, a) = ata(a, b);
        ata(a, a) += lambda_ridge_ + neighbor_weight;
        atb[a] += neighbor_sum[a];
      }
      auto sol = la::SolveLinear(ata, atb);
      if (sol.ok()) {
        for (std::size_t c = 0; c < k; ++c) f(t, c) = (*sol)[c];
      }
    }

    la::Matrix recon = f.Multiply(g.Transpose());
    const double change = RelativeChange(recon, prev_recon);
    prev_recon = std::move(recon);
    diag.iterations = it + 1;
    diag.final_change = change;
    if (change < tol_) {
      diag.converged = true;
      break;
    }
  }
  if (diagnostics != nullptr) *diagnostics = diag;

  RestoreObserved(m, &prev_recon);
  MaskedMatrix repaired = m;
  repaired.values = std::move(prev_recon);
  return MatrixToSeries(repaired, set);
}

Result<std::vector<ts::TimeSeries>> TeNmfImputer::ImputeSetWithDiagnostics(
    const std::vector<ts::TimeSeries>& set, FitDiagnostics* diagnostics) const {
  ADARTS_FAILPOINT("impute.tenmf.fit");
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  const std::size_t t_len = m.rows();
  const std::size_t n = m.cols();
  const std::size_t k =
      std::min<std::size_t>(std::max<std::size_t>(rank_, 1),
                            std::min(t_len, n));

  // Shift to the nonnegative orthant.
  double vmin = 0.0;
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      vmin = std::min(vmin, m.values(t, j));
    }
  }
  const double shift = -vmin + 1.0;
  la::Matrix x(t_len, n);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t j = 0; j < n; ++j) x(t, j) = m.values(t, j) + shift;
  }

  // Deterministic positive initialisation.
  Rng rng(13);
  la::Matrix w(t_len, k);
  la::Matrix h(k, n);
  for (std::size_t t = 0; t < t_len; ++t)
    for (std::size_t c = 0; c < k; ++c) w(t, c) = 0.5 + rng.Uniform();
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t j = 0; j < n; ++j) h(c, j) = 0.5 + rng.Uniform();

  constexpr double kEps = 1e-9;
  la::Matrix prev = x;
  FitDiagnostics diag;
  diag.converged = false;
  for (int it = 0; it < max_iters_; ++it) {
    const la::Matrix wh = w.Multiply(h);
    // Mask-weighted multiplicative updates (observed entries only drive the
    // fit; missing entries carry the current reconstruction).
    la::Matrix target = x;
    for (std::size_t t = 0; t < t_len; ++t) {
      for (std::size_t j = 0; j < n; ++j) {
        if (m.missing[t][j]) target(t, j) = wh(t, j);
      }
    }
    // H update: H *= (W^T target) / (W^T W H).
    const la::Matrix wt = w.Transpose();
    const la::Matrix num_h = wt.Multiply(target);
    const la::Matrix den_h = wt.Multiply(w).Multiply(h);
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t j = 0; j < n; ++j) {
        h(c, j) *= num_h(c, j) / (den_h(c, j) + kEps);
      }
    }
    // W update: W *= (target H^T) / (W H H^T).
    const la::Matrix ht = h.Transpose();
    const la::Matrix num_w = target.Multiply(ht);
    const la::Matrix den_w = w.Multiply(h).Multiply(ht);
    for (std::size_t t = 0; t < t_len; ++t) {
      for (std::size_t c = 0; c < k; ++c) {
        w(t, c) *= num_w(t, c) / (den_w(t, c) + kEps);
      }
    }
    const la::Matrix recon = w.Multiply(h);
    const double change = RelativeChange(recon, prev);
    prev = recon;
    diag.iterations = it + 1;
    diag.final_change = change;
    if (change < tol_) {
      diag.converged = true;
      break;
    }
  }
  if (diagnostics != nullptr) *diagnostics = diag;

  // Shift back and restore observed values.
  la::Matrix result(t_len, n);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t j = 0; j < n; ++j) result(t, j) = prev(t, j) - shift;
  }
  RestoreObserved(m, &result);
  MaskedMatrix repaired = m;
  repaired.values = std::move(result);
  return MatrixToSeries(repaired, set);
}

}  // namespace adarts::impute
