#ifndef ADARTS_IMPUTE_FACTORIZATION_H_
#define ADARTS_IMPUTE_FACTORIZATION_H_

#include <cstddef>

#include "impute/imputer.h"

namespace adarts::impute {

/// Temporal regularized matrix factorization (Yu et al. 2016): X ~ F G^T
/// where the time factors F are pulled towards temporal smoothness. Solved
/// by alternating ridge least squares with a Gauss-Seidel pass over the
/// time factors.
class TrmfImputer final : public Imputer {
 public:
  explicit TrmfImputer(std::size_t rank = 3, double lambda_temporal = 0.5,
                       double lambda_ridge = 0.1, int max_iters = 25,
                       double tol = 1e-5)
      : rank_(rank),
        lambda_temporal_(lambda_temporal),
        lambda_ridge_(lambda_ridge),
        max_iters_(max_iters),
        tol_(tol) {}
  std::string_view name() const override { return "trmf"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override {
    return ImputeSetWithDiagnostics(set, nullptr);
  }
  Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const override;

 private:
  std::size_t rank_;
  double lambda_temporal_;
  double lambda_ridge_;
  int max_iters_;
  double tol_;
};

/// Nonnegative matrix factorization recovery (Mei et al. 2017 style):
/// shifts the data to the nonnegative orthant and runs mask-weighted
/// multiplicative updates W H, imputing from the product.
class TeNmfImputer final : public Imputer {
 public:
  explicit TeNmfImputer(std::size_t rank = 3, int max_iters = 120,
                        double tol = 1e-5)
      : rank_(rank), max_iters_(max_iters), tol_(tol) {}
  std::string_view name() const override { return "tenmf"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override {
    return ImputeSetWithDiagnostics(set, nullptr);
  }
  Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const override;

 private:
  std::size_t rank_;
  int max_iters_;
  double tol_;
};

}  // namespace adarts::impute

#endif  // ADARTS_IMPUTE_FACTORIZATION_H_
