#include "impute/imputer.h"

#include "impute/cdrec.h"
#include "impute/factorization.h"
#include "impute/pattern.h"
#include "impute/simple.h"
#include "impute/subspace.h"
#include "impute/svd_family.h"

namespace adarts::impute {

std::string_view AlgorithmToString(Algorithm a) {
  switch (a) {
    case Algorithm::kCdRec:
      return "cdrec";
    case Algorithm::kSvdImpute:
      return "svd_impute";
    case Algorithm::kSoftImpute:
      return "soft_impute";
    case Algorithm::kSvt:
      return "svt";
    case Algorithm::kGrouse:
      return "grouse";
    case Algorithm::kDynaMmo:
      return "dynammo";
    case Algorithm::kTrmf:
      return "trmf";
    case Algorithm::kTeNmf:
      return "tenmf";
    case Algorithm::kRosl:
      return "rosl";
    case Algorithm::kStMvl:
      return "stmvl";
    case Algorithm::kTkcm:
      return "tkcm";
    case Algorithm::kIim:
      return "iim";
    case Algorithm::kMeanImpute:
      return "mean";
    case Algorithm::kLinearInterp:
      return "linear_interp";
    case Algorithm::kKnnImpute:
      return "knn_impute";
  }
  return "unknown";
}

Result<Algorithm> AlgorithmFromString(std::string_view name) {
  for (Algorithm a : AllAlgorithms()) {
    if (AlgorithmToString(a) == name) return a;
  }
  return Status::NotFound("unknown imputation algorithm: " +
                          std::string(name));
}

std::vector<Algorithm> AllAlgorithms() {
  std::vector<Algorithm> out;
  out.reserve(kNumAlgorithms);
  for (int i = 0; i < kNumAlgorithms; ++i) {
    out.push_back(static_cast<Algorithm>(i));
  }
  return out;
}

Result<ts::TimeSeries> Imputer::Impute(const ts::TimeSeries& series) const {
  ADARTS_ASSIGN_OR_RETURN(std::vector<ts::TimeSeries> repaired,
                          ImputeSet({series}));
  return std::move(repaired[0]);
}

std::unique_ptr<Imputer> CreateImputer(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kCdRec:
      return std::make_unique<CdRecImputer>();
    case Algorithm::kSvdImpute:
      return std::make_unique<SvdImputer>();
    case Algorithm::kSoftImpute:
      return std::make_unique<SoftImputer>();
    case Algorithm::kSvt:
      return std::make_unique<SvtImputer>();
    case Algorithm::kGrouse:
      return std::make_unique<GrouseImputer>();
    case Algorithm::kDynaMmo:
      return std::make_unique<DynaMmoImputer>();
    case Algorithm::kTrmf:
      return std::make_unique<TrmfImputer>();
    case Algorithm::kTeNmf:
      return std::make_unique<TeNmfImputer>();
    case Algorithm::kRosl:
      return std::make_unique<RoslImputer>();
    case Algorithm::kStMvl:
      return std::make_unique<StMvlImputer>();
    case Algorithm::kTkcm:
      return std::make_unique<TkcmImputer>();
    case Algorithm::kIim:
      return std::make_unique<IimImputer>();
    case Algorithm::kMeanImpute:
      return std::make_unique<MeanImputer>();
    case Algorithm::kLinearInterp:
      return std::make_unique<LinearInterpImputer>();
    case Algorithm::kKnnImpute:
      return std::make_unique<KnnImputer>();
  }
  return nullptr;
}

}  // namespace adarts::impute
