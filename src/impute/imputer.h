#ifndef ADARTS_IMPUTE_IMPUTER_H_
#define ADARTS_IMPUTE_IMPUTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace adarts::impute {

/// The imputation-algorithm pool recommended over by A-DARTS. Mirrors the
/// matrix/pattern-based family covered by ImputeBench (Fig. 3 of the paper);
/// deep-learning imputers are substituted out as documented in DESIGN.md.
enum class Algorithm {
  kCdRec = 0,     ///< centroid-decomposition recovery
  kSvdImpute,     ///< iterative rank-k SVD completion (Troyanskaya)
  kSoftImpute,    ///< soft-thresholded SVD (Mazumder et al.)
  kSvt,           ///< singular value thresholding (Cai et al.)
  kGrouse,        ///< Grassmannian rank-one subspace tracking
  kDynaMmo,       ///< linear-dynamics smoothing (Li et al. style)
  kTrmf,          ///< temporal regularized matrix factorization
  kTeNmf,         ///< nonnegative matrix factorization recovery
  kRosl,          ///< robust orthonormal subspace learning
  kStMvl,         ///< spatio-temporal multi-view blending
  kTkcm,          ///< pattern-matching continuation (TKCM)
  kIim,           ///< regression-based individual imputation
  kMeanImpute,    ///< observed-mean baseline
  kLinearInterp,  ///< linear interpolation baseline
  kKnnImpute,     ///< correlated-neighbour average baseline
};

/// Number of algorithms in the enum (contiguous from 0).
inline constexpr int kNumAlgorithms = 15;

/// Short identifier, e.g. "cdrec".
std::string_view AlgorithmToString(Algorithm a);

/// Parses an identifier; fails on unknown names.
Result<Algorithm> AlgorithmFromString(std::string_view name);

/// All algorithms, enum order.
std::vector<Algorithm> AllAlgorithms();

/// Interface shared by every imputation algorithm.
///
/// Imputers operate on a *set* of equal-length series (the columns of an
/// ImputeBench-style matrix): cross-series algorithms exploit correlation
/// across the set, univariate ones process each series independently.
/// Returned series have all positions observed.
class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Algorithm identifier matching AlgorithmToString.
  virtual std::string_view name() const = 0;

  /// Repairs every missing position in every series of the set.
  /// All series must have the same non-zero length and at least one
  /// observed value each.
  virtual Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const = 0;

  /// Convenience wrapper for a single series.
  Result<ts::TimeSeries> Impute(const ts::TimeSeries& series) const;
};

/// Instantiates the implementation of `algorithm` with its ImputeBench-style
/// default parameterisation.
std::unique_ptr<Imputer> CreateImputer(Algorithm algorithm);

}  // namespace adarts::impute

#endif  // ADARTS_IMPUTE_IMPUTER_H_
