#ifndef ADARTS_IMPUTE_IMPUTER_H_
#define ADARTS_IMPUTE_IMPUTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace adarts::impute {

/// The imputation-algorithm pool recommended over by A-DARTS. Mirrors the
/// matrix/pattern-based family covered by ImputeBench (Fig. 3 of the paper);
/// deep-learning imputers are substituted out as documented in DESIGN.md.
enum class Algorithm {
  kCdRec = 0,     ///< centroid-decomposition recovery
  kSvdImpute,     ///< iterative rank-k SVD completion (Troyanskaya)
  kSoftImpute,    ///< soft-thresholded SVD (Mazumder et al.)
  kSvt,           ///< singular value thresholding (Cai et al.)
  kGrouse,        ///< Grassmannian rank-one subspace tracking
  kDynaMmo,       ///< linear-dynamics smoothing (Li et al. style)
  kTrmf,          ///< temporal regularized matrix factorization
  kTeNmf,         ///< nonnegative matrix factorization recovery
  kRosl,          ///< robust orthonormal subspace learning
  kStMvl,         ///< spatio-temporal multi-view blending
  kTkcm,          ///< pattern-matching continuation (TKCM)
  kIim,           ///< regression-based individual imputation
  kMeanImpute,    ///< observed-mean baseline
  kLinearInterp,  ///< linear interpolation baseline
  kKnnImpute,     ///< correlated-neighbour average baseline
};

/// Number of algorithms in the enum (contiguous from 0).
inline constexpr int kNumAlgorithms = 15;

/// Short identifier, e.g. "cdrec".
std::string_view AlgorithmToString(Algorithm a);

/// Parses an identifier; fails on unknown names.
Result<Algorithm> AlgorithmFromString(std::string_view name);

/// All algorithms, enum order.
std::vector<Algorithm> AllAlgorithms();

/// Convergence report of one imputer fit. Iterative completers (CDRec, the
/// SVD family, TRMF/TeNMF, DynaMMo, GROUSE) fill it instead of silently
/// returning best-effort output: `converged == false` means the iteration
/// hit its cap while the reconstruction was still moving by more than the
/// tolerance. One-shot imputers (mean, interpolation, kNN, pattern-based)
/// report the defaults.
struct FitDiagnostics {
  bool converged = true;
  int iterations = 0;       ///< iterations (or passes) actually run
  double final_change = 0.0;  ///< last relative change of the reconstruction
};

/// Interface shared by every imputation algorithm.
///
/// Imputers operate on a *set* of equal-length series (the columns of an
/// ImputeBench-style matrix): cross-series algorithms exploit correlation
/// across the set, univariate ones process each series independently.
/// Returned series have all positions observed.
class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Algorithm identifier matching AlgorithmToString.
  virtual std::string_view name() const = 0;

  /// Repairs every missing position in every series of the set.
  /// All series must have the same non-zero length, at least one observed
  /// value each, and only finite observed values.
  virtual Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const = 0;

  /// ImputeSet plus a convergence report. The base implementation delegates
  /// to ImputeSet and reports the one-shot defaults; iterative imputers
  /// override it (and route their plain ImputeSet through it), so callers
  /// that care — Adarts::Repair's degradation ladder, benches — always see
  /// honest diagnostics. `diagnostics` may be nullptr.
  virtual Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const {
    if (diagnostics != nullptr) *diagnostics = FitDiagnostics{};
    return ImputeSet(set);
  }

  /// Convenience wrapper for a single series.
  Result<ts::TimeSeries> Impute(const ts::TimeSeries& series) const;
};

/// Instantiates the implementation of `algorithm` with its ImputeBench-style
/// default parameterisation.
std::unique_ptr<Imputer> CreateImputer(Algorithm algorithm);

}  // namespace adarts::impute

#endif  // ADARTS_IMPUTE_IMPUTER_H_
