#include "impute/masked_matrix.h"

#include <cmath>

#include "features/feature_extractor.h"

namespace adarts::impute {

Result<MaskedMatrix> BuildMaskedMatrix(
    const std::vector<ts::TimeSeries>& set) {
  if (set.empty()) return Status::InvalidArgument("empty series set");
  const std::size_t n = set[0].length();
  if (n == 0) return Status::InvalidArgument("zero-length series");
  for (std::size_t j = 0; j < set.size(); ++j) {
    const auto& s = set[j];
    if (s.length() != n) {
      return Status::InvalidArgument("series lengths differ within set");
    }
    if (s.MissingCount() == s.length()) {
      return Status::InvalidArgument("series " + std::to_string(j) +
                                     " has no observed values");
    }
    // NaN/Inf in observed positions would silently poison every iterative
    // completer; reject at the boundary instead (DESIGN.md §7).
    ADARTS_RETURN_NOT_OK(s.ValidateObservedFinite());
  }

  MaskedMatrix m;
  m.values = la::Matrix(n, set.size());
  m.missing.assign(n, std::vector<bool>(set.size(), false));
  for (std::size_t j = 0; j < set.size(); ++j) {
    const la::Vector filled = features::InterpolateMissing(set[j]);
    for (std::size_t t = 0; t < n; ++t) {
      m.values(t, j) = filled[t];
      m.missing[t][j] = set[j].IsMissing(t);
    }
  }
  return m;
}

std::vector<ts::TimeSeries> MatrixToSeries(
    const MaskedMatrix& matrix, const std::vector<ts::TimeSeries>& original) {
  std::vector<ts::TimeSeries> out;
  out.reserve(original.size());
  for (std::size_t j = 0; j < original.size(); ++j) {
    la::Vector vals(original[j].length());
    for (std::size_t t = 0; t < original[j].length(); ++t) {
      vals[t] = original[j].IsMissing(t) ? matrix.values(t, j)
                                         : original[j].value(t);
    }
    ts::TimeSeries s(std::move(vals));
    s.set_name(original[j].name());
    out.push_back(std::move(s));
  }
  return out;
}

void RestoreObserved(const MaskedMatrix& reference, la::Matrix* work) {
  for (std::size_t t = 0; t < reference.rows(); ++t) {
    for (std::size_t j = 0; j < reference.cols(); ++j) {
      if (!reference.missing[t][j]) {
        (*work)(t, j) = reference.values(t, j);
      }
    }
  }
}

double RelativeChange(const la::Matrix& a, const la::Matrix& b) {
  return a.Subtract(b).FrobeniusNorm() / (b.FrobeniusNorm() + 1e-12);
}

}  // namespace adarts::impute
