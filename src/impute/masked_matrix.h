#ifndef ADARTS_IMPUTE_MASKED_MATRIX_H_
#define ADARTS_IMPUTE_MASKED_MATRIX_H_

#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "ts/time_series.h"

namespace adarts::impute {

/// Column-per-series matrix view of a time-series set with a missing mask:
/// entry (t, j) is series j at time t. The working layout shared by the
/// matrix-completion imputers.
struct MaskedMatrix {
  la::Matrix values;                      ///< time x series
  std::vector<std::vector<bool>> missing; ///< missing[t][j]

  std::size_t rows() const { return values.rows(); }
  std::size_t cols() const { return values.cols(); }
  bool IsMissing(std::size_t t, std::size_t j) const { return missing[t][j]; }
};

/// Builds the masked matrix from a set of equal-length series; missing
/// positions are pre-filled by per-series linear interpolation so iterative
/// algorithms start from a sensible state.
Result<MaskedMatrix> BuildMaskedMatrix(const std::vector<ts::TimeSeries>& set);

/// Writes the (now complete) matrix back into copies of the original series,
/// replacing only the masked positions and clearing the mask.
std::vector<ts::TimeSeries> MatrixToSeries(
    const MaskedMatrix& matrix, const std::vector<ts::TimeSeries>& original);

/// Restores observed entries of `work` from `reference` (projection onto the
/// observed set, P_Omega), leaving missing entries untouched.
void RestoreObserved(const MaskedMatrix& reference, la::Matrix* work);

/// Relative change ||a - b||_F / (||b||_F + eps) used as the convergence
/// criterion of the iterative completers.
double RelativeChange(const la::Matrix& a, const la::Matrix& b);

}  // namespace adarts::impute

#endif  // ADARTS_IMPUTE_MASKED_MATRIX_H_
