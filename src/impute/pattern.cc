#include "impute/pattern.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "impute/masked_matrix.h"
#include "la/decompositions.h"

namespace adarts::impute {

namespace {

/// Temporal view: inverse-square-distance weighting of observed values of
/// the same series inside a window around t.
double TemporalIdw(const MaskedMatrix& m, std::size_t t, std::size_t j,
                   std::size_t window) {
  double num = 0.0, den = 0.0;
  const std::ptrdiff_t lo =
      std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(t) -
                                      static_cast<std::ptrdiff_t>(window));
  const std::size_t hi = std::min(m.rows() - 1, t + window);
  for (std::size_t s = static_cast<std::size_t>(lo); s <= hi; ++s) {
    if (s == t || m.missing[s][j]) continue;
    const double d = static_cast<double>(s > t ? s - t : t - s);
    const double w = 1.0 / (d * d);
    num += w * m.values(s, j);
    den += w;
  }
  return den > 0.0 ? num / den : m.values(t, j);
}

/// Spatial view: correlation-weighted average of the other series at t,
/// mapped into the target series' scale via z-normalisation.
double SpatialView(const MaskedMatrix& m, const la::Matrix& corr,
                   const la::Vector& means, const la::Vector& sds,
                   std::size_t t, std::size_t j) {
  double num = 0.0, den = 0.0;
  for (std::size_t b = 0; b < m.cols(); ++b) {
    if (b == j || m.missing[t][b]) continue;
    const double c = corr(j, b);
    const double w = std::fabs(c);
    if (w < 0.05) continue;
    const double z = (m.values(t, b) - means[b]) / sds[b];
    const double mapped = means[j] + std::copysign(1.0, c) * z * sds[j];
    num += w * mapped;
    den += w;
  }
  return den > 0.0 ? num / den : m.values(t, j);
}

/// SES view: exponential smoothing over the past observed values.
double SesView(const MaskedMatrix& m, std::size_t t, std::size_t j,
               double alpha) {
  double level = m.values(0, j);
  bool seen = false;
  for (std::size_t s = 0; s < t; ++s) {
    if (m.missing[s][j]) continue;
    if (!seen) {
      level = m.values(s, j);
      seen = true;
    } else {
      level = alpha * m.values(s, j) + (1.0 - alpha) * level;
    }
  }
  return level;
}

}  // namespace

Result<std::vector<ts::TimeSeries>> StMvlImputer::ImputeSet(
    const std::vector<ts::TimeSeries>& set) const {
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  const std::size_t n = m.cols();
  const std::size_t t_len = m.rows();

  la::Matrix corr(n, n);
  la::Vector means(n), sds(n);
  for (std::size_t j = 0; j < n; ++j) {
    const la::Vector col = m.values.Col(j);
    means[j] = la::Mean(col);
    sds[j] = std::max(la::StdDev(col), 1e-9);
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double c = la::PearsonCorrelation(m.values.Col(a), m.values.Col(b));
      corr(a, b) = c;
      corr(b, a) = c;
    }
  }

  // Collaborative weights: regress observed values on the three views using
  // a sample of observed points (every 3rd observed cell).
  la::Vector weights = {0.4, 0.4, 0.2};
  {
    std::vector<la::Vector> rows;
    la::Vector targets;
    std::size_t counter = 0;
    for (std::size_t t = 0; t < t_len && rows.size() < 400; ++t) {
      for (std::size_t j = 0; j < n && rows.size() < 400; ++j) {
        if (m.missing[t][j]) continue;
        if (++counter % 3 != 0) continue;
        rows.push_back({TemporalIdw(m, t, j, temporal_window_),
                        SpatialView(m, corr, means, sds, t, j),
                        SesView(m, t, j, ses_alpha_)});
        targets.push_back(m.values(t, j));
      }
    }
    if (rows.size() >= 12) {
      const la::Matrix a = la::Matrix::FromRows(rows);
      auto coef = la::SolveLeastSquares(a, targets, 0.5);
      if (coef.ok()) {
        // Guard against degenerate fits: require nonnegative-ish weights.
        double s = 0.0;
        bool sane = true;
        for (double w : *coef) {
          if (w < -0.2) sane = false;
          s += std::max(w, 0.0);
        }
        if (sane && s > 0.2) {
          weights = *coef;
          for (double& w : weights) w = std::max(w, 0.0) / s;
        }
      }
    }
  }

  la::Matrix result = m.values;
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!m.missing[t][j]) continue;
      const double views[3] = {TemporalIdw(m, t, j, temporal_window_),
                               SpatialView(m, corr, means, sds, t, j),
                               SesView(m, t, j, ses_alpha_)};
      result(t, j) =
          weights[0] * views[0] + weights[1] * views[1] + weights[2] * views[2];
    }
  }

  MaskedMatrix repaired = m;
  repaired.values = std::move(result);
  return MatrixToSeries(repaired, set);
}

Result<std::vector<ts::TimeSeries>> TkcmImputer::ImputeSet(
    const std::vector<ts::TimeSeries>& set) const {
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  la::Matrix result = m.values;

  for (std::size_t j = 0; j < m.cols(); ++j) {
    // Identify contiguous missing blocks of this series.
    std::size_t t = 0;
    while (t < m.rows()) {
      if (!m.missing[t][j]) {
        ++t;
        continue;
      }
      std::size_t end = t;
      while (end < m.rows() && m.missing[end][j]) ++end;
      const std::size_t block_len = end - t;

      // The query pattern is the window immediately preceding the block.
      const std::size_t p = std::min(pattern_length_, t);
      bool repaired_block = false;
      if (p >= 2) {
        // Scan the fully observed history for the best-matching window whose
        // continuation (block_len values) is also observed.
        double best_dist = std::numeric_limits<double>::infinity();
        std::size_t best_pos = 0;
        for (std::size_t s = p; s + block_len <= m.rows(); ++s) {
          if (s + block_len > t && s < end + p) continue;  // overlaps block
          bool usable = true;
          for (std::size_t i = s - p; i < s + block_len && usable; ++i) {
            usable = !m.missing[i][j];
          }
          if (!usable) continue;
          double dist = 0.0;
          for (std::size_t i = 0; i < p; ++i) {
            const double d = m.values(t - p + i, j) - m.values(s - p + i, j);
            dist += d * d;
          }
          if (dist < best_dist) {
            best_dist = dist;
            best_pos = s;
          }
        }
        if (best_dist < std::numeric_limits<double>::infinity()) {
          // Copy the continuation, anchored so it joins the last observed
          // value without a jump.
          const double anchor =
              t > 0 ? m.values(t - 1, j) - m.values(best_pos - 1, j) : 0.0;
          for (std::size_t i = 0; i < block_len; ++i) {
            result(t + i, j) = m.values(best_pos + i, j) + anchor;
          }
          repaired_block = true;
        }
      }
      if (!repaired_block) {
        // Fallback: keep the interpolation pre-fill.
      }
      t = end;
    }
  }

  MaskedMatrix repaired = m;
  repaired.values = std::move(result);
  return MatrixToSeries(repaired, set);
}

Result<std::vector<ts::TimeSeries>> IimImputer::ImputeSet(
    const std::vector<ts::TimeSeries>& set) const {
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  const std::size_t n = m.cols();
  if (n < 2) {
    return MatrixToSeries(m, set);  // interpolation pre-fill
  }
  la::Matrix result = m.values;

  for (std::size_t j = 0; j < n; ++j) {
    // Training rows: timesteps where series j is observed. Regressors are
    // the other series (pre-filled values) plus an intercept.
    std::vector<la::Vector> rows;
    la::Vector targets;
    for (std::size_t t = 0; t < m.rows(); ++t) {
      if (m.missing[t][j]) continue;
      la::Vector row;
      row.reserve(n);
      row.push_back(1.0);
      for (std::size_t b = 0; b < n; ++b) {
        if (b != j) row.push_back(m.values(t, b));
      }
      rows.push_back(std::move(row));
      targets.push_back(m.values(t, j));
    }
    if (rows.size() < n + 2) continue;  // not enough data; keep pre-fill

    const la::Matrix a = la::Matrix::FromRows(rows);
    auto coef = la::SolveLeastSquares(a, targets, ridge_);
    if (!coef.ok()) continue;

    for (std::size_t t = 0; t < m.rows(); ++t) {
      if (!m.missing[t][j]) continue;
      double pred = (*coef)[0];
      std::size_t idx = 1;
      for (std::size_t b = 0; b < n; ++b) {
        if (b != j) pred += (*coef)[idx++] * m.values(t, b);
      }
      result(t, j) = pred;
    }
  }

  MaskedMatrix repaired = m;
  repaired.values = std::move(result);
  return MatrixToSeries(repaired, set);
}

}  // namespace adarts::impute
