#ifndef ADARTS_IMPUTE_PATTERN_H_
#define ADARTS_IMPUTE_PATTERN_H_

#include <cstddef>

#include "impute/imputer.h"

namespace adarts::impute {

/// ST-MVL (Yi et al. 2016): blends four views — temporal inverse-distance
/// weighting, cross-series (spatial) correlation weighting, simple
/// exponential smoothing, and a collaborative weighting of the three learned
/// by ridge regression on observed points.
class StMvlImputer final : public Imputer {
 public:
  explicit StMvlImputer(std::size_t temporal_window = 8, double ses_alpha = 0.4)
      : temporal_window_(temporal_window), ses_alpha_(ses_alpha) {}
  std::string_view name() const override { return "stmvl"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override;

 private:
  std::size_t temporal_window_;
  double ses_alpha_;
};

/// TKCM (Wellenzohn et al. 2017): repairs each missing block by locating the
/// historical window whose preceding pattern best matches the pattern just
/// before the block, then copying that window's continuation.
class TkcmImputer final : public Imputer {
 public:
  explicit TkcmImputer(std::size_t pattern_length = 8)
      : pattern_length_(pattern_length) {}
  std::string_view name() const override { return "tkcm"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override;

 private:
  std::size_t pattern_length_;
};

/// IIM (Zhang et al. 2019) in per-series form: learns a ridge regression of
/// each series on the other series of the set from fully observed rows and
/// predicts the missing entries; degenerates to interpolation for singleton
/// sets.
class IimImputer final : public Imputer {
 public:
  explicit IimImputer(double ridge = 0.1) : ridge_(ridge) {}
  std::string_view name() const override { return "iim"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override;

 private:
  double ridge_;
};

}  // namespace adarts::impute

#endif  // ADARTS_IMPUTE_PATTERN_H_
