#include "impute/simple.h"

#include <algorithm>
#include <cmath>

#include "features/feature_extractor.h"
#include "impute/masked_matrix.h"

namespace adarts::impute {

Result<std::vector<ts::TimeSeries>> MeanImputer::ImputeSet(
    const std::vector<ts::TimeSeries>& set) const {
  // Validate via the shared builder, then overwrite with per-series means.
  ADARTS_RETURN_NOT_OK(BuildMaskedMatrix(set).status());
  std::vector<ts::TimeSeries> out;
  out.reserve(set.size());
  for (const auto& s : set) {
    const double mean = s.ObservedMean();
    la::Vector vals(s.length());
    for (std::size_t t = 0; t < s.length(); ++t) {
      vals[t] = s.IsMissing(t) ? mean : s.value(t);
    }
    ts::TimeSeries repaired(std::move(vals));
    repaired.set_name(s.name());
    out.push_back(std::move(repaired));
  }
  return out;
}

Result<std::vector<ts::TimeSeries>> LinearInterpImputer::ImputeSet(
    const std::vector<ts::TimeSeries>& set) const {
  ADARTS_RETURN_NOT_OK(BuildMaskedMatrix(set).status());
  std::vector<ts::TimeSeries> out;
  out.reserve(set.size());
  for (const auto& s : set) {
    ts::TimeSeries repaired(features::InterpolateMissing(s));
    repaired.set_name(s.name());
    out.push_back(std::move(repaired));
  }
  return out;
}

Result<std::vector<ts::TimeSeries>> KnnImputer::ImputeSet(
    const std::vector<ts::TimeSeries>& set) const {
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  const std::size_t n_series = set.size();
  const std::size_t n_time = m.rows();

  // Pairwise correlations from the interpolated fill.
  la::Matrix corr(n_series, n_series);
  for (std::size_t a = 0; a < n_series; ++a) {
    for (std::size_t b = a + 1; b < n_series; ++b) {
      const double c = la::PearsonCorrelation(m.values.Col(a), m.values.Col(b));
      corr(a, b) = c;
      corr(b, a) = c;
    }
  }

  la::Matrix result = m.values;
  for (std::size_t j = 0; j < n_series; ++j) {
    // Neighbours sorted by |correlation| descending.
    std::vector<std::size_t> order;
    for (std::size_t b = 0; b < n_series; ++b) {
      if (b != j) order.push_back(b);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return std::fabs(corr(j, x)) > std::fabs(corr(j, y));
    });
    if (order.size() > k_) order.resize(k_);

    for (std::size_t t = 0; t < n_time; ++t) {
      if (!m.IsMissing(t, j)) continue;
      double num = 0.0;
      double den = 0.0;
      for (std::size_t b : order) {
        if (m.IsMissing(t, b)) continue;
        const double w = std::fabs(corr(j, b));
        if (w < 1e-6) continue;
        // Align neighbour values to this series' scale via z-mapping.
        const double zb = m.values(t, b);
        num += w * zb;
        den += w;
      }
      if (den > 0.0) {
        // Map from neighbour scale to target scale using observed moments.
        result(t, j) = num / den;
      }
      // else: keep the interpolation pre-fill.
    }
  }

  // Rescale: kNN mixes scales across series, so re-standardise each imputed
  // column segmentwise to the target series' observed moments.
  for (std::size_t j = 0; j < n_series; ++j) {
    const double target_mean = set[j].ObservedMean();
    double target_sd = set[j].ObservedStdDev();
    if (target_sd <= 0.0) target_sd = 1.0;
    la::Vector imputed_vals;
    for (std::size_t t = 0; t < n_time; ++t) {
      if (m.IsMissing(t, j)) imputed_vals.push_back(result(t, j));
    }
    if (imputed_vals.size() < 2) continue;
    const double im = la::Mean(imputed_vals);
    const double isd = la::StdDev(imputed_vals);
    if (isd <= 1e-9) continue;
    // Only re-centre when scales are wildly off; a gentle blend avoids
    // destroying locally-correct neighbours.
    if (std::fabs(im - target_mean) > 2.0 * target_sd) {
      for (std::size_t t = 0; t < n_time; ++t) {
        if (m.IsMissing(t, j)) {
          result(t, j) = target_mean + (result(t, j) - im) / isd * target_sd;
        }
      }
    }
  }

  MaskedMatrix repaired = m;
  repaired.values = std::move(result);
  return MatrixToSeries(repaired, set);
}

}  // namespace adarts::impute
