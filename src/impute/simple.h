#ifndef ADARTS_IMPUTE_SIMPLE_H_
#define ADARTS_IMPUTE_SIMPLE_H_

#include <cstddef>

#include "impute/imputer.h"

namespace adarts::impute {

/// Replaces missing values with the per-series observed mean.
class MeanImputer final : public Imputer {
 public:
  std::string_view name() const override { return "mean"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override;
};

/// Linear interpolation between the nearest observed neighbours.
class LinearInterpImputer final : public Imputer {
 public:
  std::string_view name() const override { return "linear_interp"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override;
};

/// For each missing point, averages the k most-correlated other series at
/// that timestamp (weighted by |correlation|); falls back to interpolation
/// when no correlated neighbour is observed there.
class KnnImputer final : public Imputer {
 public:
  explicit KnnImputer(std::size_t k = 3) : k_(k) {}
  std::string_view name() const override { return "knn_impute"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override;

 private:
  std::size_t k_;
};

}  // namespace adarts::impute

#endif  // ADARTS_IMPUTE_SIMPLE_H_
