#include "impute/subspace.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "impute/masked_matrix.h"
#include "la/decompositions.h"
#include "la/pca.h"

namespace adarts::impute {

namespace {

/// Orthonormalises the columns of `u` in place via modified Gram-Schmidt.
void Orthonormalize(la::Matrix* u) {
  for (std::size_t j = 0; j < u->cols(); ++j) {
    for (std::size_t prev = 0; prev < j; ++prev) {
      double dot = 0.0;
      for (std::size_t i = 0; i < u->rows(); ++i) {
        dot += (*u)(i, j) * (*u)(i, prev);
      }
      for (std::size_t i = 0; i < u->rows(); ++i) {
        (*u)(i, j) -= dot * (*u)(i, prev);
      }
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < u->rows(); ++i) {
      norm += (*u)(i, j) * (*u)(i, j);
    }
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (std::size_t i = 0; i < u->rows(); ++i) (*u)(i, j) /= norm;
    }
  }
}

}  // namespace

Result<std::vector<ts::TimeSeries>> GrouseImputer::ImputeSetWithDiagnostics(
    const std::vector<ts::TimeSeries>& set, FitDiagnostics* diagnostics) const {
  ADARTS_FAILPOINT("impute.grouse.fit");
  if (diagnostics != nullptr) *diagnostics = FitDiagnostics{};
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  const std::size_t n = m.cols();  // ambient dimension = number of series
  const std::size_t t_len = m.rows();

  if (n < 2) {
    // No cross-section to track: the interpolation pre-fill is the output.
    return MatrixToSeries(m, set);
  }
  // GROUSE runs a fixed number of decaying-step passes rather than
  // iterating to a tolerance; it reports the pass count and counts as
  // converged by construction.
  if (diagnostics != nullptr) diagnostics->iterations = passes_;
  const std::size_t k = std::min<std::size_t>(std::max<std::size_t>(rank_, 1),
                                              n);

  // Initialise U from the SVD of the pre-filled matrix (columns of V span
  // the cross-section space).
  la::Matrix u(n, k);
  {
    auto svd = la::ComputeSvd(m.values);
    if (svd.ok()) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < k && j < svd->v.cols(); ++j) {
          u(i, j) = svd->v(i, j);
        }
      }
    } else {
      for (std::size_t j = 0; j < k; ++j) u(j, j) = 1.0;
    }
  }
  Orthonormalize(&u);

  la::Matrix result = m.values;
  for (int pass = 0; pass < passes_; ++pass) {
    // Step size decays per pass for convergence.
    const double eta = step_ / static_cast<double>(pass + 1);
    for (std::size_t t = 0; t < t_len; ++t) {
      // Observed coordinates of the cross-section x_t.
      std::vector<std::size_t> obs;
      for (std::size_t j = 0; j < n; ++j) {
        if (!m.missing[t][j]) obs.push_back(j);
      }
      if (obs.empty()) continue;

      // w = argmin ||U_Omega w - x_Omega||.
      la::Matrix u_obs(obs.size(), k);
      la::Vector x_obs(obs.size());
      for (std::size_t r = 0; r < obs.size(); ++r) {
        for (std::size_t c = 0; c < k; ++c) u_obs(r, c) = u(obs[r], c);
        x_obs[r] = m.values(t, obs[r]);
      }
      auto w_res = la::SolveLeastSquares(u_obs, x_obs, 1e-8);
      if (!w_res.ok()) continue;
      const la::Vector& w = *w_res;

      // Full-space prediction p = U w; residual r on observed coordinates.
      la::Vector p = u.MultiplyVec(w);
      la::Vector r_full(n, 0.0);
      for (std::size_t idx = 0; idx < obs.size(); ++idx) {
        r_full[obs[idx]] = x_obs[idx] - p[obs[idx]];
      }

      // Impute the missing coordinates from the subspace prediction.
      for (std::size_t j = 0; j < n; ++j) {
        if (m.missing[t][j]) result(t, j) = p[j];
      }

      // Grassmannian gradient step: U += eta * r w^T / (||r|| ||w|| + eps)
      // followed by re-orthonormalisation (first-order approximation of the
      // geodesic update).
      const double rnorm = la::Norm2(r_full);
      const double wnorm = la::Norm2(w);
      if (rnorm > 1e-12 && wnorm > 1e-12) {
        const double scale = eta / (rnorm * wnorm + 1e-12) * rnorm;
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t c = 0; c < k; ++c) {
            u(i, c) += scale * r_full[i] * (w[c] / wnorm);
          }
        }
        Orthonormalize(&u);
      }
    }
  }

  MaskedMatrix repaired = m;
  repaired.values = std::move(result);
  RestoreObserved(m, &repaired.values);
  return MatrixToSeries(repaired, set);
}

Result<std::vector<ts::TimeSeries>> DynaMmoImputer::ImputeSetWithDiagnostics(
    const std::vector<ts::TimeSeries>& set, FitDiagnostics* diagnostics) const {
  ADARTS_FAILPOINT("impute.dynammo.fit");
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  la::Matrix x = m.values;
  const std::size_t t_len = m.rows();
  const std::size_t n = m.cols();
  const std::size_t k =
      std::min<std::size_t>(std::max<std::size_t>(latent_dim_, 1),
                            std::min(t_len > 1 ? t_len - 1 : 1, n));

  FitDiagnostics diag;
  diag.converged = false;
  for (int it = 0; it < max_iters_; ++it) {
    // E-step surrogate: latent trajectory via PCA of the current fill.
    la::Pca pca;
    ADARTS_RETURN_NOT_OK(pca.Fit(x, k));
    ADARTS_ASSIGN_OR_RETURN(la::Matrix z, pca.Transform(x));

    // Fit the VAR(1) transition z_{t+1} ~ A z_t by least squares.
    la::Matrix a(k, k);
    if (t_len > k + 1) {
      la::Matrix z_past(t_len - 1, k);
      for (std::size_t t = 0; t + 1 < t_len; ++t) {
        for (std::size_t c = 0; c < k; ++c) z_past(t, c) = z(t, c);
      }
      for (std::size_t c = 0; c < k; ++c) {
        la::Vector target(t_len - 1);
        for (std::size_t t = 0; t + 1 < t_len; ++t) target[t] = z(t + 1, c);
        auto coef = la::SolveLeastSquares(z_past, target, 1e-6);
        if (coef.ok()) {
          for (std::size_t c2 = 0; c2 < k; ++c2) a(c, c2) = (*coef)[c2];
        }
      }
    } else {
      a = la::Matrix::Identity(k);
    }

    // Smooth the latent states: blend each z_t with its one-step forward
    // prediction A z_{t-1} and backward consistency (pseudo-smoothing).
    la::Matrix z_smooth = z;
    for (std::size_t t = 1; t < t_len; ++t) {
      const la::Vector pred = a.MultiplyVec(z.Row(t - 1));
      // Heavier smoothing at timesteps with many missing coordinates.
      std::size_t miss = 0;
      for (std::size_t j = 0; j < n; ++j) miss += m.missing[t][j] ? 1 : 0;
      const double alpha =
          0.5 * static_cast<double>(miss) / static_cast<double>(n);
      for (std::size_t c = 0; c < k; ++c) {
        z_smooth(t, c) = (1.0 - alpha) * z(t, c) + alpha * pred[c];
      }
    }

    // M-step surrogate: reconstruct from the smoothed latent trajectory.
    // x_hat = z_smooth * components^T + mean (inverse PCA).
    la::Matrix recon = z_smooth.Multiply(pca.components().Transpose());
    // Add back the PCA mean, which Transform subtracted.
    la::Vector mean(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t t = 0; t < t_len; ++t) s += x(t, j);
      mean[j] = s / static_cast<double>(t_len);
    }
    for (std::size_t t = 0; t < t_len; ++t) {
      for (std::size_t j = 0; j < n; ++j) recon(t, j) += mean[j];
    }

    RestoreObserved(m, &recon);
    const double change = RelativeChange(recon, x);
    x = std::move(recon);
    diag.iterations = it + 1;
    diag.final_change = change;
    if (change < tol_) {
      diag.converged = true;
      break;
    }
  }
  if (diagnostics != nullptr) *diagnostics = diag;

  MaskedMatrix repaired = m;
  repaired.values = std::move(x);
  return MatrixToSeries(repaired, set);
}

}  // namespace adarts::impute
