#ifndef ADARTS_IMPUTE_SUBSPACE_H_
#define ADARTS_IMPUTE_SUBSPACE_H_

#include <cstddef>

#include "impute/imputer.h"

namespace adarts::impute {

/// GROUSE (Balzano et al.): Grassmannian rank-one update subspace
/// estimation. Streams the cross-sections x_t in R^(num series), tracking a
/// rank-k subspace U from the observed coordinates and imputing the missing
/// ones as U w_t. Falls back to the interpolation pre-fill for sets with a
/// single series (no cross-section to track).
class GrouseImputer final : public Imputer {
 public:
  explicit GrouseImputer(std::size_t rank = 2, int passes = 4,
                         double step = 0.5)
      : rank_(rank), passes_(passes), step_(step) {}
  std::string_view name() const override { return "grouse"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override {
    return ImputeSetWithDiagnostics(set, nullptr);
  }
  Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const override;

 private:
  std::size_t rank_;
  int passes_;
  double step_;
};

/// DynaMMo-style linear-dynamics recovery (Li et al. 2009), simplified:
/// project to a k-dim latent trajectory (PCA), fit a VAR(1) transition, and
/// smooth the latent states forward/backward before reconstructing the
/// missing entries. Captures the co-evolution structure the original EM/LDS
/// formulation targets without the full Kalman machinery.
class DynaMmoImputer final : public Imputer {
 public:
  explicit DynaMmoImputer(std::size_t latent_dim = 3, int max_iters = 15,
                          double tol = 1e-5)
      : latent_dim_(latent_dim), max_iters_(max_iters), tol_(tol) {}
  std::string_view name() const override { return "dynammo"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override {
    return ImputeSetWithDiagnostics(set, nullptr);
  }
  Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const override;

 private:
  std::size_t latent_dim_;
  int max_iters_;
  double tol_;
};

}  // namespace adarts::impute

#endif  // ADARTS_IMPUTE_SUBSPACE_H_
