#include "impute/svd_family.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "impute/masked_matrix.h"
#include "la/decompositions.h"

namespace adarts::impute {

namespace {

/// Rank-k truncated reconstruction U_k S_k V_k^T.
Result<la::Matrix> TruncatedReconstruction(const la::Matrix& x,
                                           std::size_t rank) {
  ADARTS_ASSIGN_OR_RETURN(la::SvdResult svd, la::ComputeSvd(x));
  const std::size_t k =
      std::min<std::size_t>(rank, svd.singular_values.size());
  la::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < k; ++r) {
    const double s = svd.singular_values[r];
    if (s <= 0.0) break;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const double us = svd.u(i, r) * s;
      for (std::size_t j = 0; j < x.cols(); ++j) {
        out(i, j) += us * svd.v(j, r);
      }
    }
  }
  return out;
}

/// Soft-thresholded reconstruction: singular values shrunk by `threshold`.
Result<la::Matrix> SoftThresholdedReconstruction(const la::Matrix& x,
                                                 double threshold) {
  ADARTS_ASSIGN_OR_RETURN(la::SvdResult svd, la::ComputeSvd(x));
  la::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < svd.singular_values.size(); ++r) {
    const double s = std::max(svd.singular_values[r] - threshold, 0.0);
    if (s <= 0.0) break;  // singular values are sorted descending
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const double us = svd.u(i, r) * s;
      for (std::size_t j = 0; j < x.cols(); ++j) {
        out(i, j) += us * svd.v(j, r);
      }
    }
  }
  return out;
}

double TopSingularValue(const la::Matrix& x) {
  auto svd = la::ComputeSvd(x);
  if (!svd.ok() || svd->singular_values.empty()) return 1.0;
  return std::max(svd->singular_values[0], 1e-12);
}

}  // namespace

Result<std::vector<ts::TimeSeries>> SvdImputer::ImputeSetWithDiagnostics(
    const std::vector<ts::TimeSeries>& set, FitDiagnostics* diagnostics) const {
  ADARTS_FAILPOINT("impute.svd.fit");
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  la::Matrix x = m.values;
  const std::size_t rank =
      std::min<std::size_t>(rank_, std::min(x.rows(), x.cols()));
  FitDiagnostics diag;
  diag.converged = false;
  for (int it = 0; it < max_iters_; ++it) {
    ADARTS_ASSIGN_OR_RETURN(la::Matrix recon,
                            TruncatedReconstruction(x, rank));
    RestoreObserved(m, &recon);
    const double change = RelativeChange(recon, x);
    x = std::move(recon);
    diag.iterations = it + 1;
    diag.final_change = change;
    if (change < tol_) {
      diag.converged = true;
      break;
    }
  }
  if (diagnostics != nullptr) *diagnostics = diag;
  MaskedMatrix repaired = m;
  repaired.values = std::move(x);
  return MatrixToSeries(repaired, set);
}

Result<std::vector<ts::TimeSeries>> SoftImputer::ImputeSetWithDiagnostics(
    const std::vector<ts::TimeSeries>& set, FitDiagnostics* diagnostics) const {
  ADARTS_FAILPOINT("impute.soft.fit");
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  la::Matrix x = m.values;
  const double lambda = lambda_ratio_ * TopSingularValue(x);
  FitDiagnostics diag;
  diag.converged = false;
  for (int it = 0; it < max_iters_; ++it) {
    ADARTS_ASSIGN_OR_RETURN(la::Matrix recon,
                            SoftThresholdedReconstruction(x, lambda));
    RestoreObserved(m, &recon);
    const double change = RelativeChange(recon, x);
    x = std::move(recon);
    diag.iterations = it + 1;
    diag.final_change = change;
    if (change < tol_) {
      diag.converged = true;
      break;
    }
  }
  if (diagnostics != nullptr) *diagnostics = diag;
  MaskedMatrix repaired = m;
  repaired.values = std::move(x);
  return MatrixToSeries(repaired, set);
}

Result<std::vector<ts::TimeSeries>> SvtImputer::ImputeSetWithDiagnostics(
    const std::vector<ts::TimeSeries>& set, FitDiagnostics* diagnostics) const {
  ADARTS_FAILPOINT("impute.svt.fit");
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  const double tau = tau_ratio_ * TopSingularValue(m.values);

  // Y accumulates the dual variable; start from the observed projection.
  la::Matrix y = m.values;
  la::Matrix z = m.values;
  FitDiagnostics diag;
  diag.converged = false;
  for (int it = 0; it < max_iters_; ++it) {
    ADARTS_ASSIGN_OR_RETURN(la::Matrix znew,
                            SoftThresholdedReconstruction(y, tau));
    const double change = RelativeChange(znew, z);
    z = std::move(znew);
    // Gradient step on observed residuals only.
    for (std::size_t t = 0; t < m.rows(); ++t) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        if (!m.missing[t][j]) {
          y(t, j) += step_ * (m.values(t, j) - z(t, j));
        }
      }
    }
    diag.iterations = it + 1;
    diag.final_change = change;
    if (change < tol_) {
      diag.converged = true;
      break;
    }
  }
  if (diagnostics != nullptr) *diagnostics = diag;
  RestoreObserved(m, &z);
  MaskedMatrix repaired = m;
  repaired.values = std::move(z);
  return MatrixToSeries(repaired, set);
}

Result<std::vector<ts::TimeSeries>> RoslImputer::ImputeSetWithDiagnostics(
    const std::vector<ts::TimeSeries>& set, FitDiagnostics* diagnostics) const {
  ADARTS_FAILPOINT("impute.rosl.fit");
  ADARTS_ASSIGN_OR_RETURN(MaskedMatrix m, BuildMaskedMatrix(set));
  la::Matrix x = m.values;
  la::Matrix sparse(x.rows(), x.cols());
  const std::size_t rank =
      std::min<std::size_t>(rank_, std::min(x.rows(), x.cols()));
  // Sparse threshold relative to the observed scale.
  double scale = 0.0;
  for (std::size_t t = 0; t < m.rows(); ++t) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      scale = std::max(scale, std::fabs(m.values(t, j)));
    }
  }
  const double thr = sparsity_ * scale;

  la::Matrix lowrank = x;
  FitDiagnostics diag;
  diag.converged = false;
  for (int it = 0; it < max_iters_; ++it) {
    // Low-rank fit of the outlier-cleaned matrix.
    ADARTS_ASSIGN_OR_RETURN(la::Matrix fit,
                            TruncatedReconstruction(x.Subtract(sparse), rank));
    const double change = RelativeChange(fit, lowrank);
    lowrank = std::move(fit);
    diag.iterations = it + 1;
    diag.final_change = change;
    // Sparse component: soft-threshold the observed residuals.
    for (std::size_t t = 0; t < m.rows(); ++t) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        if (m.missing[t][j]) {
          sparse(t, j) = 0.0;
          x(t, j) = lowrank(t, j);  // refine the fill from the subspace
        } else {
          const double r = m.values(t, j) - lowrank(t, j);
          sparse(t, j) = std::copysign(std::max(std::fabs(r) - thr, 0.0), r);
        }
      }
    }
    if (change < tol_) {
      diag.converged = true;
      break;
    }
  }
  if (diagnostics != nullptr) *diagnostics = diag;
  MaskedMatrix repaired = m;
  repaired.values = std::move(lowrank);
  RestoreObserved(m, &repaired.values);
  return MatrixToSeries(repaired, set);
}

}  // namespace adarts::impute
