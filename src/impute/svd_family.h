#ifndef ADARTS_IMPUTE_SVD_FAMILY_H_
#define ADARTS_IMPUTE_SVD_FAMILY_H_

#include <cstddef>

#include "impute/imputer.h"

namespace adarts::impute {

/// Iterative rank-k SVD completion (SVDImpute, Troyanskaya et al. 2001):
/// alternate between a truncated SVD reconstruction and re-imposing the
/// observed entries until the missing entries stabilise.
class SvdImputer final : public Imputer {
 public:
  explicit SvdImputer(std::size_t rank = 3, int max_iters = 40,
                      double tol = 1e-5)
      : rank_(rank), max_iters_(max_iters), tol_(tol) {}
  std::string_view name() const override { return "svd_impute"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override {
    return ImputeSetWithDiagnostics(set, nullptr);
  }
  Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const override;

 private:
  std::size_t rank_;
  int max_iters_;
  double tol_;
};

/// SoftImpute (Mazumder et al. 2010): iterate X <- S_lambda(P_O(X) +
/// P_Oc(X_hat)) where S_lambda soft-thresholds the singular values.
class SoftImputer final : public Imputer {
 public:
  /// lambda_ratio scales the threshold relative to the top singular value.
  explicit SoftImputer(double lambda_ratio = 0.15, int max_iters = 60,
                       double tol = 1e-5)
      : lambda_ratio_(lambda_ratio), max_iters_(max_iters), tol_(tol) {}
  std::string_view name() const override { return "soft_impute"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override {
    return ImputeSetWithDiagnostics(set, nullptr);
  }
  Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const override;

 private:
  double lambda_ratio_;
  int max_iters_;
  double tol_;
};

/// Singular value thresholding (Cai, Candès, Shen 2010): gradient iteration
/// Y <- Y + delta * P_O(X - S_tau(Y)), returning S_tau(Y) at missing
/// entries.
class SvtImputer final : public Imputer {
 public:
  explicit SvtImputer(double tau_ratio = 0.2, double step = 1.2,
                      int max_iters = 80, double tol = 1e-5)
      : tau_ratio_(tau_ratio), step_(step), max_iters_(max_iters), tol_(tol) {}
  std::string_view name() const override { return "svt"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override {
    return ImputeSetWithDiagnostics(set, nullptr);
  }
  Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const override;

 private:
  double tau_ratio_;
  double step_;
  int max_iters_;
  double tol_;
};

/// Robust orthonormal subspace learning (Shu et al. 2014), simplified to the
/// missing-value setting: alternate a rank-k subspace fit with a sparse
/// outlier component E soft-thresholded on the observed entries, and impute
/// from the low-rank part.
class RoslImputer final : public Imputer {
 public:
  explicit RoslImputer(std::size_t rank = 3, double sparsity = 0.1,
                       int max_iters = 30, double tol = 1e-5)
      : rank_(rank), sparsity_(sparsity), max_iters_(max_iters), tol_(tol) {}
  std::string_view name() const override { return "rosl"; }
  Result<std::vector<ts::TimeSeries>> ImputeSet(
      const std::vector<ts::TimeSeries>& set) const override {
    return ImputeSetWithDiagnostics(set, nullptr);
  }
  Result<std::vector<ts::TimeSeries>> ImputeSetWithDiagnostics(
      const std::vector<ts::TimeSeries>& set,
      FitDiagnostics* diagnostics) const override;

 private:
  std::size_t rank_;
  double sparsity_;
  int max_iters_;
  double tol_;
};

}  // namespace adarts::impute

#endif  // ADARTS_IMPUTE_SVD_FAMILY_H_
