#include "io/csv.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace adarts::io {

namespace {

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) {
    cells.push_back(Trim(cell));
  }
  // A trailing comma means a final empty cell.
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

bool IsMissingCell(const std::string& cell) {
  if (cell.empty()) return true;
  std::string lower = cell;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower == "nan" || lower == "na" || lower == "null";
}

}  // namespace

Result<std::string> FormatSeriesCsv(const std::vector<ts::TimeSeries>& set) {
  if (set.empty()) return Status::InvalidArgument("empty series set");
  const std::size_t n = set[0].length();
  for (const auto& s : set) {
    if (s.length() != n) {
      return Status::InvalidArgument("series lengths differ");
    }
  }
  std::ostringstream out;
  out.precision(17);
  for (std::size_t j = 0; j < set.size(); ++j) {
    if (j > 0) out << ',';
    out << (set[j].name().empty() ? "series_" + std::to_string(j)
                                  : set[j].name());
  }
  out << '\n';
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t j = 0; j < set.size(); ++j) {
      if (j > 0) out << ',';
      if (!set[j].IsMissing(t)) out << set[j].value(t);
    }
    out << '\n';
  }
  return out.str();
}

Status WriteSeriesCsv(const std::string& path,
                      const std::vector<ts::TimeSeries>& set) {
  ADARTS_FAILPOINT("io.csv.write");
  ADARTS_ASSIGN_OR_RETURN(std::string content, FormatSeriesCsv(set));
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::NotFound("cannot open for writing: " + path);
  file << content;
  return file.good() ? Status::OK()
                     : Status::Internal("write failed: " + path);
}

Result<std::vector<ts::TimeSeries>> ParseSeriesCsv(const std::string& content) {
  std::istringstream stream(content);
  std::string line;
  if (!std::getline(stream, line)) {
    return Status::InvalidArgument("empty CSV");
  }
  const std::vector<std::string> names = SplitCsvLine(line);
  if (names.empty()) return Status::InvalidArgument("no columns in header");
  const std::size_t cols = names.size();

  std::vector<la::Vector> values(cols);
  std::vector<std::vector<bool>> missing(cols);
  std::size_t row = 1;
  while (std::getline(stream, line)) {
    ++row;
    if (Trim(line).empty()) {
      // For a single-column file a blank line IS a row with one missing
      // cell; for multi-column files it is ignorable padding.
      if (cols == 1) {
        values[0].push_back(0.0);
        missing[0].push_back(true);
      }
      continue;
    }
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != cols) {
      return Status::InvalidArgument(
          "row " + std::to_string(row) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(cols));
    }
    for (std::size_t j = 0; j < cols; ++j) {
      if (IsMissingCell(cells[j])) {
        values[j].push_back(0.0);
        missing[j].push_back(true);
        continue;
      }
      double v = 0.0;
      const auto [ptr, ec] = std::from_chars(
          cells[j].data(), cells[j].data() + cells[j].size(), v);
      if (ec != std::errc() || ptr != cells[j].data() + cells[j].size()) {
        return Status::InvalidArgument("bad numeric cell '" + cells[j] +
                                       "' at row " + std::to_string(row));
      }
      // from_chars accepts "inf"/"-inf" (and "nan" spellings IsMissingCell
      // does not catch, e.g. "nan(0)"); a non-finite observed value must
      // not enter the engine (DESIGN.md §7).
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("non-finite cell '" + cells[j] +
                                       "' at row " + std::to_string(row));
      }
      values[j].push_back(v);
      missing[j].push_back(false);
    }
  }
  if (values[0].empty()) return Status::InvalidArgument("CSV has no rows");

  std::vector<ts::TimeSeries> out;
  out.reserve(cols);
  for (std::size_t j = 0; j < cols; ++j) {
    ts::TimeSeries s(std::move(values[j]), std::move(missing[j]));
    s.set_name(names[j]);
    out.push_back(std::move(s));
  }
  return out;
}

Result<std::vector<ts::TimeSeries>> ReadSeriesCsv(const std::string& path) {
  ADARTS_FAILPOINT("io.csv.read");
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open: " + path);
  std::ostringstream content;
  content << file.rdbuf();
  return ParseSeriesCsv(content.str());
}

}  // namespace adarts::io
