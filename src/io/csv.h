#ifndef ADARTS_IO_CSV_H_
#define ADARTS_IO_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace adarts::io {

/// CSV layout for time-series sets: one column per series, one row per
/// timestep. The first row is a header of series names; empty cells (or
/// "nan", case-insensitive) are missing values. This is the interchange
/// format of the adarts_cli tool.
///
/// Example:
///   meter_a,meter_b
///   1.5,2.0
///   ,2.1        <- meter_a missing at t=1
///   1.7,nan     <- meter_b missing at t=2

/// Writes the set (all series must share one length). Missing positions are
/// written as empty cells.
Status WriteSeriesCsv(const std::string& path,
                      const std::vector<ts::TimeSeries>& set);

/// Reads a set written in the layout above. All columns must have the same
/// number of rows; fails on malformed numeric cells.
Result<std::vector<ts::TimeSeries>> ReadSeriesCsv(const std::string& path);

/// Parses CSV content from a string (the file-free core of ReadSeriesCsv,
/// exposed for testing).
Result<std::vector<ts::TimeSeries>> ParseSeriesCsv(const std::string& content);

/// Serialises the set to a CSV string (the file-free core of
/// WriteSeriesCsv).
Result<std::string> FormatSeriesCsv(const std::vector<ts::TimeSeries>& set);

}  // namespace adarts::io

#endif  // ADARTS_IO_CSV_H_
