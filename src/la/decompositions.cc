#include "la/decompositions.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/failpoint.h"

namespace adarts::la {

namespace {

constexpr double kJacobiEps = 1e-12;

}  // namespace

Result<SvdResult> ComputeSvd(const Matrix& a, int max_sweeps) {
  ADARTS_FAILPOINT("la.svd");
  if (a.empty()) return Status::InvalidArgument("SVD of empty matrix");
  // One-sided Jacobi works on a tall matrix; transpose wide inputs and swap
  // U/V at the end.
  const bool transposed = a.rows() < a.cols();
  Matrix work = transposed ? a.Transpose() : a;
  const std::size_t m = work.rows();
  const std::size_t n = work.cols();

  Matrix v = Matrix::Identity(n);

  // Columns whose squared norm falls below this absolute floor are
  // numerically zero (rounding dust after a rotation annihilated them);
  // pairing them again would chase the dust forever on rank-deficient
  // inputs, so they are excluded from further rotations.
  const double fro = work.FrobeniusNorm();
  const double tiny_column = (1e-14 * fro) * (1e-14 * fro);

  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Compute the 2x2 Gram block for columns p, q.
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = work(i, p);
          const double wq = work(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (alpha <= tiny_column || beta <= tiny_column ||
            std::fabs(gamma) <= kJacobiEps * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = work(i, p);
          const double wq = work(i, q);
          work(i, p) = c * wp - s * wq;
          work(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
  }
  if (!converged) {
    return Status::NumericalError("Jacobi SVD did not converge");
  }

  // Singular values are the column norms of the rotated matrix.
  Vector sigma(n, 0.0);
  Matrix u(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += work(i, j) * work(i, j);
    norm = std::sqrt(norm);
    sigma[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) u(i, j) = work(i, j) / norm;
    } else {
      // Zero singular value: leave a zero column (valid for thin SVD uses
      // in this library, which always multiply by sigma).
      for (std::size_t i = 0; i < m; ++i) u(i, j) = 0.0;
    }
  }

  // Sort singular triplets descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });
  SvdResult out;
  out.singular_values.resize(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.singular_values[j] = sigma[src];
    for (std::size_t i = 0; i < m; ++i) out.u(i, j) = u(i, src);
    for (std::size_t i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }

  if (transposed) std::swap(out.u, out.v);
  return out;
}

Result<EigenResult> ComputeSymmetricEigen(const Matrix& a, int max_sweeps) {
  if (a.empty() || a.rows() != a.cols()) {
    return Status::InvalidArgument("symmetric eigen requires square matrix");
  }
  const std::size_t n = a.rows();
  Matrix m = a;
  Matrix q = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    if (std::sqrt(off) < kJacobiEps * (1.0 + m.FrobeniusNorm())) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t qi = p + 1; qi < n; ++qi) {
        const double apq = m(p, qi);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(qi, qi);
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // Apply rotation on both sides: M <- J^T M J, Q <- Q J.
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, qi);
          m(k, p) = c * mkp - s * mkq;
          m(k, qi) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(qi, k);
          m(p, k) = c * mpk - s * mqk;
          m(qi, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = q(k, p);
          const double qkq = q(k, qi);
          q(k, p) = c * qkp - s * qkq;
          q(k, qi) = s * qkp + c * qkq;
        }
      }
    }
  }

  Vector w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = m(i, i);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return w[x] > w[y]; });
  EigenResult out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = w[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      out.eigenvectors(i, j) = q(i, order[j]);
  }
  return out;
}

Result<QrResult> ComputeQr(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) return Status::InvalidArgument("QR requires rows >= cols");

  Matrix r = a;
  // Accumulate Householder vectors, then form thin Q by applying them to the
  // first n columns of the identity.
  std::vector<Vector> householders;
  householders.reserve(n);

  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      householders.emplace_back();  // no-op reflector
      continue;
    }
    const double alpha = r(k, k) >= 0.0 ? -norm : norm;
    Vector v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    const double vnorm = Norm2(v);
    if (vnorm > 0.0) {
      for (double& x : v) x /= vnorm;
    }
    // Apply reflector to R: R <- (I - 2 v v^T) R on rows k..m.
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, j);
      dot *= 2.0;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= dot * v[i - k];
    }
    householders.push_back(std::move(v));
  }

  // Thin Q: apply reflectors in reverse order to the m x n slice of I.
  Matrix q(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (std::size_t kk = n; kk-- > 0;) {
    const Vector& v = householders[kk];
    if (v.empty()) continue;
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = kk; i < m; ++i) dot += v[i - kk] * q(i, j);
      dot *= 2.0;
      for (std::size_t i = kk; i < m; ++i) q(i, j) -= dot * v[i - kk];
    }
  }

  QrResult out;
  out.q = std::move(q);
  out.r = r.Block(0, 0, n, n);
  return out;
}

Result<Vector> SolveLinear(const Matrix& a, const Vector& b) {
  const std::size_t n = a.rows();
  if (n == 0 || a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLinear requires square A, |b| = n");
  }
  Matrix lu = a;
  Vector x = b;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t piv = k;
    double best = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::fabs(lu(i, k)) > best) {
        best = std::fabs(lu(i, k));
        piv = i;
      }
    }
    if (best < 1e-300) return Status::NumericalError("singular matrix in LU");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(piv, j));
      std::swap(x[k], x[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = lu(i, k) / lu(k, k);
      lu(i, k) = f;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= f * lu(k, j);
      x[i] -= f * x[k];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu(i, j) * x[j];
    x[i] = s / lu(i, i);
  }
  return x;
}

Result<Vector> SolveCholesky(const Matrix& a, const Vector& b) {
  const std::size_t n = a.rows();
  if (n == 0 || a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveCholesky requires square A, |b| = n");
  }
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) {
          return Status::NumericalError("matrix not positive definite");
        }
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  // Forward then backward substitution.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

Result<Vector> SolveLeastSquares(const Matrix& a, const Vector& b,
                                 double ridge) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLeastSquares: |b| != rows(A)");
  }
  // Normal equations with optional ridge: (A^T A + ridge I) x = A^T b.
  // For the modest condition numbers in this library this is sufficient and
  // considerably faster than a full orthogonal factorisation.
  const Matrix at = a.Transpose();
  Matrix ata = at.Multiply(a);
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += ridge;
  const Vector atb = at.MultiplyVec(b);
  Result<Vector> x = SolveCholesky(ata, atb);
  if (x.ok()) return x;
  // Fall back to pivoted LU when the Gram matrix is numerically semidefinite.
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += 1e-8;
  return SolveLinear(ata, atb);
}

Result<Matrix> Inverse(const Matrix& a) {
  const std::size_t n = a.rows();
  if (n == 0 || a.cols() != n) {
    return Status::InvalidArgument("Inverse requires a square matrix");
  }
  Matrix inv(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    Vector e(n, 0.0);
    e[j] = 1.0;
    ADARTS_ASSIGN_OR_RETURN(Vector col, SolveLinear(a, e));
    inv.SetCol(j, col);
  }
  return inv;
}

}  // namespace adarts::la
