#ifndef ADARTS_LA_DECOMPOSITIONS_H_
#define ADARTS_LA_DECOMPOSITIONS_H_

#include "common/status.h"
#include "la/matrix.h"

namespace adarts::la {

/// Thin singular value decomposition A = U * diag(s) * V^T.
///
/// U is m x k, s has k entries (descending), V is n x k, where
/// k = min(m, n). Computed by one-sided Jacobi rotations, which is robust
/// for the moderate sizes used by the imputation kernels.
struct SvdResult {
  Matrix u;
  Vector singular_values;
  Matrix v;
};

/// Computes the thin SVD of `a`. Fails with NumericalError if the Jacobi
/// sweep does not converge (practically unreachable for finite inputs).
Result<SvdResult> ComputeSvd(const Matrix& a, int max_sweeps = 60);

/// Symmetric eigen-decomposition A = Q * diag(w) * Q^T for symmetric A,
/// eigenvalues descending. Uses the cyclic Jacobi method.
struct EigenResult {
  Vector eigenvalues;
  Matrix eigenvectors;  // columns are eigenvectors
};

/// Computes all eigenpairs of the symmetric matrix `a`.
Result<EigenResult> ComputeSymmetricEigen(const Matrix& a,
                                          int max_sweeps = 100);

/// QR decomposition A = Q * R via Householder reflections (thin Q: m x n for
/// m >= n).
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Computes the thin QR of `a` (requires rows >= cols).
Result<QrResult> ComputeQr(const Matrix& a);

/// Solves the square system A x = b by LU with partial pivoting.
Result<Vector> SolveLinear(const Matrix& a, const Vector& b);

/// Solves A x = b for symmetric positive definite A via Cholesky.
Result<Vector> SolveCholesky(const Matrix& a, const Vector& b);

/// Least-squares solution of min ||A x - b||_2 via QR (rows >= cols). A small
/// ridge term can be supplied to regularise rank-deficient systems.
Result<Vector> SolveLeastSquares(const Matrix& a, const Vector& b,
                                 double ridge = 0.0);

/// Inverse of a square matrix via LU; fails on (near-)singular input.
Result<Matrix> Inverse(const Matrix& a);

}  // namespace adarts::la

#endif  // ADARTS_LA_DECOMPOSITIONS_H_
