#include "la/matrix.h"

#include <cmath>
#include <sstream>

namespace adarts::la {

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ADARTS_CHECK(rows[r].size() == m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::Row(std::size_t r) const {
  ADARTS_CHECK(r < rows_);
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::Col(std::size_t c) const {
  ADARTS_CHECK(c < cols_);
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(std::size_t r, const Vector& v) {
  ADARTS_CHECK(r < rows_ && v.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::SetCol(std::size_t c, const Vector& v) {
  ADARTS_CHECK(c < cols_ && v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  ADARTS_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& v) const {
  ADARTS_CHECK(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * v[c];
    out[r] = s;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  ADARTS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  ADARTS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double alpha) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= alpha;
  return out;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Matrix Matrix::Block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  ADARTS_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) out(r, c) = (*this)(r0 + r, c0 + c);
  return out;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c);
      if (c + 1 < cols_) os << ", ";
    }
    os << "]";
    if (r + 1 < rows_) os << "\n";
  }
  os << "]";
  return os.str();
}

}  // namespace adarts::la
