#ifndef ADARTS_LA_MATRIX_H_
#define ADARTS_LA_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "la/vector_ops.h"

namespace adarts::la {

/// Dense row-major matrix of doubles.
///
/// The matrix is a plain value type (copyable, movable). Indexing is
/// bounds-checked in debug builds only; dimension mismatches in algebraic
/// operations are programming errors and abort via ADARTS_CHECK.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from rows; all rows must have equal length.
  static Matrix FromRows(const std::vector<Vector>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

  /// Diagonal matrix from the given entries.
  static Matrix Diagonal(const Vector& diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    ADARTS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    ADARTS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row pointer (row-major layout).
  double* RowPtr(std::size_t r) { return &data_[r * cols_]; }
  const double* RowPtr(std::size_t r) const { return &data_[r * cols_]; }

  /// Copies row r into a Vector.
  Vector Row(std::size_t r) const;

  /// Copies column c into a Vector.
  Vector Col(std::size_t c) const;

  /// Overwrites row r.
  void SetRow(std::size_t r, const Vector& v);

  /// Overwrites column c.
  void SetCol(std::size_t c, const Vector& v);

  /// Transposed copy.
  Matrix Transpose() const;

  /// Matrix product this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product this * v.
  Vector MultiplyVec(const Vector& v) const;

  /// Elementwise sum / difference / scalar scale.
  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double alpha) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Submatrix [r0, r0+nr) x [c0, c0+nc).
  Matrix Block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;

  /// Human-readable dump (tests / debugging).
  std::string ToString() const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace adarts::la

#endif  // ADARTS_LA_MATRIX_H_
