#include "la/pca.h"

#include <algorithm>

#include "common/failpoint.h"
#include "la/decompositions.h"

namespace adarts::la {

Status Pca::Fit(const Matrix& data, std::size_t n_components) {
  ADARTS_FAILPOINT("la.pca.fit");
  if (data.empty()) return Status::InvalidArgument("PCA on empty matrix");
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  n_components = std::min(n_components, std::min(n, d));
  if (n_components == 0) {
    return Status::InvalidArgument("PCA needs at least one component");
  }

  mean_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j) mean_[j] += data(i, j);
  for (double& v : mean_) v /= static_cast<double>(n);

  // Covariance matrix of the centred data.
  Matrix cov(d, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      const double da = data(i, a) - mean_[a];
      for (std::size_t b = a; b < d; ++b) {
        cov(a, b) += da * (data(i, b) - mean_[b]);
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = a; b < d; ++b) {
      cov(a, b) /= denom;
      cov(b, a) = cov(a, b);
    }
  }

  ADARTS_ASSIGN_OR_RETURN(EigenResult eig, ComputeSymmetricEigen(cov));

  double total = 0.0;
  for (double w : eig.eigenvalues) total += std::max(w, 0.0);
  if (total <= 0.0) total = 1.0;

  components_ = Matrix(d, n_components);
  explained_variance_ratio_.assign(n_components, 0.0);
  for (std::size_t k = 0; k < n_components; ++k) {
    for (std::size_t j = 0; j < d; ++j)
      components_(j, k) = eig.eigenvectors(j, k);
    explained_variance_ratio_[k] = std::max(eig.eigenvalues[k], 0.0) / total;
  }
  fitted_ = true;
  return Status::OK();
}

Result<Matrix> Pca::Transform(const Matrix& data) const {
  if (!fitted_) return Status::FailedPrecondition("PCA not fitted");
  if (data.cols() != mean_.size()) {
    return Status::InvalidArgument("PCA transform dimension mismatch");
  }
  Matrix out(data.rows(), components_.cols());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    for (std::size_t k = 0; k < components_.cols(); ++k) {
      double s = 0.0;
      for (std::size_t j = 0; j < data.cols(); ++j) {
        s += (data(i, j) - mean_[j]) * components_(j, k);
      }
      out(i, k) = s;
    }
  }
  return out;
}

}  // namespace adarts::la
