#ifndef ADARTS_LA_PCA_H_
#define ADARTS_LA_PCA_H_

#include <cstddef>

#include "common/status.h"
#include "la/matrix.h"

namespace adarts::la {

/// Principal component analysis fitted on row-sample matrices.
///
/// Used by (a) the PCA feature scaler in ModelRace's pipeline search space
/// and (b) the trend feature group of the statistical extractor.
class Pca {
 public:
  /// Fits `n_components` principal axes on `data` (rows = samples,
  /// cols = variables). n_components is clamped to min(rows, cols).
  Status Fit(const Matrix& data, std::size_t n_components);

  /// Projects samples onto the fitted axes. Requires a prior Fit.
  Result<Matrix> Transform(const Matrix& data) const;

  /// Fraction of total variance captured by each retained component.
  const Vector& explained_variance_ratio() const {
    return explained_variance_ratio_;
  }

  /// Retained principal axes, one per column.
  const Matrix& components() const { return components_; }

  bool fitted() const { return fitted_; }
  std::size_t n_components() const { return components_.cols(); }

 private:
  Matrix components_;  // cols x k, columns are principal axes
  Vector mean_;
  Vector explained_variance_ratio_;
  bool fitted_ = false;
};

}  // namespace adarts::la

#endif  // ADARTS_LA_PCA_H_
