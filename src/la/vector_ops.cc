#include "la/vector_ops.h"

#include <cmath>

#include "common/check.h"

namespace adarts::la {

double Dot(const Vector& a, const Vector& b) {
  ADARTS_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double Norm1(const Vector& a) {
  double s = 0.0;
  for (double v : a) s += std::fabs(v);
  return s;
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  ADARTS_CHECK(x.size() == y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vector* x) {
  for (double& v : *x) v *= alpha;
}

double Mean(const Vector& a) {
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (double v : a) s += v;
  return s / static_cast<double>(a.size());
}

double Variance(const Vector& a) {
  if (a.size() < 2) return 0.0;
  const double m = Mean(a);
  double s = 0.0;
  for (double v : a) s += (v - m) * (v - m);
  return s / static_cast<double>(a.size());
}

double StdDev(const Vector& a) { return std::sqrt(Variance(a)); }

double PearsonCorrelation(const Vector& a, const Vector& b) {
  ADARTS_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

Vector Subtract(const Vector& a, const Vector& b) {
  ADARTS_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Add(const Vector& a, const Vector& b) {
  ADARTS_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

}  // namespace adarts::la
