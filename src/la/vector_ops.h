#ifndef ADARTS_LA_VECTOR_OPS_H_
#define ADARTS_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace adarts::la {

/// Dense double vector used throughout the library.
using Vector = std::vector<double>;

/// Dot product. Requires equal lengths.
double Dot(const Vector& a, const Vector& b);

/// Euclidean (L2) norm.
double Norm2(const Vector& a);

/// L1 norm (sum of absolute values).
double Norm1(const Vector& a);

/// y += alpha * x. Requires equal lengths.
void Axpy(double alpha, const Vector& x, Vector* y);

/// x *= alpha.
void Scale(double alpha, Vector* x);

/// Arithmetic mean; 0 for an empty vector.
double Mean(const Vector& a);

/// Population variance (divides by n); 0 for vectors shorter than 2.
double Variance(const Vector& a);

/// Population standard deviation.
double StdDev(const Vector& a);

/// Pearson correlation of two equal-length vectors; 0 when either side is
/// constant.
double PearsonCorrelation(const Vector& a, const Vector& b);

/// Elementwise a - b.
Vector Subtract(const Vector& a, const Vector& b);

/// Elementwise a + b.
Vector Add(const Vector& a, const Vector& b);

}  // namespace adarts::la

#endif  // ADARTS_LA_VECTOR_OPS_H_
