#include "labeling/labeler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/exec_context.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "ts/metrics.h"

namespace adarts::labeling {

namespace {

std::vector<impute::Algorithm> ResolvePool(const LabelingOptions& options) {
  return options.algorithms.empty() ? impute::AllAlgorithms()
                                    : options.algorithms;
}

/// Injects the configured missing pattern into the selected series of the
/// set (each with its own random offset) and returns the masked copies.
Status MaskSeries(const LabelingOptions& options,
                  const std::vector<std::size_t>& targets, Rng* rng,
                  std::vector<ts::TimeSeries>* set) {
  for (std::size_t i : targets) {
    ADARTS_RETURN_NOT_OK(ts::InjectPattern(options.pattern,
                                           options.missing_fraction, rng,
                                           &(*set)[i]));
  }
  return Status::OK();
}

/// Runs every pool algorithm over the masked set and fills `rmse`
/// (rows = targets order, cols = algorithms). Counts executions. Algorithms
/// run in parallel across the pool's workers: each one builds its own
/// imputer and writes only its own `rmse` column, so results match the
/// serial pass bit-for-bit.
Status ScoreAlgorithms(const std::vector<ts::TimeSeries>& masked_set,
                       const std::vector<std::size_t>& targets,
                       const std::vector<impute::Algorithm>& pool,
                       ExecContext& ctx, la::Matrix* rmse,
                       std::size_t* runs) {
  // One histogram handle for the whole pass; each algorithm run records its
  // wall-clock into it lock-free.
  LatencyHistogram* const impute_hist =
      ctx.metrics().histogram("label.impute");
  ParallelFor(ctx, pool.size(), [&](std::size_t a) {
    TraceSpan span("label.impute", impute::AlgorithmToString(pool[a]));
    Stopwatch watch;
    const std::unique_ptr<impute::Imputer> imputer =
        impute::CreateImputer(pool[a]);
    auto repaired = imputer->ImputeSet(masked_set);
    impute_hist->RecordSeconds(watch.ElapsedSeconds());
    if (!repaired.ok()) {
      // An algorithm failing on a scenario is informative: it gets the
      // worst possible score rather than aborting the labeling pass.
      for (std::size_t r = 0; r < targets.size(); ++r) {
        (*rmse)(r, a) = std::numeric_limits<double>::infinity();
      }
      return;
    }
    for (std::size_t r = 0; r < targets.size(); ++r) {
      const std::size_t i = targets[r];
      auto err = ts::ImputationRmse(masked_set[i], (*repaired)[i]);
      (*rmse)(r, a) =
          err.ok() ? *err : std::numeric_limits<double>::infinity();
    }
  });
  ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("Labeling algorithm benchmark"));
  *runs += pool.size();
  ctx.metrics().Increment("label.imputation_runs", pool.size());
  return Status::OK();
}

int ArgMinRow(const la::Matrix& m, std::size_t row) {
  int best = 0;
  for (std::size_t c = 1; c < m.cols(); ++c) {
    if (m(row, c) < m(row, static_cast<std::size_t>(best))) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

/// The per-cluster core shared by LabelByClusters and LabelSingleCluster:
/// masks the representative slots of `cluster_set` in place, scores the
/// pool over the masked set, and returns each algorithm's mean RMSE across
/// the representatives. Consumes `rng` exactly as the pre-refactor inline
/// body did (one mask draw per representative, in order), so cluster-path
/// labels are bit-identical to earlier builds.
Result<la::Vector> ScoreClusterRepresentatives(
    std::vector<ts::TimeSeries>* cluster_set,
    const std::vector<std::size_t>& local_reps,
    const std::vector<impute::Algorithm>& pool, const LabelingOptions& options,
    Rng* rng, ExecContext& ctx, std::size_t* imputation_runs) {
  ADARTS_RETURN_NOT_OK(MaskSeries(options, local_reps, rng, cluster_set));
  la::Matrix rep_rmse(local_reps.size(), pool.size());
  ADARTS_RETURN_NOT_OK(ScoreAlgorithms(*cluster_set, local_reps, pool, ctx,
                                       &rep_rmse, imputation_runs));
  la::Vector mean_rmse(pool.size(), 0.0);
  for (std::size_t a = 0; a < pool.size(); ++a) {
    for (std::size_t r = 0; r < local_reps.size(); ++r) {
      mean_rmse[a] += rep_rmse(r, a);
    }
    mean_rmse[a] /= static_cast<double>(local_reps.size());
  }
  return mean_rmse;
}

}  // namespace

Result<LabelingResult> LabelSeriesFull(
    const std::vector<ts::TimeSeries>& series, const LabelingOptions& options) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ExecContext ctx(options.num_threads);
#pragma GCC diagnostic pop
  return LabelSeriesFull(series, options, ctx);
}

Result<LabelingResult> LabelSeriesFull(const std::vector<ts::TimeSeries>& series,
                                       const LabelingOptions& options,
                                       ExecContext& ctx) {
  if (series.empty()) return Status::InvalidArgument("no series to label");
  const std::vector<impute::Algorithm> pool = ResolvePool(options);
  Rng rng(options.seed);

  std::vector<ts::TimeSeries> masked = series;
  std::vector<std::size_t> targets(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) targets[i] = i;
  ADARTS_RETURN_NOT_OK(MaskSeries(options, targets, &rng, &masked));

  LabelingResult result;
  result.algorithms = pool;
  result.rmse = la::Matrix(series.size(), pool.size());
  ADARTS_RETURN_NOT_OK(ScoreAlgorithms(masked, targets, pool, ctx,
                                       &result.rmse,
                                       &result.imputation_runs));
  result.labels.resize(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    result.labels[i] = ArgMinRow(result.rmse, i);
  }
  return result;
}

Result<LabelingResult> LabelByClusters(
    const std::vector<ts::TimeSeries>& series,
    const cluster::Clustering& clustering, const LabelingOptions& options) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ExecContext ctx(options.num_threads);
#pragma GCC diagnostic pop
  return LabelByClusters(series, clustering, options, ctx);
}

Result<LabelingResult> LabelByClusters(const std::vector<ts::TimeSeries>& series,
                                       const cluster::Clustering& clustering,
                                       const LabelingOptions& options,
                                       ExecContext& ctx) {
  if (series.empty()) return Status::InvalidArgument("no series to label");
  const std::vector<impute::Algorithm> pool = ResolvePool(options);
  Rng rng(options.seed);
  // The representative-selection matrix reuses the context's pool: pairs fan
  // out before the per-cluster benchmark loop begins.
  const la::Matrix corr = cluster::PairwiseCorrelationMatrix(series, ctx);
  ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("LabelByClusters correlation"));

  LabelingResult result;
  result.algorithms = pool;
  result.labels.assign(series.size(), 0);
  result.rmse = la::Matrix(series.size(), pool.size());

  for (const auto& members : clustering.clusters) {
    if (members.empty()) {
      // Keep the representative list parallel to the cluster list.
      result.cluster_representatives.emplace_back();
      continue;
    }
    const std::vector<std::size_t> reps = ClusterRepresentatives(
        members, corr, options.representatives_per_cluster);
    result.cluster_representatives.push_back(reps);

    // The benchmark runs on the cluster's series only (the context the
    // cross-series imputers exploit).
    std::vector<ts::TimeSeries> cluster_set;
    cluster_set.reserve(members.size());
    std::vector<std::size_t> local_reps;
    for (std::size_t local = 0; local < members.size(); ++local) {
      cluster_set.push_back(series[members[local]]);
      if (std::find(reps.begin(), reps.end(), members[local]) != reps.end()) {
        local_reps.push_back(local);
      }
    }
    ADARTS_ASSIGN_OR_RETURN(
        la::Vector mean_rmse,
        ScoreClusterRepresentatives(&cluster_set, local_reps, pool, options,
                                    &rng, ctx, &result.imputation_runs));

    // The cluster label is the algorithm with the lowest mean RMSE across
    // the representatives; scores propagate to every member.
    const int label = static_cast<int>(
        std::min_element(mean_rmse.begin(), mean_rmse.end()) -
        mean_rmse.begin());
    for (std::size_t i : members) {
      result.labels[i] = label;
      for (std::size_t a = 0; a < pool.size(); ++a) {
        result.rmse(i, a) = mean_rmse[a];
      }
    }
  }
  return result;
}

std::vector<std::size_t> ClusterRepresentatives(
    const std::vector<std::size_t>& members, const la::Matrix& corr,
    std::size_t count) {
  count = std::max<std::size_t>(count, 1);
  if (members.size() <= count) return members;
  // Total absolute correlation of each member to the rest of the cluster.
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(members.size());
  for (std::size_t i : members) {
    double total = 0.0;
    for (std::size_t j : members) {
      if (i != j) total += std::fabs(corr(i, j));
    }
    scored.emplace_back(total, i);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::size_t> reps;
  for (std::size_t r = 0; r < count; ++r) reps.push_back(scored[r].second);
  return reps;
}

Result<ClusterLabel> LabelSingleCluster(
    const std::vector<ts::TimeSeries>& cluster_set,
    const LabelingOptions& options, ExecContext& ctx) {
  if (cluster_set.empty()) {
    return Status::InvalidArgument("no series in cluster to label");
  }
  const std::vector<impute::Algorithm> pool = ResolvePool(options);
  Rng rng(options.seed);

  ClusterLabel out;
  const std::size_t count =
      std::max<std::size_t>(options.representatives_per_cluster, 1);
  if (cluster_set.size() <= count) {
    out.representatives.resize(cluster_set.size());
    for (std::size_t i = 0; i < cluster_set.size(); ++i) {
      out.representatives[i] = i;
    }
  } else {
    // Medoid selection needs the intra-cluster correlation matrix; the
    // cluster is small (append deltas), so this stays cheap.
    const la::Matrix corr = cluster::PairwiseCorrelationMatrix(cluster_set, ctx);
    ADARTS_RETURN_NOT_OK(ctx.CheckCancelled("LabelSingleCluster correlation"));
    std::vector<std::size_t> members(cluster_set.size());
    for (std::size_t i = 0; i < cluster_set.size(); ++i) members[i] = i;
    out.representatives = ClusterRepresentatives(members, corr, count);
  }

  std::vector<ts::TimeSeries> masked = cluster_set;
  ADARTS_ASSIGN_OR_RETURN(
      out.mean_rmse,
      ScoreClusterRepresentatives(&masked, out.representatives, pool, options,
                                  &rng, ctx, &out.imputation_runs));
  out.label = static_cast<int>(
      std::min_element(out.mean_rmse.begin(), out.mean_rmse.end()) -
      out.mean_rmse.begin());
  return out;
}

}  // namespace adarts::labeling
