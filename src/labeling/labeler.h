#ifndef ADARTS_LABELING_LABELER_H_
#define ADARTS_LABELING_LABELER_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "impute/imputer.h"
#include "la/matrix.h"
#include "ts/missing.h"
#include "ts/time_series.h"

namespace adarts::labeling {

/// Options for annotating series with their best imputation algorithm.
struct LabelingOptions {
  /// Algorithm pool to race; defaults to the full registry.
  std::vector<impute::Algorithm> algorithms;
  ts::MissingPattern pattern = ts::MissingPattern::kSingleBlock;
  /// Size of the injected missing block, as a fraction of the series.
  double missing_fraction = 0.1;
  /// Representatives benchmarked per cluster in the fast path.
  std::size_t representatives_per_cluster = 2;
  std::uint64_t seed = 42;
  /// Worker threads for the per-algorithm imputation benchmark and, in the
  /// cluster path, the pairwise correlation matrix behind representative
  /// selection: 0 sizes the pool from `std::thread::hardware_concurrency()`,
  /// 1 runs serially. Labels and RMSE matrices are bit-identical for every
  /// value.
  std::size_t num_threads = 0;
};

/// Output of a labeling pass.
struct LabelingResult {
  /// Per-series label: index into `algorithms` of the winning imputer.
  std::vector<int> labels;
  /// Per-series RMSE of each algorithm (rows = series, cols = algorithms).
  /// For cluster labeling, rows repeat the representative's scores across
  /// the cluster.
  la::Matrix rmse;
  /// Number of algorithm executions performed — the cost the clustering
  /// step amortises (Section VI motivation).
  std::size_t imputation_runs = 0;
  /// The algorithm pool the label indices refer to.
  std::vector<impute::Algorithm> algorithms;
};

/// Ground-truth labeling: injects one missing pattern into every series,
/// runs every algorithm over the whole set once, and labels each series with
/// its per-series argmin-RMSE algorithm.
Result<LabelingResult> LabelSeriesFull(const std::vector<ts::TimeSeries>& series,
                                       const LabelingOptions& options = {});

/// Fast labeling (Fig. 2, step 1): benchmarks only cluster representatives
/// (correlation medoids) and propagates each cluster's winning algorithm to
/// all members. Costs |clusters| * reps * |algorithms| runs instead of
/// |series| * |algorithms|.
Result<LabelingResult> LabelByClusters(
    const std::vector<ts::TimeSeries>& series,
    const cluster::Clustering& clustering, const LabelingOptions& options = {});

/// Correlation medoids of a cluster: the `count` members with the highest
/// total absolute correlation to the rest of the cluster.
std::vector<std::size_t> ClusterRepresentatives(
    const std::vector<std::size_t>& members, const la::Matrix& corr,
    std::size_t count);

}  // namespace adarts::labeling

#endif  // ADARTS_LABELING_LABELER_H_
