#ifndef ADARTS_LABELING_LABELER_H_
#define ADARTS_LABELING_LABELER_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "impute/imputer.h"
#include "la/matrix.h"
#include "ts/missing.h"
#include "ts/time_series.h"

namespace adarts::labeling {

/// Options for annotating series with their best imputation algorithm.
struct LabelingOptions {
  /// Algorithm pool to race; defaults to the full registry.
  std::vector<impute::Algorithm> algorithms;
  ts::MissingPattern pattern = ts::MissingPattern::kSingleBlock;
  /// Size of the injected missing block, as a fraction of the series.
  double missing_fraction = 0.1;
  /// Representatives benchmarked per cluster in the fast path.
  std::size_t representatives_per_cluster = 2;
  std::uint64_t seed = 42;
  /// Worker threads for the per-algorithm imputation benchmark and, in the
  /// cluster path, the pairwise correlation matrix behind representative
  /// selection. Ignored when an explicit `ExecContext` is passed — the
  /// context's pool is used instead. Labels and RMSE matrices are
  /// bit-identical for every value.
  [[deprecated(
      "pass an ExecContext to LabelSeriesFull/LabelByClusters "
      "instead")]] std::size_t num_threads = 0;

  // Spelled-out defaulted special members inside a diagnostic guard:
  // default-constructing/copying the options must not itself warn about the
  // deprecated field — only direct reads and writes of it do.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  LabelingOptions() = default;
  LabelingOptions(const LabelingOptions&) = default;
  LabelingOptions& operator=(const LabelingOptions&) = default;
  LabelingOptions(LabelingOptions&&) = default;
  LabelingOptions& operator=(LabelingOptions&&) = default;
#pragma GCC diagnostic pop
};

/// Output of a labeling pass.
struct LabelingResult {
  /// Per-series label: index into `algorithms` of the winning imputer.
  std::vector<int> labels;
  /// Per-series RMSE of each algorithm (rows = series, cols = algorithms).
  /// For cluster labeling, rows repeat the representative's scores across
  /// the cluster.
  la::Matrix rmse;
  /// Number of algorithm executions performed — the cost the clustering
  /// step amortises (Section VI motivation).
  std::size_t imputation_runs = 0;
  /// The algorithm pool the label indices refer to.
  std::vector<impute::Algorithm> algorithms;
  /// Cluster path only: the representative series indices benchmarked for
  /// each cluster, parallel to the clustering's cluster list (empty in the
  /// exhaustive path). The engine persists the representatives so appended
  /// series can be assigned to clusters without the original corpus.
  std::vector<std::vector<std::size_t>> cluster_representatives;
};

/// Ground-truth labeling: injects one missing pattern into every series,
/// runs every algorithm over the whole set once, and labels each series with
/// its per-series argmin-RMSE algorithm.
Result<LabelingResult> LabelSeriesFull(const std::vector<ts::TimeSeries>& series,
                                       const LabelingOptions& options = {});

/// Context variant: the per-algorithm benchmark runs on `ctx`'s shared pool,
/// the cancellation token is honoured, and the `label.imputation_runs`
/// counter accumulates in `ctx`'s metrics. The legacy overload delegates
/// here with a default context built from the deprecated `num_threads`.
Result<LabelingResult> LabelSeriesFull(const std::vector<ts::TimeSeries>& series,
                                       const LabelingOptions& options,
                                       ExecContext& ctx);

/// Fast labeling (Fig. 2, step 1): benchmarks only cluster representatives
/// (correlation medoids) and propagates each cluster's winning algorithm to
/// all members. Costs |clusters| * reps * |algorithms| runs instead of
/// |series| * |algorithms|.
Result<LabelingResult> LabelByClusters(
    const std::vector<ts::TimeSeries>& series,
    const cluster::Clustering& clustering, const LabelingOptions& options = {});

/// Context variant of `LabelByClusters`; same contract as the context
/// variant of `LabelSeriesFull` (shared pool, cancellation between
/// clusters, `label.imputation_runs` metrics).
Result<LabelingResult> LabelByClusters(const std::vector<ts::TimeSeries>& series,
                                       const cluster::Clustering& clustering,
                                       const LabelingOptions& options,
                                       ExecContext& ctx);

/// Correlation medoids of a cluster: the `count` members with the highest
/// total absolute correlation to the rest of the cluster.
std::vector<std::size_t> ClusterRepresentatives(
    const std::vector<std::size_t>& members, const la::Matrix& corr,
    std::size_t count);

/// Label of one cluster benchmarked in isolation (the incremental append
/// path: a freshly split cluster is labeled without touching the rest of
/// the corpus).
struct ClusterLabel {
  /// Index into the resolved pool of the winning algorithm.
  int label = 0;
  /// Mean RMSE of each pool algorithm across the representatives.
  la::Vector mean_rmse;
  /// The representative indices (into the cluster set) that were scored.
  std::vector<std::size_t> representatives;
  /// Algorithm executions this labeling cost.
  std::size_t imputation_runs = 0;
};

/// Labels a standalone cluster exactly as one iteration of
/// `LabelByClusters` would: representatives are selected by correlation
/// medoid within `cluster_set`, masked with the configured pattern, scored
/// against the pool, and the argmin-mean-RMSE algorithm wins. Singleton
/// clusters score their only member. Used by `Adarts::AppendSeries` to
/// label freshly split clusters — cost is `reps * |algorithms|` runs,
/// independent of the corpus size.
Result<ClusterLabel> LabelSingleCluster(
    const std::vector<ts::TimeSeries>& cluster_set,
    const LabelingOptions& options, ExecContext& ctx);

}  // namespace adarts::labeling

#endif  // ADARTS_LABELING_LABELER_H_
