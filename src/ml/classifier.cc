#include "ml/classifier.h"

#include <algorithm>
#include <cmath>

namespace adarts::ml {

std::string_view ClassifierKindToString(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kKnn:
      return "knn";
    case ClassifierKind::kDecisionTree:
      return "decision_tree";
    case ClassifierKind::kRandomForest:
      return "random_forest";
    case ClassifierKind::kExtraTrees:
      return "extra_trees";
    case ClassifierKind::kGradientBoosting:
      return "gradient_boosting";
    case ClassifierKind::kAdaBoost:
      return "adaboost";
    case ClassifierKind::kMlp:
      return "mlp";
    case ClassifierKind::kLogisticRegression:
      return "logistic_regression";
    case ClassifierKind::kRidge:
      return "ridge";
    case ClassifierKind::kLinearSvm:
      return "linear_svm";
    case ClassifierKind::kGaussianNb:
      return "gaussian_nb";
    case ClassifierKind::kLda:
      return "lda";
  }
  return "unknown";
}

Result<ClassifierKind> ClassifierKindFromString(std::string_view name) {
  for (ClassifierKind k : AllClassifierKinds()) {
    if (ClassifierKindToString(k) == name) return k;
  }
  return Status::NotFound("unknown classifier: " + std::string(name));
}

std::vector<ClassifierKind> AllClassifierKinds() {
  std::vector<ClassifierKind> out;
  out.reserve(kNumClassifierKinds);
  for (int i = 0; i < kNumClassifierKinds; ++i) {
    out.push_back(static_cast<ClassifierKind>(i));
  }
  return out;
}

const std::vector<ParamSpec>& ParamSpecsFor(ClassifierKind kind) {
  // Function-local statics avoid non-trivial globals (style guide) while
  // giving each family a stable spec table.
  switch (kind) {
    case ClassifierKind::kKnn: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"k", 1, 25, true, 5},
          {"weight_by_distance", 0, 1, true, 1},
      };
      return specs;
    }
    case ClassifierKind::kDecisionTree: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"max_depth", 2, 16, true, 8},
          {"min_samples_leaf", 1, 10, true, 2},
      };
      return specs;
    }
    case ClassifierKind::kRandomForest: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"num_trees", 5, 60, true, 20},
          {"max_depth", 2, 16, true, 8},
          {"feature_fraction", 0.3, 1.0, false, 0.7},
      };
      return specs;
    }
    case ClassifierKind::kExtraTrees: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"num_trees", 5, 60, true, 20},
          {"max_depth", 2, 16, true, 10},
          {"feature_fraction", 0.3, 1.0, false, 0.8},
      };
      return specs;
    }
    case ClassifierKind::kGradientBoosting: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"num_rounds", 10, 80, true, 30},
          {"learning_rate", 0.02, 0.5, false, 0.15, true},
          {"max_depth", 2, 5, true, 3},
      };
      return specs;
    }
    case ClassifierKind::kAdaBoost: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"num_rounds", 5, 60, true, 25},
          {"max_depth", 1, 4, true, 2},
      };
      return specs;
    }
    case ClassifierKind::kMlp: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"hidden_units", 4, 64, true, 24},
          {"learning_rate", 0.001, 0.3, false, 0.03, true},
          {"epochs", 20, 200, true, 80},
      };
      return specs;
    }
    case ClassifierKind::kLogisticRegression: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"learning_rate", 0.01, 1.0, false, 0.3, true},
          {"epochs", 50, 500, true, 300},
          {"l2", 0.0, 0.1, false, 0.001},
      };
      return specs;
    }
    case ClassifierKind::kRidge: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"alpha", 0.01, 10.0, false, 1.0, true},
      };
      return specs;
    }
    case ClassifierKind::kLinearSvm: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"c", 0.01, 10.0, false, 1.0, true},
          {"epochs", 20, 300, true, 100},
      };
      return specs;
    }
    case ClassifierKind::kGaussianNb: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"var_smoothing_log10", -12, -3, false, -9},
      };
      return specs;
    }
    case ClassifierKind::kLda: {
      static const auto& specs = *new std::vector<ParamSpec>{
          {"shrinkage", 0.0, 0.9, false, 0.2},
      };
      return specs;
    }
  }
  static const auto& empty = *new std::vector<ParamSpec>{};
  return empty;
}

HyperParams ResolveParams(ClassifierKind kind, const HyperParams& params) {
  HyperParams out;
  for (const ParamSpec& spec : ParamSpecsFor(kind)) {
    double v = spec.default_value;
    if (auto it = params.find(spec.name); it != params.end()) {
      v = it->second;
    }
    v = std::clamp(v, spec.min_value, spec.max_value);
    if (spec.integer) v = std::round(v);
    out[spec.name] = v;
  }
  // "seed" is accepted for every family.
  if (auto it = params.find("seed"); it != params.end()) {
    out["seed"] = it->second;
  } else {
    out["seed"] = 1.0;
  }
  return out;
}

int Classifier::Predict(const la::Vector& x) const {
  const la::Vector probs = PredictProba(x);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<int> Classifier::PredictBatch(
    const std::vector<la::Vector>& x) const {
  std::vector<int> out;
  out.reserve(x.size());
  for (const auto& v : x) out.push_back(Predict(v));
  return out;
}

std::vector<la::Vector> Classifier::PredictProbaBatch(
    const std::vector<la::Vector>& x) const {
  std::vector<la::Vector> out;
  out.reserve(x.size());
  for (const auto& v : x) out.push_back(PredictProba(v));
  return out;
}

}  // namespace adarts::ml
