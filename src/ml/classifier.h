#ifndef ADARTS_ML_CLASSIFIER_H_
#define ADARTS_ML_CLASSIFIER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "la/vector_ops.h"
#include "ml/dataset.h"

namespace adarts::ml {

/// The twelve classifier families raced by ModelRace (Section VII-B tests
/// "12 different classifiers ranging from standard kNN, decision trees and
/// MLPs to more recent, sophisticated ones such as CatBoost" — gradient
/// boosted trees stand in for CatBoost; see DESIGN.md).
enum class ClassifierKind {
  kKnn = 0,
  kDecisionTree,
  kRandomForest,
  kExtraTrees,
  kGradientBoosting,
  kAdaBoost,
  kMlp,
  kLogisticRegression,
  kRidge,
  kLinearSvm,
  kGaussianNb,
  kLda,
};

inline constexpr int kNumClassifierKinds = 12;

std::string_view ClassifierKindToString(ClassifierKind kind);
Result<ClassifierKind> ClassifierKindFromString(std::string_view name);
std::vector<ClassifierKind> AllClassifierKinds();

/// Hyperparameters as a name -> value map; integer parameters are stored as
/// doubles and rounded by the consumer. Missing entries take the spec's
/// default. This representation is what ModelRace's synthesizer mutates.
using HyperParams = std::map<std::string, double>;

/// Declares one tunable hyperparameter of a classifier family.
struct ParamSpec {
  std::string name;
  double min_value;
  double max_value;
  bool integer;
  double default_value;
  bool log_scale = false;  ///< mutate multiplicatively
};

/// Tunable hyperparameters of `kind` (used by the pipeline synthesizer).
const std::vector<ParamSpec>& ParamSpecsFor(ClassifierKind kind);

/// Returns `params` completed with defaults for unspecified names and
/// clamped into the legal ranges.
HyperParams ResolveParams(ClassifierKind kind, const HyperParams& params);

/// Interface for all classifiers: fit on a labeled dataset, then emit a
/// per-class probability vector for new samples. Implementations are
/// deterministic given the "seed" hyperparameter.
class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual std::string_view name() const = 0;

  /// Trains on `data` (which must Validate()).
  virtual Status Fit(const Dataset& data) = 0;

  /// Per-class probabilities (sums to 1) for one sample. Requires Fit.
  virtual la::Vector PredictProba(const la::Vector& x) const = 0;

  /// Argmax class for one sample.
  int Predict(const la::Vector& x) const;

  /// Batch helpers.
  std::vector<int> PredictBatch(const std::vector<la::Vector>& x) const;
  std::vector<la::Vector> PredictProbaBatch(
      const std::vector<la::Vector>& x) const;
};

/// Instantiates a classifier of `kind` with `params` (resolved against the
/// family's spec).
std::unique_ptr<Classifier> CreateClassifier(ClassifierKind kind,
                                             const HyperParams& params = {});

}  // namespace adarts::ml

#endif  // ADARTS_ML_CLASSIFIER_H_
