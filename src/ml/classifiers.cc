// Implementations of the twelve classifier families behind CreateClassifier.
// Each class is internal; construction happens only through the factory so
// the public surface stays the Classifier interface.

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/decompositions.h"
#include "la/matrix.h"
#include "ml/classifier.h"
#include "ml/tree.h"

namespace adarts::ml {

namespace {

la::Vector Softmax(la::Vector scores) {
  const double mx = *std::max_element(scores.begin(), scores.end());
  double sum = 0.0;
  for (double& s : scores) {
    s = std::exp(s - mx);
    sum += s;
  }
  for (double& s : scores) s /= sum;
  return scores;
}

la::Vector UniformProbs(int num_classes) {
  return la::Vector(static_cast<std::size_t>(num_classes),
                    1.0 / std::max(num_classes, 1));
}

double GetParam(const HyperParams& p, const std::string& name) {
  const auto it = p.find(name);
  ADARTS_CHECK(it != p.end());
  return it->second;
}

// ---------------------------------------------------------------- kNN ----

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(const HyperParams& p)
      : k_(static_cast<std::size_t>(GetParam(p, "k"))),
        weight_by_distance_(GetParam(p, "weight_by_distance") > 0.5) {}

  std::string_view name() const override { return "knn"; }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    train_ = data;
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (train_.empty()) return UniformProbs(train_.num_classes);
    const std::size_t k = std::min(k_, train_.size());
    // Partial selection of the k nearest neighbours.
    std::vector<std::pair<double, int>> dist;
    dist.reserve(train_.size());
    for (std::size_t i = 0; i < train_.size(); ++i) {
      double d = 0.0;
      const la::Vector& f = train_.features[i];
      for (std::size_t j = 0; j < f.size(); ++j) {
        const double diff = f[j] - x[j];
        d += diff * diff;
      }
      dist.emplace_back(d, train_.labels[i]);
    }
    std::nth_element(dist.begin(),
                     dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     dist.end());
    la::Vector votes(static_cast<std::size_t>(train_.num_classes), 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double w =
          weight_by_distance_ ? 1.0 / (std::sqrt(dist[i].first) + 1e-9) : 1.0;
      votes[static_cast<std::size_t>(dist[i].second)] += w;
      total += w;
    }
    for (double& v : votes) v /= total;
    return votes;
  }

 private:
  std::size_t k_;
  bool weight_by_distance_;
  Dataset train_;
};

// ------------------------------------------------------- decision tree ----

class DecisionTreeClassifier final : public Classifier {
 public:
  explicit DecisionTreeClassifier(const HyperParams& p) {
    options_.max_depth = static_cast<std::size_t>(GetParam(p, "max_depth"));
    options_.min_samples_leaf =
        static_cast<std::size_t>(GetParam(p, "min_samples_leaf"));
    options_.seed = static_cast<std::uint64_t>(GetParam(p, "seed"));
  }

  std::string_view name() const override { return "decision_tree"; }

  Status Fit(const Dataset& data) override {
    tree_ = ClassificationTree(options_);
    std::vector<std::size_t> rows(data.size());
    std::iota(rows.begin(), rows.end(), 0);
    return tree_.Fit(data, rows);
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    return tree_.PredictProba(x);
  }

 private:
  TreeOptions options_;
  ClassificationTree tree_{TreeOptions{}};
};

// --------------------------------------------- random forest / extra ----

class ForestClassifier final : public Classifier {
 public:
  ForestClassifier(const HyperParams& p, bool extra_trees)
      : extra_trees_(extra_trees),
        num_trees_(static_cast<std::size_t>(GetParam(p, "num_trees"))),
        seed_(static_cast<std::uint64_t>(GetParam(p, "seed"))) {
    options_.max_depth = static_cast<std::size_t>(GetParam(p, "max_depth"));
    options_.feature_fraction = GetParam(p, "feature_fraction");
    options_.random_thresholds = extra_trees;
  }

  std::string_view name() const override {
    return extra_trees_ ? "extra_trees" : "random_forest";
  }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    num_classes_ = data.num_classes;
    trees_.clear();
    Rng rng(seed_);
    for (std::size_t b = 0; b < num_trees_; ++b) {
      TreeOptions opts = options_;
      opts.seed = rng.NextU64();
      ClassificationTree tree(opts);
      std::vector<std::size_t> rows(data.size());
      if (extra_trees_) {
        std::iota(rows.begin(), rows.end(), 0);  // no bagging
      } else {
        for (auto& r : rows) {
          r = static_cast<std::size_t>(rng.UniformInt(data.size()));
        }
      }
      ADARTS_RETURN_NOT_OK(tree.Fit(data, rows));
      trees_.push_back(std::move(tree));
    }
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (trees_.empty()) return UniformProbs(num_classes_);
    la::Vector acc(static_cast<std::size_t>(num_classes_), 0.0);
    for (const auto& tree : trees_) {
      la::Axpy(1.0, tree.PredictProba(x), &acc);
    }
    la::Scale(1.0 / static_cast<double>(trees_.size()), &acc);
    return acc;
  }

 private:
  bool extra_trees_;
  std::size_t num_trees_;
  std::uint64_t seed_;
  TreeOptions options_;
  std::vector<ClassificationTree> trees_;
  int num_classes_ = 0;
};

// -------------------------------------------------- gradient boosting ----

/// Multinomial gradient boosting with regression-tree base learners — the
/// "CatBoost-class" boosted-tree family of the paper's pool.
class GradientBoostingClassifier final : public Classifier {
 public:
  explicit GradientBoostingClassifier(const HyperParams& p)
      : rounds_(static_cast<std::size_t>(GetParam(p, "num_rounds"))),
        learning_rate_(GetParam(p, "learning_rate")),
        seed_(static_cast<std::uint64_t>(GetParam(p, "seed"))) {
    tree_options_.max_depth =
        static_cast<std::size_t>(GetParam(p, "max_depth"));
    tree_options_.min_samples_leaf = 2;
  }

  std::string_view name() const override { return "gradient_boosting"; }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    num_classes_ = data.num_classes;
    trees_.assign(static_cast<std::size_t>(num_classes_), {});
    const std::size_t n = data.size();
    const auto nc = static_cast<std::size_t>(num_classes_);

    // Scores F[i][c], residual fitting per round per class.
    std::vector<la::Vector> scores(n, la::Vector(nc, 0.0));
    std::vector<std::size_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0);
    Rng rng(seed_);

    la::Vector residual(n);
    for (std::size_t round = 0; round < rounds_; ++round) {
      for (std::size_t c = 0; c < nc; ++c) {
        for (std::size_t i = 0; i < n; ++i) {
          const la::Vector p = Softmax(scores[i]);
          const double y =
              data.labels[i] == static_cast<int>(c) ? 1.0 : 0.0;
          residual[i] = y - p[c];
        }
        TreeOptions opts = tree_options_;
        opts.seed = rng.NextU64();
        RegressionTree tree(opts);
        ADARTS_RETURN_NOT_OK(tree.Fit(data.features, residual, rows));
        for (std::size_t i = 0; i < n; ++i) {
          scores[i][c] += learning_rate_ * tree.Predict(data.features[i]);
        }
        trees_[c].push_back(std::move(tree));
      }
    }
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (trees_.empty()) return UniformProbs(num_classes_);
    la::Vector scores(static_cast<std::size_t>(num_classes_), 0.0);
    for (std::size_t c = 0; c < trees_.size(); ++c) {
      for (const auto& tree : trees_[c]) {
        scores[c] += learning_rate_ * tree.Predict(x);
      }
    }
    return Softmax(std::move(scores));
  }

 private:
  std::size_t rounds_;
  double learning_rate_;
  std::uint64_t seed_;
  TreeOptions tree_options_;
  std::vector<std::vector<RegressionTree>> trees_;  // per class
  int num_classes_ = 0;
};

// ------------------------------------------------------ AdaBoost SAMME ----

class AdaBoostClassifier final : public Classifier {
 public:
  explicit AdaBoostClassifier(const HyperParams& p)
      : rounds_(static_cast<std::size_t>(GetParam(p, "num_rounds"))),
        seed_(static_cast<std::uint64_t>(GetParam(p, "seed"))) {
    tree_options_.max_depth = static_cast<std::size_t>(GetParam(p, "max_depth"));
    tree_options_.min_samples_leaf = 1;
  }

  std::string_view name() const override { return "adaboost"; }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    num_classes_ = data.num_classes;
    stages_.clear();
    const std::size_t n = data.size();
    la::Vector weights(n, 1.0 / static_cast<double>(n));
    std::vector<std::size_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0);
    Rng rng(seed_);
    const double k = static_cast<double>(num_classes_);

    for (std::size_t t = 0; t < rounds_; ++t) {
      TreeOptions opts = tree_options_;
      opts.seed = rng.NextU64();
      ClassificationTree tree(opts);
      ADARTS_RETURN_NOT_OK(tree.Fit(data, rows, weights));

      double err = 0.0;
      std::vector<bool> wrong(n);
      for (std::size_t i = 0; i < n; ++i) {
        wrong[i] = tree.Predict(data.features[i]) != data.labels[i];
        if (wrong[i]) err += weights[i];
      }
      if (err <= 1e-12) {
        stages_.push_back({std::move(tree), 1.0});
        break;  // perfect learner
      }
      // SAMME stopping rule: learner must beat random guessing.
      if (err >= 1.0 - 1.0 / k) break;
      const double alpha = std::log((1.0 - err) / err) + std::log(k - 1.0);
      stages_.push_back({std::move(tree), alpha});
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (wrong[i]) weights[i] *= std::exp(alpha);
        total += weights[i];
      }
      for (double& w : weights) w /= total;
    }
    if (stages_.empty()) {
      // Degenerate data: fall back to a single unweighted tree.
      TreeOptions opts = tree_options_;
      opts.seed = rng.NextU64();
      ClassificationTree tree(opts);
      ADARTS_RETURN_NOT_OK(tree.Fit(data, rows));
      stages_.push_back({std::move(tree), 1.0});
    }
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (stages_.empty()) return UniformProbs(num_classes_);
    la::Vector scores(static_cast<std::size_t>(num_classes_), 0.0);
    for (const auto& [tree, alpha] : stages_) {
      scores[static_cast<std::size_t>(tree.Predict(x))] += alpha;
    }
    const double total = std::accumulate(scores.begin(), scores.end(), 0.0);
    if (total <= 0.0) return UniformProbs(num_classes_);
    for (double& s : scores) s /= total;
    return scores;
  }

 private:
  struct Stage {
    ClassificationTree tree;
    double alpha;
  };
  std::size_t rounds_;
  std::uint64_t seed_;
  TreeOptions tree_options_;
  std::vector<Stage> stages_;
  int num_classes_ = 0;
};

// ----------------------------------------------------------------- MLP ----

class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(const HyperParams& p)
      : hidden_(static_cast<std::size_t>(GetParam(p, "hidden_units"))),
        learning_rate_(GetParam(p, "learning_rate")),
        epochs_(static_cast<std::size_t>(GetParam(p, "epochs"))),
        seed_(static_cast<std::uint64_t>(GetParam(p, "seed"))) {}

  std::string_view name() const override { return "mlp"; }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    num_classes_ = data.num_classes;
    const std::size_t d = data.dim();
    const auto nc = static_cast<std::size_t>(num_classes_);
    Rng rng(seed_);

    // He-style initialisation.
    w1_ = la::Matrix(hidden_, d);
    b1_.assign(hidden_, 0.0);
    w2_ = la::Matrix(nc, hidden_);
    b2_.assign(nc, 0.0);
    const double s1 = std::sqrt(2.0 / static_cast<double>(d));
    const double s2 = std::sqrt(2.0 / static_cast<double>(hidden_));
    for (std::size_t i = 0; i < hidden_; ++i)
      for (std::size_t j = 0; j < d; ++j) w1_(i, j) = rng.Normal(0.0, s1);
    for (std::size_t c = 0; c < nc; ++c)
      for (std::size_t i = 0; i < hidden_; ++i) w2_(c, i) = rng.Normal(0.0, s2);

    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    la::Vector h(hidden_), grad_out(nc), grad_h(hidden_);
    for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
      const double lr =
          learning_rate_ / (1.0 + 0.02 * static_cast<double>(epoch));
      rng.Shuffle(&order);
      for (std::size_t idx : order) {
        const la::Vector& x = data.features[idx];
        // Forward: ReLU hidden, softmax output.
        for (std::size_t i = 0; i < hidden_; ++i) {
          double s = b1_[i];
          for (std::size_t j = 0; j < d; ++j) s += w1_(i, j) * x[j];
          h[i] = s > 0.0 ? s : 0.0;
        }
        la::Vector scores(nc);
        for (std::size_t c = 0; c < nc; ++c) {
          double s = b2_[c];
          for (std::size_t i = 0; i < hidden_; ++i) s += w2_(c, i) * h[i];
          scores[c] = s;
        }
        const la::Vector probs = Softmax(std::move(scores));
        // Backward.
        for (std::size_t c = 0; c < nc; ++c) {
          grad_out[c] =
              probs[c] - (data.labels[idx] == static_cast<int>(c) ? 1.0 : 0.0);
          grad_out[c] = std::clamp(grad_out[c], -1.0, 1.0);
        }
        for (std::size_t i = 0; i < hidden_; ++i) {
          double g = 0.0;
          for (std::size_t c = 0; c < nc; ++c) g += grad_out[c] * w2_(c, i);
          grad_h[i] = h[i] > 0.0 ? std::clamp(g, -1.0, 1.0) : 0.0;
        }
        for (std::size_t c = 0; c < nc; ++c) {
          for (std::size_t i = 0; i < hidden_; ++i) {
            w2_(c, i) -= lr * grad_out[c] * h[i];
          }
          b2_[c] -= lr * grad_out[c];
        }
        for (std::size_t i = 0; i < hidden_; ++i) {
          if (grad_h[i] == 0.0) continue;
          for (std::size_t j = 0; j < d; ++j) {
            w1_(i, j) -= lr * grad_h[i] * x[j];
          }
          b1_[i] -= lr * grad_h[i];
        }
      }
    }
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (w1_.empty()) return UniformProbs(num_classes_);
    la::Vector h(hidden_);
    for (std::size_t i = 0; i < hidden_; ++i) {
      double s = b1_[i];
      for (std::size_t j = 0; j < x.size(); ++j) s += w1_(i, j) * x[j];
      h[i] = s > 0.0 ? s : 0.0;
    }
    la::Vector scores(static_cast<std::size_t>(num_classes_));
    for (std::size_t c = 0; c < scores.size(); ++c) {
      double s = b2_[c];
      for (std::size_t i = 0; i < hidden_; ++i) s += w2_(c, i) * h[i];
      scores[c] = s;
    }
    return Softmax(std::move(scores));
  }

 private:
  std::size_t hidden_;
  double learning_rate_;
  std::size_t epochs_;
  std::uint64_t seed_;
  la::Matrix w1_, w2_;
  la::Vector b1_, b2_;
  int num_classes_ = 0;
};

// ------------------------------------------------- logistic regression ----

class LogisticRegressionClassifier final : public Classifier {
 public:
  explicit LogisticRegressionClassifier(const HyperParams& p)
      : learning_rate_(GetParam(p, "learning_rate")),
        epochs_(static_cast<std::size_t>(GetParam(p, "epochs"))),
        l2_(GetParam(p, "l2")) {}

  std::string_view name() const override { return "logistic_regression"; }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    num_classes_ = data.num_classes;
    const std::size_t d = data.dim();
    const auto nc = static_cast<std::size_t>(num_classes_);
    w_ = la::Matrix(nc, d);
    b_.assign(nc, 0.0);
    const double n = static_cast<double>(data.size());

    la::Matrix grad_w(nc, d);
    la::Vector grad_b(nc);
    for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
      const double lr =
          learning_rate_ / (1.0 + 0.01 * static_cast<double>(epoch));
      grad_w = la::Matrix(nc, d);
      std::fill(grad_b.begin(), grad_b.end(), 0.0);
      for (std::size_t i = 0; i < data.size(); ++i) {
        const la::Vector& x = data.features[i];
        la::Vector scores(nc);
        for (std::size_t c = 0; c < nc; ++c) {
          double s = b_[c];
          for (std::size_t j = 0; j < d; ++j) s += w_(c, j) * x[j];
          scores[c] = s;
        }
        const la::Vector probs = Softmax(std::move(scores));
        for (std::size_t c = 0; c < nc; ++c) {
          const double g =
              probs[c] - (data.labels[i] == static_cast<int>(c) ? 1.0 : 0.0);
          for (std::size_t j = 0; j < d; ++j) grad_w(c, j) += g * x[j];
          grad_b[c] += g;
        }
      }
      for (std::size_t c = 0; c < nc; ++c) {
        for (std::size_t j = 0; j < d; ++j) {
          w_(c, j) -= lr * (grad_w(c, j) / n + l2_ * w_(c, j));
        }
        b_[c] -= lr * grad_b[c] / n;
      }
    }
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (w_.empty()) return UniformProbs(num_classes_);
    la::Vector scores(static_cast<std::size_t>(num_classes_));
    for (std::size_t c = 0; c < scores.size(); ++c) {
      double s = b_[c];
      for (std::size_t j = 0; j < x.size(); ++j) s += w_(c, j) * x[j];
      scores[c] = s;
    }
    return Softmax(std::move(scores));
  }

 private:
  double learning_rate_;
  std::size_t epochs_;
  double l2_;
  la::Matrix w_;
  la::Vector b_;
  int num_classes_ = 0;
};

// --------------------------------------------------------------- ridge ----

/// One-vs-rest ridge regression on +-1 targets with closed-form solution;
/// class scores pass through a softmax for calibrated-ish probabilities.
class RidgeClassifier final : public Classifier {
 public:
  explicit RidgeClassifier(const HyperParams& p)
      : alpha_(GetParam(p, "alpha")) {}

  std::string_view name() const override { return "ridge"; }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    num_classes_ = data.num_classes;
    const std::size_t d = data.dim();
    const std::size_t n = data.size();
    const auto nc = static_cast<std::size_t>(num_classes_);

    // Design matrix with an intercept column.
    la::Matrix design(n, d + 1);
    for (std::size_t i = 0; i < n; ++i) {
      design(i, 0) = 1.0;
      for (std::size_t j = 0; j < d; ++j) design(i, j + 1) = data.features[i][j];
    }
    w_ = la::Matrix(nc, d + 1);
    for (std::size_t c = 0; c < nc; ++c) {
      la::Vector y(n);
      for (std::size_t i = 0; i < n; ++i) {
        y[i] = data.labels[i] == static_cast<int>(c) ? 1.0 : -1.0;
      }
      ADARTS_ASSIGN_OR_RETURN(la::Vector coef,
                              la::SolveLeastSquares(design, y, alpha_));
      w_.SetRow(c, coef);
    }
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (w_.empty()) return UniformProbs(num_classes_);
    la::Vector scores(static_cast<std::size_t>(num_classes_));
    for (std::size_t c = 0; c < scores.size(); ++c) {
      double s = w_(c, 0);
      for (std::size_t j = 0; j < x.size(); ++j) s += w_(c, j + 1) * x[j];
      scores[c] = 2.0 * s;  // temperature for sharper softmax on +-1 scores
    }
    return Softmax(std::move(scores));
  }

 private:
  double alpha_;
  la::Matrix w_;
  int num_classes_ = 0;
};

// ---------------------------------------------------------- linear SVM ----

/// One-vs-rest linear SVM trained with the Pegasos subgradient method.
class LinearSvmClassifier final : public Classifier {
 public:
  explicit LinearSvmClassifier(const HyperParams& p)
      : c_(GetParam(p, "c")),
        epochs_(static_cast<std::size_t>(GetParam(p, "epochs"))),
        seed_(static_cast<std::uint64_t>(GetParam(p, "seed"))) {}

  std::string_view name() const override { return "linear_svm"; }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    num_classes_ = data.num_classes;
    const std::size_t d = data.dim();
    const auto nc = static_cast<std::size_t>(num_classes_);
    w_ = la::Matrix(nc, d);
    b_.assign(nc, 0.0);
    const double lambda = 1.0 / (c_ * static_cast<double>(data.size()));

    Rng rng(seed_);
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    std::size_t t = 1;
    for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
      rng.Shuffle(&order);
      for (std::size_t idx : order) {
        const double eta = 1.0 / (lambda * static_cast<double>(t));
        const la::Vector& x = data.features[idx];
        for (std::size_t cls = 0; cls < nc; ++cls) {
          const double y =
              data.labels[idx] == static_cast<int>(cls) ? 1.0 : -1.0;
          double margin = b_[cls];
          for (std::size_t j = 0; j < d; ++j) margin += w_(cls, j) * x[j];
          margin *= y;
          // w <- (1 - eta*lambda) w [+ eta*y*x if margin < 1]
          const double shrink = 1.0 - eta * lambda;
          for (std::size_t j = 0; j < d; ++j) w_(cls, j) *= shrink;
          if (margin < 1.0) {
            for (std::size_t j = 0; j < d; ++j) w_(cls, j) += eta * y * x[j];
            b_[cls] += eta * y;
          }
        }
        ++t;
      }
    }
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (w_.empty()) return UniformProbs(num_classes_);
    la::Vector scores(static_cast<std::size_t>(num_classes_));
    for (std::size_t c = 0; c < scores.size(); ++c) {
      double s = b_[c];
      for (std::size_t j = 0; j < x.size(); ++j) s += w_(c, j) * x[j];
      scores[c] = s;
    }
    return Softmax(std::move(scores));
  }

 private:
  double c_;
  std::size_t epochs_;
  std::uint64_t seed_;
  la::Matrix w_;
  la::Vector b_;
  int num_classes_ = 0;
};

// -------------------------------------------------------- Gaussian NB ----

class GaussianNbClassifier final : public Classifier {
 public:
  explicit GaussianNbClassifier(const HyperParams& p)
      : var_smoothing_(std::pow(10.0, GetParam(p, "var_smoothing_log10"))) {}

  std::string_view name() const override { return "gaussian_nb"; }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    num_classes_ = data.num_classes;
    const std::size_t d = data.dim();
    const auto nc = static_cast<std::size_t>(num_classes_);
    mean_ = la::Matrix(nc, d);
    var_ = la::Matrix(nc, d);
    log_prior_.assign(nc, -1e9);

    const std::vector<std::size_t> counts = data.ClassCounts();
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto c = static_cast<std::size_t>(data.labels[i]);
      for (std::size_t j = 0; j < d; ++j) {
        mean_(c, j) += data.features[i][j];
      }
    }
    for (std::size_t c = 0; c < nc; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t j = 0; j < d; ++j) {
        mean_(c, j) /= static_cast<double>(counts[c]);
      }
      log_prior_[c] = std::log(static_cast<double>(counts[c]) /
                               static_cast<double>(data.size()));
    }
    // Global max variance for the smoothing floor.
    double max_var = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto c = static_cast<std::size_t>(data.labels[i]);
      for (std::size_t j = 0; j < d; ++j) {
        const double dv = data.features[i][j] - mean_(c, j);
        var_(c, j) += dv * dv;
      }
    }
    for (std::size_t c = 0; c < nc; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t j = 0; j < d; ++j) {
        var_(c, j) /= static_cast<double>(counts[c]);
        max_var = std::max(max_var, var_(c, j));
      }
    }
    const double floor = var_smoothing_ * std::max(max_var, 1.0);
    for (std::size_t c = 0; c < nc; ++c) {
      for (std::size_t j = 0; j < d; ++j) {
        var_(c, j) += floor;
      }
    }
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (mean_.empty()) return UniformProbs(num_classes_);
    la::Vector scores(static_cast<std::size_t>(num_classes_));
    for (std::size_t c = 0; c < scores.size(); ++c) {
      double ll = log_prior_[c];
      for (std::size_t j = 0; j < x.size(); ++j) {
        const double v = var_(c, j);
        const double dv = x[j] - mean_(c, j);
        ll += -0.5 * (std::log(2.0 * 3.14159265358979323846 * v) +
                      dv * dv / v);
      }
      scores[c] = ll;
    }
    return Softmax(std::move(scores));
  }

 private:
  double var_smoothing_;
  la::Matrix mean_, var_;
  la::Vector log_prior_;
  int num_classes_ = 0;
};

// ------------------------------------------------------------------ LDA ----

class LdaClassifier final : public Classifier {
 public:
  explicit LdaClassifier(const HyperParams& p)
      : shrinkage_(GetParam(p, "shrinkage")) {}

  std::string_view name() const override { return "lda"; }

  Status Fit(const Dataset& data) override {
    ADARTS_RETURN_NOT_OK(data.Validate());
    num_classes_ = data.num_classes;
    const std::size_t d = data.dim();
    const auto nc = static_cast<std::size_t>(num_classes_);
    means_ = la::Matrix(nc, d);
    log_prior_.assign(nc, -1e9);

    const std::vector<std::size_t> counts = data.ClassCounts();
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto c = static_cast<std::size_t>(data.labels[i]);
      for (std::size_t j = 0; j < d; ++j) means_(c, j) += data.features[i][j];
    }
    for (std::size_t c = 0; c < nc; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t j = 0; j < d; ++j) {
        means_(c, j) /= static_cast<double>(counts[c]);
      }
      log_prior_[c] = std::log(static_cast<double>(counts[c]) /
                               static_cast<double>(data.size()));
    }

    // Pooled within-class covariance, shrunk towards its diagonal.
    la::Matrix cov(d, d);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto c = static_cast<std::size_t>(data.labels[i]);
      for (std::size_t a = 0; a < d; ++a) {
        const double da = data.features[i][a] - means_(c, a);
        for (std::size_t b = a; b < d; ++b) {
          cov(a, b) += da * (data.features[i][b] - means_(c, b));
        }
      }
    }
    const double denom =
        std::max<double>(static_cast<double>(data.size()) -
                             static_cast<double>(nc),
                         1.0);
    double trace = 0.0;
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = a; b < d; ++b) {
        cov(a, b) /= denom;
        cov(b, a) = cov(a, b);
      }
      trace += cov(a, a);
    }
    const double mu = trace / static_cast<double>(d);
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = 0; b < d; ++b) {
        cov(a, b) *= (1.0 - shrinkage_);
        if (a == b) cov(a, b) += shrinkage_ * mu + 1e-6;
      }
    }
    ADARTS_ASSIGN_OR_RETURN(cov_inv_, la::Inverse(cov));
    return Status::OK();
  }

  la::Vector PredictProba(const la::Vector& x) const override {
    if (means_.empty()) return UniformProbs(num_classes_);
    la::Vector scores(static_cast<std::size_t>(num_classes_));
    for (std::size_t c = 0; c < scores.size(); ++c) {
      // delta_c(x) = x^T S^-1 mu_c - mu_c^T S^-1 mu_c / 2 + log prior.
      const la::Vector mu = means_.Row(c);
      const la::Vector smu = cov_inv_.MultiplyVec(mu);
      scores[c] = la::Dot(x, smu) - 0.5 * la::Dot(mu, smu) + log_prior_[c];
    }
    return Softmax(std::move(scores));
  }

 private:
  double shrinkage_;
  la::Matrix means_;
  la::Matrix cov_inv_;
  la::Vector log_prior_;
  int num_classes_ = 0;
};

}  // namespace

std::unique_ptr<Classifier> CreateClassifier(ClassifierKind kind,
                                             const HyperParams& params) {
  const HyperParams p = ResolveParams(kind, params);
  switch (kind) {
    case ClassifierKind::kKnn:
      return std::make_unique<KnnClassifier>(p);
    case ClassifierKind::kDecisionTree:
      return std::make_unique<DecisionTreeClassifier>(p);
    case ClassifierKind::kRandomForest:
      return std::make_unique<ForestClassifier>(p, /*extra_trees=*/false);
    case ClassifierKind::kExtraTrees:
      return std::make_unique<ForestClassifier>(p, /*extra_trees=*/true);
    case ClassifierKind::kGradientBoosting:
      return std::make_unique<GradientBoostingClassifier>(p);
    case ClassifierKind::kAdaBoost:
      return std::make_unique<AdaBoostClassifier>(p);
    case ClassifierKind::kMlp:
      return std::make_unique<MlpClassifier>(p);
    case ClassifierKind::kLogisticRegression:
      return std::make_unique<LogisticRegressionClassifier>(p);
    case ClassifierKind::kRidge:
      return std::make_unique<RidgeClassifier>(p);
    case ClassifierKind::kLinearSvm:
      return std::make_unique<LinearSvmClassifier>(p);
    case ClassifierKind::kGaussianNb:
      return std::make_unique<GaussianNbClassifier>(p);
    case ClassifierKind::kLda:
      return std::make_unique<LdaClassifier>(p);
  }
  return nullptr;
}

}  // namespace adarts::ml
