#include "ml/dataset.h"

#include <algorithm>

namespace adarts::ml {

Dataset Dataset::Subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.num_classes = num_classes;
  out.features.reserve(indices.size());
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    out.features.push_back(features[i]);
    out.labels.push_back(labels[i]);
  }
  return out;
}

Status Dataset::Validate() const {
  if (features.size() != labels.size()) {
    return Status::InvalidArgument("features/labels size mismatch");
  }
  if (num_classes <= 0) return Status::InvalidArgument("num_classes <= 0");
  const std::size_t d = dim();
  for (const auto& f : features) {
    if (f.size() != d) {
      return Status::InvalidArgument("inconsistent feature dimensionality");
    }
  }
  for (int y : labels) {
    if (y < 0 || y >= num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
  }
  return Status::OK();
}

std::vector<std::size_t> Dataset::ClassCounts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes), 0);
  for (int y : labels) ++counts[static_cast<std::size_t>(y)];
  return counts;
}

namespace {

/// Per-class index lists, each shuffled.
std::vector<std::vector<std::size_t>> ShuffledClassIndices(const Dataset& data,
                                                           Rng* rng) {
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(data.num_classes));
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.labels[i])].push_back(i);
  }
  for (auto& idx : by_class) rng->Shuffle(&idx);
  return by_class;
}

}  // namespace

Result<TrainTestSplit> StratifiedSplit(const Dataset& data,
                                       double train_fraction, Rng* rng) {
  ADARTS_RETURN_NOT_OK(data.Validate());
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  std::vector<std::size_t> train_idx, test_idx;
  for (auto& idx : ShuffledClassIndices(data, rng)) {
    const auto cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(idx.size()) + 0.5);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      (i < cut ? train_idx : test_idx).push_back(idx[i]);
    }
  }
  TrainTestSplit split;
  split.train = data.Subset(train_idx);
  split.test = data.Subset(test_idx);
  return split;
}

Result<std::vector<std::vector<std::size_t>>> StratifiedKFoldIndices(
    const Dataset& data, std::size_t k, Rng* rng) {
  ADARTS_RETURN_NOT_OK(data.Validate());
  if (k < 2) return Status::InvalidArgument("k-fold requires k >= 2");
  if (k > data.size()) return Status::InvalidArgument("k larger than dataset");
  std::vector<std::vector<std::size_t>> folds(k);
  // Round-robin assignment within each class keeps folds stratified.
  for (auto& idx : ShuffledClassIndices(data, rng)) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      folds[i % k].push_back(idx[i]);
    }
  }
  return folds;
}

Result<std::vector<Dataset>> GrowingPartialSets(const Dataset& data,
                                                std::size_t m, Rng* rng) {
  ADARTS_RETURN_NOT_OK(data.Validate());
  if (m == 0) return Status::InvalidArgument("need at least one partial set");
  // Assign each sample to one of m chunks (stratified round-robin), then
  // emit cumulative unions chunk_1, chunk_1+2, ...
  std::vector<std::vector<std::size_t>> chunks(m);
  for (auto& idx : ShuffledClassIndices(data, rng)) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      chunks[i % m].push_back(idx[i]);
    }
  }
  std::vector<Dataset> out;
  out.reserve(m);
  std::vector<std::size_t> cumulative;
  for (std::size_t c = 0; c < m; ++c) {
    cumulative.insert(cumulative.end(), chunks[c].begin(), chunks[c].end());
    out.push_back(data.Subset(cumulative));
  }
  return out;
}

}  // namespace adarts::ml
