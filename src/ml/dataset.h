#ifndef ADARTS_ML_DATASET_H_
#define ADARTS_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "la/vector_ops.h"

namespace adarts::ml {

/// A labeled classification dataset: one feature vector and one integer
/// class label per sample. Labels are dense in [0, num_classes).
struct Dataset {
  std::vector<la::Vector> features;
  std::vector<int> labels;
  int num_classes = 0;

  std::size_t size() const { return features.size(); }
  bool empty() const { return features.empty(); }
  std::size_t dim() const { return features.empty() ? 0 : features[0].size(); }

  /// Subset by sample indices.
  Dataset Subset(const std::vector<std::size_t>& indices) const;

  /// Validates shape consistency and label range.
  Status Validate() const;

  /// Per-class sample counts.
  std::vector<std::size_t> ClassCounts() const;
};

/// Stratified train/test split: each class contributes `train_fraction` of
/// its samples to the train side (paper uses 65/35).
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
Result<TrainTestSplit> StratifiedSplit(const Dataset& data,
                                       double train_fraction, Rng* rng);

/// Stratified k-fold indices: fold f's test indices preserve the class
/// distribution of the full dataset (Algorithm 1, line 5).
Result<std::vector<std::vector<std::size_t>>> StratifiedKFoldIndices(
    const Dataset& data, std::size_t k, Rng* rng);

/// Splits the dataset into `m` stratified, *cumulative* partial training
/// sets S_1 c S_2 c ... c S_m = data, the growing subsets consumed by
/// ModelRace's outer loop.
Result<std::vector<Dataset>> GrowingPartialSets(const Dataset& data,
                                                std::size_t m, Rng* rng);

}  // namespace adarts::ml

#endif  // ADARTS_ML_DATASET_H_
