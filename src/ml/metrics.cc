#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace adarts::ml {

Result<ClassificationReport> ComputeClassificationReport(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    int num_classes) {
  if (y_true.size() != y_pred.size() || y_true.empty()) {
    return Status::InvalidArgument("label vectors must match and be non-empty");
  }
  const auto nc = static_cast<std::size_t>(num_classes);
  std::vector<std::size_t> tp(nc, 0), fp(nc, 0), fn(nc, 0), support(nc, 0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const int t = y_true[i];
    const int p = y_pred[i];
    if (t < 0 || t >= num_classes || p < 0 || p >= num_classes) {
      return Status::OutOfRange("label outside [0, num_classes)");
    }
    ++support[static_cast<std::size_t>(t)];
    if (t == p) {
      ++tp[static_cast<std::size_t>(t)];
      ++correct;
    } else {
      ++fp[static_cast<std::size_t>(p)];
      ++fn[static_cast<std::size_t>(t)];
    }
  }

  ClassificationReport report;
  report.accuracy =
      static_cast<double>(correct) / static_cast<double>(y_true.size());
  const double total = static_cast<double>(y_true.size());
  for (std::size_t c = 0; c < nc; ++c) {
    if (support[c] == 0) continue;
    const double w = static_cast<double>(support[c]) / total;
    const double denom_p = static_cast<double>(tp[c] + fp[c]);
    const double denom_r = static_cast<double>(tp[c] + fn[c]);
    const double prec = denom_p > 0.0 ? static_cast<double>(tp[c]) / denom_p
                                      : 0.0;
    const double rec = denom_r > 0.0 ? static_cast<double>(tp[c]) / denom_r
                                     : 0.0;
    const double f1 =
        (prec + rec) > 0.0 ? 2.0 * prec * rec / (prec + rec) : 0.0;
    report.precision += w * prec;
    report.recall += w * rec;
    report.f1 += w * f1;
  }
  return report;
}

namespace {

/// Rank (1-based) of `true_class` when classes are sorted by descending
/// probability (stable tie-break by class index).
std::size_t RankOfTrueClass(const la::Vector& proba, int true_class) {
  const double p_true = proba[static_cast<std::size_t>(true_class)];
  std::size_t rank = 1;
  for (std::size_t c = 0; c < proba.size(); ++c) {
    if (static_cast<int>(c) == true_class) continue;
    if (proba[c] > p_true ||
        (proba[c] == p_true && static_cast<int>(c) < true_class)) {
      ++rank;
    }
  }
  return rank;
}

}  // namespace

Result<double> RecallAtK(const std::vector<int>& y_true,
                         const std::vector<la::Vector>& probas,
                         std::size_t k) {
  if (y_true.size() != probas.size() || y_true.empty()) {
    return Status::InvalidArgument("labels/probabilities size mismatch");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (RankOfTrueClass(probas[i], y_true[i]) <= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

Result<double> MeanReciprocalRank(const std::vector<int>& y_true,
                                  const std::vector<la::Vector>& probas) {
  if (y_true.size() != probas.size() || y_true.empty()) {
    return Status::InvalidArgument("labels/probabilities size mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    s += 1.0 / static_cast<double>(RankOfTrueClass(probas[i], y_true[i]));
  }
  return s / static_cast<double>(y_true.size());
}

namespace {

/// Regularised incomplete beta function I_x(a, b) via the continued-fraction
/// expansion (Numerical Recipes style), used for the Student-t CDF.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front =
      std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

/// Two-sided p-value of Student's t with `df` degrees of freedom.
double StudentTTwoSidedP(double t, double df) {
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

}  // namespace

double WelchTTestPValue(const la::Vector& a, const la::Vector& b) {
  if (a.size() < 2 || b.size() < 2) return 1.0;
  const double ma = la::Mean(a);
  const double mb = la::Mean(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  // Unbiased variances.
  double va = 0.0, vb = 0.0;
  for (double x : a) va += (x - ma) * (x - ma);
  for (double x : b) vb += (x - mb) * (x - mb);
  va /= (na - 1.0);
  vb /= (nb - 1.0);
  const double se2 = va / na + vb / nb;
  if (se2 <= 0.0) return ma == mb ? 1.0 : 0.0;
  const double t = (ma - mb) / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0);
  const double df = den > 0.0 ? num / den : na + nb - 2.0;
  return StudentTTwoSidedP(t, df);
}

}  // namespace adarts::ml
