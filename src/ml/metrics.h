#ifndef ADARTS_ML_METRICS_H_
#define ADARTS_ML_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/vector_ops.h"

namespace adarts::ml {

/// Weighted classification metrics (weighted by class support, as the paper
/// uses to account for label imbalance).
struct ClassificationReport {
  double accuracy = 0.0;
  double precision = 0.0;  ///< weighted average over classes
  double recall = 0.0;     ///< weighted average over classes
  double f1 = 0.0;         ///< weighted average over classes
};

/// Computes the weighted report from true and predicted labels.
Result<ClassificationReport> ComputeClassificationReport(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    int num_classes);

/// Recall@k: fraction of samples whose true class is among the k classes
/// with the highest predicted probability. `probas[i]` has one probability
/// per class.
Result<double> RecallAtK(const std::vector<int>& y_true,
                         const std::vector<la::Vector>& probas, std::size_t k);

/// Mean reciprocal rank of the true class in the probability ranking.
Result<double> MeanReciprocalRank(const std::vector<int>& y_true,
                                  const std::vector<la::Vector>& probas);

/// Two-sample Welch t-test p-value (two-sided) for "do these score samples
/// come from distributions with equal means?" — the pruning test of
/// Algorithm 1, line 13. Returns 1.0 when either sample is degenerate.
double WelchTTestPValue(const la::Vector& a, const la::Vector& b);

}  // namespace adarts::ml

#endif  // ADARTS_ML_METRICS_H_
