#include "ml/scaler.h"

#include <algorithm>
#include <cmath>

#include "la/matrix.h"
#include "la/pca.h"

namespace adarts::ml {

std::string_view ScalerKindToString(ScalerKind kind) {
  switch (kind) {
    case ScalerKind::kIdentity:
      return "identity";
    case ScalerKind::kStandard:
      return "standard";
    case ScalerKind::kMinMax:
      return "minmax";
    case ScalerKind::kRobust:
      return "robust";
    case ScalerKind::kL2Norm:
      return "l2norm";
    case ScalerKind::kPca:
      return "pca";
  }
  return "unknown";
}

std::vector<ScalerKind> AllScalerKinds() {
  std::vector<ScalerKind> out;
  for (int i = 0; i < kNumScalerKinds; ++i) {
    out.push_back(static_cast<ScalerKind>(i));
  }
  return out;
}

std::vector<la::Vector> Scaler::TransformBatch(
    const std::vector<la::Vector>& x) const {
  std::vector<la::Vector> out;
  out.reserve(x.size());
  for (const auto& v : x) out.push_back(Transform(v));
  return out;
}

namespace {

Status CheckNonEmpty(const std::vector<la::Vector>& x) {
  if (x.empty() || x[0].empty()) {
    return Status::InvalidArgument("scaler fit on empty data");
  }
  return Status::OK();
}

class IdentityScaler final : public Scaler {
 public:
  std::string_view name() const override { return "identity"; }
  Status Fit(const std::vector<la::Vector>& x) override {
    return CheckNonEmpty(x);
  }
  la::Vector Transform(const la::Vector& x) const override { return x; }
};

class StandardScaler final : public Scaler {
 public:
  std::string_view name() const override { return "standard"; }
  Status Fit(const std::vector<la::Vector>& x) override {
    ADARTS_RETURN_NOT_OK(CheckNonEmpty(x));
    const std::size_t d = x[0].size();
    mean_.assign(d, 0.0);
    sd_.assign(d, 0.0);
    for (const auto& v : x) {
      for (std::size_t j = 0; j < d; ++j) mean_[j] += v[j];
    }
    for (double& m : mean_) m /= static_cast<double>(x.size());
    for (const auto& v : x) {
      for (std::size_t j = 0; j < d; ++j) {
        sd_[j] += (v[j] - mean_[j]) * (v[j] - mean_[j]);
      }
    }
    for (double& s : sd_) {
      s = std::sqrt(s / static_cast<double>(x.size()));
      if (s <= 1e-12) s = 1.0;
    }
    return Status::OK();
  }
  la::Vector Transform(const la::Vector& x) const override {
    la::Vector out(x.size());
    for (std::size_t j = 0; j < x.size(); ++j) {
      out[j] = (x[j] - mean_[j]) / sd_[j];
    }
    return out;
  }

 private:
  la::Vector mean_, sd_;
};

class MinMaxScaler final : public Scaler {
 public:
  std::string_view name() const override { return "minmax"; }
  Status Fit(const std::vector<la::Vector>& x) override {
    ADARTS_RETURN_NOT_OK(CheckNonEmpty(x));
    const std::size_t d = x[0].size();
    lo_.assign(d, 1e300);
    span_.assign(d, 0.0);
    la::Vector hi(d, -1e300);
    for (const auto& v : x) {
      for (std::size_t j = 0; j < d; ++j) {
        lo_[j] = std::min(lo_[j], v[j]);
        hi[j] = std::max(hi[j], v[j]);
      }
    }
    for (std::size_t j = 0; j < d; ++j) {
      span_[j] = hi[j] - lo_[j];
      if (span_[j] <= 1e-12) span_[j] = 1.0;
    }
    return Status::OK();
  }
  la::Vector Transform(const la::Vector& x) const override {
    la::Vector out(x.size());
    for (std::size_t j = 0; j < x.size(); ++j) {
      out[j] = (x[j] - lo_[j]) / span_[j];
    }
    return out;
  }

 private:
  la::Vector lo_, span_;
};

class RobustScaler final : public Scaler {
 public:
  std::string_view name() const override { return "robust"; }
  Status Fit(const std::vector<la::Vector>& x) override {
    ADARTS_RETURN_NOT_OK(CheckNonEmpty(x));
    const std::size_t d = x[0].size();
    median_.assign(d, 0.0);
    iqr_.assign(d, 1.0);
    la::Vector col(x.size());
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t i = 0; i < x.size(); ++i) col[i] = x[i][j];
      std::sort(col.begin(), col.end());
      const auto q = [&](double frac) {
        const double pos = frac * static_cast<double>(col.size() - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, col.size() - 1);
        const double t = pos - static_cast<double>(lo);
        return col[lo] * (1.0 - t) + col[hi] * t;
      };
      median_[j] = q(0.5);
      iqr_[j] = q(0.75) - q(0.25);
      if (iqr_[j] <= 1e-12) iqr_[j] = 1.0;
    }
    return Status::OK();
  }
  la::Vector Transform(const la::Vector& x) const override {
    la::Vector out(x.size());
    for (std::size_t j = 0; j < x.size(); ++j) {
      out[j] = (x[j] - median_[j]) / iqr_[j];
    }
    return out;
  }

 private:
  la::Vector median_, iqr_;
};

class L2NormScaler final : public Scaler {
 public:
  std::string_view name() const override { return "l2norm"; }
  Status Fit(const std::vector<la::Vector>& x) override {
    return CheckNonEmpty(x);
  }
  la::Vector Transform(const la::Vector& x) const override {
    const double n = la::Norm2(x);
    if (n <= 1e-12) return x;
    la::Vector out(x.size());
    for (std::size_t j = 0; j < x.size(); ++j) out[j] = x[j] / n;
    return out;
  }
};

class PcaScaler final : public Scaler {
 public:
  explicit PcaScaler(double keep_fraction)
      : keep_fraction_(std::clamp(keep_fraction, 0.05, 1.0)) {}
  std::string_view name() const override { return "pca"; }
  Status Fit(const std::vector<la::Vector>& x) override {
    ADARTS_RETURN_NOT_OK(CheckNonEmpty(x));
    ADARTS_RETURN_NOT_OK(standard_.Fit(x));
    const std::vector<la::Vector> z = standard_.TransformBatch(x);
    const std::size_t d = z[0].size();
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(keep_fraction_ * static_cast<double>(d)));
    la::Matrix m(z.size(), d);
    for (std::size_t i = 0; i < z.size(); ++i) m.SetRow(i, z[i]);
    return pca_.Fit(m, k);
  }
  la::Vector Transform(const la::Vector& x) const override {
    const la::Vector z = standard_.Transform(x);
    la::Matrix m(1, z.size());
    m.SetRow(0, z);
    auto projected = pca_.Transform(m);
    if (!projected.ok()) return z;
    return projected->Row(0);
  }

 private:
  double keep_fraction_;
  StandardScaler standard_;
  la::Pca pca_;
};

}  // namespace

std::unique_ptr<Scaler> CreateScaler(ScalerKind kind, double param) {
  switch (kind) {
    case ScalerKind::kIdentity:
      return std::make_unique<IdentityScaler>();
    case ScalerKind::kStandard:
      return std::make_unique<StandardScaler>();
    case ScalerKind::kMinMax:
      return std::make_unique<MinMaxScaler>();
    case ScalerKind::kRobust:
      return std::make_unique<RobustScaler>();
    case ScalerKind::kL2Norm:
      return std::make_unique<L2NormScaler>();
    case ScalerKind::kPca:
      return std::make_unique<PcaScaler>(param);
  }
  return nullptr;
}

}  // namespace adarts::ml
