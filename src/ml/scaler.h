#ifndef ADARTS_ML_SCALER_H_
#define ADARTS_ML_SCALER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "la/vector_ops.h"

namespace adarts::ml {

/// Feature-scaler families in ModelRace's pipeline search space. The paper's
/// pipelines are <classifier, hyperparameters, scaler>; scalers normalise
/// heterogeneous feature dimensions so distances are meaningful.
enum class ScalerKind {
  kIdentity = 0,  ///< pass-through
  kStandard,      ///< z-score per feature
  kMinMax,        ///< [0, 1] per feature
  kRobust,        ///< median / IQR per feature
  kL2Norm,        ///< unit L2 norm per sample
  kPca,           ///< standardise then project onto principal axes
};

inline constexpr int kNumScalerKinds = 6;

std::string_view ScalerKindToString(ScalerKind kind);
std::vector<ScalerKind> AllScalerKinds();

/// A fitted feature transformation. Fit learns statistics on training data;
/// Transform applies them to any vector of the same dimensionality.
class Scaler {
 public:
  virtual ~Scaler() = default;
  virtual std::string_view name() const = 0;
  virtual Status Fit(const std::vector<la::Vector>& x) = 0;
  virtual la::Vector Transform(const la::Vector& x) const = 0;

  /// Applies Transform to every sample.
  std::vector<la::Vector> TransformBatch(
      const std::vector<la::Vector>& x) const;
};

/// Instantiates a scaler. `param` configures the family where applicable
/// (for kPca it is the fraction of dimensions to keep, in (0, 1]).
std::unique_ptr<Scaler> CreateScaler(ScalerKind kind, double param = 0.5);

}  // namespace adarts::ml

#endif  // ADARTS_ML_SCALER_H_
