#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace adarts::ml {

namespace {

/// Candidate split thresholds for one feature over the given rows: either
/// quantile midpoints (exact mode) or one uniform random draw (extra-trees).
la::Vector CandidateThresholds(const std::vector<la::Vector>& x,
                               const std::vector<std::size_t>& rows,
                               std::size_t feature, std::size_t max_candidates,
                               bool random_mode, Rng* rng) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t r : rows) {
    lo = std::min(lo, x[r][feature]);
    hi = std::max(hi, x[r][feature]);
  }
  if (!(hi > lo)) return {};
  if (random_mode) {
    return {rng->Uniform(lo, hi)};
  }
  la::Vector values;
  values.reserve(rows.size());
  for (std::size_t r : rows) values.push_back(x[r][feature]);
  std::sort(values.begin(), values.end());
  la::Vector out;
  const std::size_t steps = std::min(max_candidates, values.size() - 1);
  for (std::size_t s = 1; s <= steps; ++s) {
    const std::size_t idx = s * (values.size() - 1) / (steps + 1) + 1;
    const double t = 0.5 * (values[idx - 1] + values[idx]);
    if (out.empty() || t != out.back()) out.push_back(t);
  }
  return out;
}

/// Features to consider at one split, without replacement.
std::vector<std::size_t> SampleFeatures(std::size_t dim,
                                        double feature_fraction, Rng* rng) {
  auto count = static_cast<std::size_t>(
      std::ceil(feature_fraction * static_cast<double>(dim)));
  count = std::clamp<std::size_t>(count, 1, dim);
  if (count == dim) {
    std::vector<std::size_t> all(dim);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  return rng->SampleWithoutReplacement(dim, count);
}

double GiniFromCounts(const la::Vector& counts, double total) {
  if (total <= 0.0) return 0.0;
  double g = 1.0;
  for (double c : counts) {
    const double p = c / total;
    g -= p * p;
  }
  return g;
}

}  // namespace

ClassificationTree::ClassificationTree(TreeOptions options)
    : options_(options) {}

Status ClassificationTree::Fit(const Dataset& data,
                               const std::vector<std::size_t>& rows,
                               const la::Vector& weights) {
  ADARTS_RETURN_NOT_OK(data.Validate());
  if (rows.empty()) return Status::InvalidArgument("no training rows");
  if (!weights.empty() && weights.size() != data.size()) {
    return Status::InvalidArgument("weights size mismatch");
  }
  num_classes_ = data.num_classes;
  nodes_.clear();
  Rng rng(options_.seed);
  std::vector<std::size_t> work = rows;
  Build(data, work, weights, 0, &rng);
  return Status::OK();
}

int ClassificationTree::Build(const Dataset& data,
                              std::vector<std::size_t>& rows,
                              const la::Vector& weights, std::size_t depth,
                              Rng* rng) {
  // Weighted class histogram for this node.
  la::Vector counts(static_cast<std::size_t>(num_classes_), 0.0);
  double total = 0.0;
  for (std::size_t r : rows) {
    const double w = weights.empty() ? 1.0 : weights[r];
    counts[static_cast<std::size_t>(data.labels[r])] += w;
    total += w;
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    la::Vector probs = counts;
    const double denom = total > 0.0 ? total : 1.0;
    for (double& p : probs) p /= denom;
    nodes_[node_id].class_probs = std::move(probs);
  }

  const double node_gini = GiniFromCounts(counts, total);
  if (depth >= options_.max_depth || node_gini <= 1e-12 ||
      rows.size() < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  // Find the best split among sampled features and candidate thresholds.
  double best_score = node_gini - 1e-9;  // must strictly improve
  int best_feature = -1;
  double best_threshold = 0.0;

  for (std::size_t f :
       SampleFeatures(data.dim(), options_.feature_fraction, rng)) {
    const la::Vector thresholds = CandidateThresholds(
        data.features, rows, f, options_.threshold_candidates,
        options_.random_thresholds, rng);
    for (double t : thresholds) {
      la::Vector left_counts(static_cast<std::size_t>(num_classes_), 0.0);
      double left_total = 0.0;
      std::size_t left_n = 0;
      for (std::size_t r : rows) {
        if (data.features[r][f] <= t) {
          const double w = weights.empty() ? 1.0 : weights[r];
          left_counts[static_cast<std::size_t>(data.labels[r])] += w;
          left_total += w;
          ++left_n;
        }
      }
      if (left_n < options_.min_samples_leaf ||
          rows.size() - left_n < options_.min_samples_leaf) {
        continue;
      }
      la::Vector right_counts(static_cast<std::size_t>(num_classes_), 0.0);
      for (std::size_t c = 0; c < left_counts.size(); ++c) {
        right_counts[c] = counts[c] - left_counts[c];
      }
      const double right_total = total - left_total;
      const double score =
          (left_total * GiniFromCounts(left_counts, left_total) +
           right_total * GiniFromCounts(right_counts, right_total)) /
          (total > 0.0 ? total : 1.0);
      if (score < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = t;
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition rows (in place) and recurse.
  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    (data.features[r][static_cast<std::size_t>(best_feature)] <=
             best_threshold
         ? left_rows
         : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(data, left_rows, weights, depth + 1, rng);
  nodes_[node_id].left = left;
  const int right = Build(data, right_rows, weights, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

la::Vector ClassificationTree::PredictProba(const la::Vector& x) const {
  if (nodes_.empty()) {
    return la::Vector(static_cast<std::size_t>(num_classes_),
                      num_classes_ > 0 ? 1.0 / num_classes_ : 0.0);
  }
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    cur = x[static_cast<std::size_t>(nodes_[cur].feature)] <=
                  nodes_[cur].threshold
              ? nodes_[cur].left
              : nodes_[cur].right;
  }
  return nodes_[cur].class_probs;
}

int ClassificationTree::Predict(const la::Vector& x) const {
  const la::Vector probs = PredictProba(x);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

RegressionTree::RegressionTree(TreeOptions options) : options_(options) {}

Status RegressionTree::Fit(const std::vector<la::Vector>& x,
                           const la::Vector& targets,
                           const std::vector<std::size_t>& rows) {
  if (x.empty() || x.size() != targets.size()) {
    return Status::InvalidArgument("regression tree input mismatch");
  }
  if (rows.empty()) return Status::InvalidArgument("no training rows");
  nodes_.clear();
  Rng rng(options_.seed);
  std::vector<std::size_t> work = rows;
  Build(x, targets, work, 0, &rng);
  return Status::OK();
}

int RegressionTree::Build(const std::vector<la::Vector>& x,
                          const la::Vector& targets,
                          std::vector<std::size_t>& rows, std::size_t depth,
                          Rng* rng) {
  double sum = 0.0, sq = 0.0;
  for (std::size_t r : rows) {
    sum += targets[r];
    sq += targets[r] * targets[r];
  }
  const double n = static_cast<double>(rows.size());
  const double mean = sum / n;
  const double sse = sq - sum * sum / n;

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = mean;

  if (depth >= options_.max_depth || sse <= 1e-12 ||
      rows.size() < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  double best_sse = sse - 1e-9;
  int best_feature = -1;
  double best_threshold = 0.0;

  for (std::size_t f :
       SampleFeatures(x[0].size(), options_.feature_fraction, rng)) {
    const la::Vector thresholds =
        CandidateThresholds(x, rows, f, options_.threshold_candidates,
                            options_.random_thresholds, rng);
    for (double t : thresholds) {
      double lsum = 0.0, lsq = 0.0;
      std::size_t ln = 0;
      for (std::size_t r : rows) {
        if (x[r][f] <= t) {
          lsum += targets[r];
          lsq += targets[r] * targets[r];
          ++ln;
        }
      }
      const std::size_t rn = rows.size() - ln;
      if (ln < options_.min_samples_leaf || rn < options_.min_samples_leaf) {
        continue;
      }
      const double rsum = sum - lsum;
      const double rsq = sq - lsq;
      const double lsse = lsq - lsum * lsum / static_cast<double>(ln);
      const double rsse = rsq - rsum * rsum / static_cast<double>(rn);
      if (lsse + rsse < best_sse) {
        best_sse = lsse + rsse;
        best_feature = static_cast<int>(f);
        best_threshold = t;
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    (x[r][static_cast<std::size_t>(best_feature)] <= best_threshold
         ? left_rows
         : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(x, targets, left_rows, depth + 1, rng);
  nodes_[node_id].left = left;
  const int right = Build(x, targets, right_rows, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const la::Vector& x) const {
  if (nodes_.empty()) return 0.0;
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    cur = x[static_cast<std::size_t>(nodes_[cur].feature)] <=
                  nodes_[cur].threshold
              ? nodes_[cur].left
              : nodes_[cur].right;
  }
  return nodes_[cur].value;
}

}  // namespace adarts::ml
