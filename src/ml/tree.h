#ifndef ADARTS_ML_TREE_H_
#define ADARTS_ML_TREE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "la/vector_ops.h"
#include "ml/dataset.h"

namespace adarts::ml {

/// Options shared by the classification and regression trees.
struct TreeOptions {
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 1;
  /// Fraction of features examined per split (random forests subsample).
  double feature_fraction = 1.0;
  /// Extra-trees mode: pick one random threshold per feature instead of the
  /// best of the candidate thresholds.
  bool random_thresholds = false;
  /// Number of candidate thresholds per feature in exact mode.
  std::size_t threshold_candidates = 16;
  std::uint64_t seed = 1;
};

/// CART classification tree (Gini impurity), supporting sample weights
/// (AdaBoost) and row subsets (bagging).
class ClassificationTree {
 public:
  explicit ClassificationTree(TreeOptions options = {});

  /// Fits on `rows` of `data` with optional per-sample weights (empty means
  /// uniform). Rows may repeat (bootstrap samples).
  Status Fit(const Dataset& data, const std::vector<std::size_t>& rows,
             const la::Vector& weights = {});

  /// Leaf class distribution for one sample.
  la::Vector PredictProba(const la::Vector& x) const;
  int Predict(const la::Vector& x) const;

 private:
  struct Node {
    int feature = -1;      // -1 marks a leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    la::Vector class_probs;
  };
  int Build(const Dataset& data, std::vector<std::size_t>& rows,
            const la::Vector& weights, std::size_t depth, Rng* rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  int num_classes_ = 0;
};

/// Regression tree (squared-error splits, mean-value leaves) used as the
/// base learner of the gradient-boosting classifier.
class RegressionTree {
 public:
  explicit RegressionTree(TreeOptions options = {});

  Status Fit(const std::vector<la::Vector>& x, const la::Vector& targets,
             const std::vector<std::size_t>& rows);
  double Predict(const la::Vector& x) const;

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };
  int Build(const std::vector<la::Vector>& x, const la::Vector& targets,
            std::vector<std::size_t>& rows, std::size_t depth, Rng* rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace adarts::ml

#endif  // ADARTS_ML_TREE_H_
