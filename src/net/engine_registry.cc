#include "net/engine_registry.h"

#include <utility>

namespace adarts::net {

EngineRegistry::EngineRegistry(std::shared_ptr<const Adarts> initial,
                               std::string path) {
  SwapRecord seed;
  seed.engine_version = initial->engine_version();
  seed.path = std::move(path);
  seed.success = true;
  active_.store(std::move(initial), std::memory_order_release);
  Append(std::move(seed));
}

Status EngineRegistry::Swap(std::shared_ptr<const Adarts> candidate,
                            const std::string& path) {
  const std::uint64_t version = candidate->engine_version();
  // Serialize writers against each other so the version check and the
  // publish are one step; readers never touch this mutex.
  std::unique_lock<std::mutex> lock(log_mu_);
  const std::uint64_t active_version =
      active_.load(std::memory_order_acquire)->engine_version();
  if (version < active_version) {
    SwapRecord record;
    record.engine_version = version;
    record.path = path;
    record.success = false;
    record.detail = "version regression: candidate " + std::to_string(version) +
                    " < active " + std::to_string(active_version);
    Status status = Status::InvalidArgument("engine swap refused: " +
                                            record.detail + " (" + path + ")");
    log_.push_back(std::move(record));
    if (log_.size() > kMaxSwapLog) log_.erase(log_.begin());
    return status;
  }
  // The release store publishes the fully-constructed engine; a reader's
  // acquire load in Active() therefore sees every byte of it.
  active_.store(std::move(candidate), std::memory_order_release);
  swap_count_.fetch_add(1, std::memory_order_relaxed);
  SwapRecord record;
  record.engine_version = version;
  record.path = path;
  record.success = true;
  log_.push_back(std::move(record));
  if (log_.size() > kMaxSwapLog) log_.erase(log_.begin());
  return Status::OK();
}

void EngineRegistry::RecordRejected(std::uint64_t version,
                                    const std::string& path,
                                    const std::string& detail) {
  SwapRecord record;
  record.engine_version = version;
  record.path = path;
  record.success = false;
  record.detail = detail;
  Append(std::move(record));
}

std::vector<SwapRecord> EngineRegistry::SwapLog() const {
  std::unique_lock<std::mutex> lock(log_mu_);
  return log_;
}

void EngineRegistry::Append(SwapRecord record) {
  std::unique_lock<std::mutex> lock(log_mu_);
  log_.push_back(std::move(record));
  if (log_.size() > kMaxSwapLog) log_.erase(log_.begin());
}

}  // namespace adarts::net
