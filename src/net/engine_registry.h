// EngineRegistry — the single owner of "which engine is live" for the
// serving daemon. Workers grab a shared_ptr reference per request; a reload
// publishes a fully-validated replacement with one atomic pointer store.
// Old engines stay alive exactly as long as in-flight requests hold
// references and are destroyed on the last release — no locks on the read
// path, no pauses on swap, no torn reads (DESIGN.md §12).

#ifndef ADARTS_NET_ENGINE_REGISTRY_H_
#define ADARTS_NET_ENGINE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adarts/adarts.h"
#include "common/status.h"

namespace adarts::net {

// One attempted engine swap, recorded whether it succeeded or not. The log
// is the serving daemon's flight recorder: after an incident, the sequence
// of {version, path, outcome} entries reconstructs exactly which snapshot
// was serving when.
struct SwapRecord {
  std::uint64_t engine_version = 0;  // version of the candidate engine
  std::string path;                  // snapshot path it was loaded from
  bool success = false;
  std::string detail;  // error text on failure, empty on success
};

class EngineRegistry {
 public:
  // Seeds the registry with the engine serving at startup. `path` is
  // recorded in the swap log as the origin of version 0's deployment.
  EngineRegistry(std::shared_ptr<const Adarts> initial, std::string path);

  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;

  // Lock-free snapshot of the live engine. The returned reference keeps the
  // engine alive for the caller's whole request even if a swap lands
  // mid-flight, so a single request can never observe two engine versions.
  std::shared_ptr<const Adarts> Active() const {
    return active_.load(std::memory_order_acquire);
  }

  // Version of the engine a request grabbed right now would observe.
  std::uint64_t ActiveVersion() const {
    return Active()->engine_version();
  }

  // Publishes `candidate` as the live engine iff its engine_version is not
  // older than the active one (equal is allowed: re-reloading the current
  // snapshot is an idempotent no-op deployment, useful after a config-only
  // restart of the publisher). Returns InvalidArgument on a version
  // regression and leaves the active engine untouched. Every call — success
  // or refusal — appends to the swap log.
  Status Swap(std::shared_ptr<const Adarts> candidate, const std::string& path);

  // Records a swap that was rejected before reaching Swap() (load/verify/
  // canary failure), so the flight recorder shows refused deployments too.
  void RecordRejected(std::uint64_t version, const std::string& path,
                      const std::string& detail);

  // Copy of the full swap history, oldest first (bounded: the log keeps the
  // most recent kMaxSwapLog entries).
  std::vector<SwapRecord> SwapLog() const;

  // Total successful swaps since construction (excludes the seed engine).
  std::uint64_t swap_count() const {
    return swap_count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kMaxSwapLog = 256;

  void Append(SwapRecord record);

  std::atomic<std::shared_ptr<const Adarts>> active_;
  std::atomic<std::uint64_t> swap_count_{0};

  mutable std::mutex log_mu_;       // guards log_ only, never the read path
  std::vector<SwapRecord> log_;     // ring of the last kMaxSwapLog records
};

}  // namespace adarts::net

#endif  // ADARTS_NET_ENGINE_REGISTRY_H_
