#include "net/http_endpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/log.h"

namespace adarts::net {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

/// Serializes one reply with the framing headers every response carries.
/// `Connection: close` is deliberate: one request per connection keeps the
/// endpoint free of keep-alive state machines (scrapers reconnect cheaply
/// on loopback).
std::string SerializeReply(const HttpReply& reply) {
  std::ostringstream out;
  out << "HTTP/1.1 " << reply.status << ' ' << ReasonPhrase(reply.status)
      << "\r\nContent-Type: " << reply.content_type
      << "\r\nContent-Length: " << reply.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << reply.body;
  return out.str();
}

void WriteReply(Socket& sock, const HttpReply& reply) {
  const std::string wire = SerializeReply(reply);
  // Best-effort: the scraper may already be gone.
  (void)sock.WriteAll(wire.data(), wire.size());
}

HttpReply PlainReply(int status, std::string body) {
  HttpReply reply;
  reply.status = status;
  reply.body = std::move(body);
  return reply;
}

/// Prometheus metric-name charset: `[a-zA-Z_:][a-zA-Z0-9_:]*`. The repo's
/// dotted `<stage>.<name>` scheme maps onto it by replacing every
/// out-of-charset byte with '_' (we do not emit ':' — it is reserved for
/// recording rules by convention).
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9f", seconds);
  return buf;
}

void AppendSummary(std::ostringstream* out, const std::string& metric,
                   const HistogramSnapshot& snapshot,
                   const std::string& extra_labels) {
  const std::string comma = extra_labels.empty() ? "" : ",";
  *out << metric << "{quantile=\"0.5\"" << comma << extra_labels << "} "
       << FormatSeconds(static_cast<double>(snapshot.p50_ns) / 1e9) << '\n'
       << metric << "{quantile=\"0.9\"" << comma << extra_labels << "} "
       << FormatSeconds(static_cast<double>(snapshot.p90_ns) / 1e9) << '\n'
       << metric << "{quantile=\"0.99\"" << comma << extra_labels << "} "
       << FormatSeconds(static_cast<double>(snapshot.p99_ns) / 1e9) << '\n';
  if (!extra_labels.empty()) {
    *out << metric << "_count{" << extra_labels << "} " << snapshot.count
         << '\n'
         << metric << "_sum{" << extra_labels << "} "
         << FormatSeconds(static_cast<double>(snapshot.sum_ns) / 1e9) << '\n';
  } else {
    *out << metric << "_count " << snapshot.count << '\n'
         << metric << "_sum "
         << FormatSeconds(static_cast<double>(snapshot.sum_ns) / 1e9) << '\n';
  }
}

}  // namespace

std::string PrometheusText(const ServeTelemetry& telemetry) {
  std::ostringstream out;

  // --- identity + pressure gauges ---------------------------------------
  out << "# TYPE adarts_engine_version gauge\n"
      << "adarts_engine_version " << telemetry.engine_version << '\n';
  out << "# TYPE adarts_uptime_seconds gauge\n"
      << "adarts_uptime_seconds " << FormatSeconds(telemetry.uptime_seconds)
      << '\n';
  out << "# TYPE adarts_queue_depth gauge\n"
      << "adarts_queue_depth " << telemetry.queue_depth << '\n';
  out << "# TYPE adarts_queue_capacity gauge\n"
      << "adarts_queue_capacity " << telemetry.queue_capacity << '\n';
  out << "# TYPE adarts_ready gauge\n"
      << "adarts_ready " << (telemetry.ready ? 1 : 0) << '\n';
  out << "# TYPE adarts_swaps_total counter\n"
      << "adarts_swaps_total " << telemetry.swap_count << '\n';

  // --- serve verdict counters -------------------------------------------
  const std::map<std::string, std::uint64_t> stats = {
      {"connections_accepted", telemetry.stats.connections_accepted},
      {"connections_refused", telemetry.stats.connections_refused},
      {"requests_received", telemetry.stats.requests_received},
      {"requests_ok", telemetry.stats.requests_ok},
      {"requests_error", telemetry.stats.requests_error},
      {"requests_shed", telemetry.stats.requests_shed},
      {"requests_deadline_exceeded",
       telemetry.stats.requests_deadline_exceeded},
      {"responses_sent", telemetry.stats.responses_sent},
      {"drained_in_flight", telemetry.stats.drained_in_flight},
      {"reloads_ok", telemetry.stats.reloads_ok},
      {"reloads_failed", telemetry.stats.reloads_failed},
      {"stats_scrapes", telemetry.stats.stats_scrapes},
  };
  for (const auto& [name, value] : stats) {
    const std::string metric = "adarts_serve_" + name + "_total";
    out << "# TYPE " << metric << " counter\n" << metric << ' ' << value
        << '\n';
  }

  // --- folded registry: counters, spans, cumulative histograms ----------
  for (const auto& [name, value] : telemetry.metrics.counters) {
    const std::string metric = "adarts_" + SanitizeMetricName(name) + "_total";
    out << "# TYPE " << metric << " counter\n" << metric << ' ' << value
        << '\n';
  }
  for (const auto& [name, seconds] : telemetry.metrics.spans_seconds) {
    const std::string metric = "adarts_" + SanitizeMetricName(name);
    out << "# TYPE " << metric << " counter\n" << metric << ' '
        << FormatSeconds(seconds) << '\n';
  }
  for (const auto& [name, snapshot] : telemetry.metrics.histograms) {
    const std::string metric =
        "adarts_" + SanitizeMetricName(name) + "_seconds";
    out << "# TYPE " << metric << " summary\n";
    AppendSummary(&out, metric, snapshot, "");
  }

  // --- windowed percentiles (the "right now" view) ----------------------
  const std::string window_label =
      "window=\"" + FormatSeconds(telemetry.window_latency.window_seconds) +
      "\"";
  out << "# TYPE adarts_serve_window_latency_seconds summary\n";
  AppendSummary(&out, "adarts_serve_window_latency_seconds",
                telemetry.window_latency.histogram, window_label);
  out << "# TYPE adarts_serve_window_queue_wait_seconds summary\n";
  AppendSummary(&out, "adarts_serve_window_queue_wait_seconds",
                telemetry.window_queue_wait.histogram, window_label);
  return out.str();
}

HttpEndpoint::~HttpEndpoint() {
  Shutdown();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void HttpEndpoint::Handle(std::string path, HttpHandler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpEndpoint::Start(HttpOptions options) {
  options_ = options;
  ADARTS_ASSIGN_OR_RETURN(listener_,
                          ListenTcp(options_.port, options_.backlog, &port_));
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal(std::string("http wake pipe: ") +
                            std::strerror(errno));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  for (int fd : fds) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
  }
  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpEndpoint::Shutdown() {
  if (!started_.exchange(false, std::memory_order_acq_rel)) return;
  shutdown_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Connection threads are short-lived (one request, receive-timeout
  // bounded); wait them out instead of tracking join handles.
  while (active_connections_.load(std::memory_order_acquire) > 0) {
    ::usleep(1000);
  }
}

void HttpEndpoint::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    auto accepted = AcceptConnection(listener_, wake_read_fd_);
    if (!accepted.ok()) {
      if (accepted.status().code() != StatusCode::kCancelled) {
        LogWarn("http: accept failed: " + accepted.status().ToString());
      }
      break;
    }
    Socket sock = std::move(accepted).value();
    if (active_connections_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      // Scrape-storm backpressure: explicit 503, never an unbounded thread
      // per excess scraper.
      WriteReply(sock, PlainReply(503, "too many connections\n"));
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    std::thread([this, s = std::move(sock)]() mutable {
      ServeConnection(std::move(s));
      active_connections_.fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
  }
}

void HttpEndpoint::ServeConnection(Socket sock) {
  (void)sock.SetReceiveTimeout(options_.read_timeout_s);
  // Read until the end of the header block (or EOF / timeout / size cap).
  // The buffer is capped BEFORE any read can grow it past
  // max_request_bytes — a hostile endless request line dies at the cap,
  // exactly as an oversized frame length dies before allocation.
  std::string request;
  bool complete = false;
  while (request.size() < options_.max_request_bytes) {
    char chunk[1024];
    const std::size_t want = options_.max_request_bytes - request.size() <
                                     sizeof(chunk)
                                 ? options_.max_request_bytes - request.size()
                                 : sizeof(chunk);
    auto got = sock.ReadSome(chunk, want);
    if (!got.ok() || *got == 0) break;
    request.append(chunk, *got);
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  if (!complete) {
    WriteReply(sock, PlainReply(400, "malformed or oversized request\n"));
    return;
  }

  // Parse exactly the request line: METHOD SP TARGET SP VERSION.
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos ||
      (line.compare(sp2 + 1, std::string::npos, "HTTP/1.1") != 0 &&
       line.compare(sp2 + 1, std::string::npos, "HTTP/1.0") != 0)) {
    WriteReply(sock, PlainReply(400, "malformed request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Query strings are accepted and ignored ("/metrics?foo=1" scrapes).
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  if (method != "GET") {
    WriteReply(sock, PlainReply(405, "only GET is served\n"));
    return;
  }
  const auto it = handlers_.find(target);
  if (it == handlers_.end()) {
    WriteReply(sock, PlainReply(404, "unknown path\n"));
    return;
  }
  WriteReply(sock, it->second());
}

}  // namespace adarts::net
