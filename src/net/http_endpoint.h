#ifndef ADARTS_NET_HTTP_ENDPOINT_H_
#define ADARTS_NET_HTTP_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/server.h"
#include "net/socket.h"

namespace adarts::net {

/// One HTTP reply a handler produces. `status` is the numeric code (200,
/// 404, 503, ...); the endpoint adds the reason phrase and framing headers.
struct HttpReply {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handler for one GET path, invoked per request on the connection thread.
using HttpHandler = std::function<HttpReply()>;

/// Knobs of the plain-HTTP telemetry sidecar.
struct HttpOptions {
  /// Port on 127.0.0.1; 0 picks an ephemeral port (read back via `port()`).
  std::uint16_t port = 0;
  int backlog = 16;
  /// Hard cap on one request's header bytes: anything longer is answered
  /// 400 and dropped, the same "validate before allocating" contract the
  /// frame decoder applies (DESIGN.md §14).
  std::size_t max_request_bytes = 8192;
  /// SO_RCVTIMEO per connection: a scraper that connects and stalls is cut
  /// loose instead of pinning a thread.
  double read_timeout_s = 5.0;
  /// Concurrent connection threads; beyond the cap connections are answered
  /// 503 and closed (the scrape analogue of the frame server's
  /// accept-then-refuse).
  std::size_t max_connections = 32;
};

/// A deliberately minimal, hostile-input-hardened HTTP/1.1 listener for the
/// telemetry plane (DESIGN.md §14): `GET /metrics`, `GET /healthz`,
/// `GET /readyz`. It is NOT a general web server — GET only, no keep-alive
/// (`Connection: close` on every reply), no TLS, loopback only. Prometheus
/// and curl both speak this subset happily, and the tiny surface keeps the
/// parse hardening auditable: request line length is capped before any
/// allocation, the method/target are validated, and anything else is 400.
///
/// Lifecycle mirrors `Server`: `Start()` binds and spawns the accept
/// thread; `Shutdown()` wakes it via the self-pipe, joins, and closes.
class HttpEndpoint {
 public:
  HttpEndpoint() = default;
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers `handler` for `GET <path>` (exact match, e.g. "/metrics").
  /// Must be called before Start.
  void Handle(std::string path, HttpHandler handler);

  Status Start(HttpOptions options);

  /// The bound port (valid after Start).
  std::uint16_t port() const { return port_; }

  /// Stops accepting, waits for in-flight connection threads, closes.
  /// Idempotent.
  void Shutdown();

 private:
  void AcceptLoop();
  void ServeConnection(Socket sock);

  HttpOptions options_;
  std::map<std::string, HttpHandler> handlers_;
  std::uint16_t port_ = 0;
  Socket listener_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> started_{false};
  std::thread accept_thread_;
  /// Live connection threads (each detached; this counter + a spin-join in
  /// Shutdown bounds them).
  std::atomic<std::size_t> active_connections_{0};
};

/// Renders one telemetry snapshot in the Prometheus text exposition format
/// (version 0.0.4): counters as `adarts_<name>_total`, histogram summaries
/// as `adarts_<name>{quantile="..."}` in seconds, gauges for queue depth /
/// readiness / uptime. Metric names are sanitized (`[^a-zA-Z0-9_]` -> `_`).
std::string PrometheusText(const ServeTelemetry& telemetry);

}  // namespace adarts::net

#endif  // ADARTS_NET_HTTP_ENDPOINT_H_
