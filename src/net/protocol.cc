#include "net/protocol.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

namespace adarts::net {

namespace {

// --- little-endian primitives -------------------------------------------

void AppendU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<std::uint64_t>(v));
}

void AppendBytes(std::string* out, std::string_view bytes) {
  AppendU32(out, static_cast<std::uint32_t>(bytes.size()));
  out->append(bytes);
}

/// Bounds-checked cursor over one frame body: every Read* returns false
/// instead of reading past the end, so decode never trusts a hostile size.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  bool ReadU8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadF64(double* v) {
    std::uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }

  bool ReadBytes(std::size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- series --------------------------------------------------------------

void AppendSeries(std::string* out, const ts::TimeSeries& series) {
  AppendBytes(out, series.name());
  AppendU64(out, series.length());
  for (std::size_t i = 0; i < series.length(); ++i) {
    // NaN is the wire marker for "missing"; masked positions may hold any
    // placeholder locally, so the mask wins over the stored value.
    AppendF64(out, series.IsMissing(i)
                       ? std::numeric_limits<double>::quiet_NaN()
                       : series.value(i));
  }
}

Status DecodeSeries(Reader* in, ts::TimeSeries* out) {
  std::uint32_t name_len = 0;
  if (!in->ReadU32(&name_len) || name_len > kMaxNameBytes ||
      in->remaining() < name_len) {
    return Status::InvalidArgument("frame: bad series name length");
  }
  std::string name;
  if (!in->ReadBytes(name_len, &name)) {
    return Status::InvalidArgument("frame: truncated series name");
  }
  std::uint64_t length = 0;
  if (!in->ReadU64(&length) || length > kMaxSeriesLength ||
      in->remaining() < length * 8) {
    return Status::InvalidArgument("frame: bad series length");
  }
  la::Vector values(static_cast<std::size_t>(length));
  std::vector<bool> missing(static_cast<std::size_t>(length), false);
  for (std::size_t i = 0; i < length; ++i) {
    double v = 0.0;
    if (!in->ReadF64(&v)) {
      return Status::InvalidArgument("frame: truncated series values");
    }
    if (std::isnan(v)) {
      missing[i] = true;
      values[i] = 0.0;
    } else if (!std::isfinite(v)) {
      return Status::InvalidArgument("frame: non-finite observed value");
    } else {
      values[i] = v;
    }
  }
  ts::TimeSeries series(std::move(values), std::move(missing));
  series.set_name(std::move(name));
  *out = std::move(series);
  return Status::OK();
}

Status DecodeSeriesVector(Reader* in, std::size_t max_count,
                          std::vector<ts::TimeSeries>* out) {
  std::uint32_t count = 0;
  if (!in->ReadU32(&count) || count > max_count) {
    return Status::InvalidArgument("frame: bad series count");
  }
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ts::TimeSeries series;
    ADARTS_RETURN_NOT_OK(DecodeSeries(in, &series));
    out->push_back(std::move(series));
  }
  return Status::OK();
}

}  // namespace

bool IsValidMessageType(std::uint8_t value) {
  return value >= static_cast<std::uint8_t>(MessageType::kPing) &&
         value <= static_cast<std::uint8_t>(MessageType::kStats);
}

std::string EncodeRequest(const Request& request) {
  std::string out;
  AppendU8(&out, static_cast<std::uint8_t>(request.type));
  AppendU64(&out, request.id);
  AppendF64(&out, request.deadline_ms);
  AppendU32(&out, static_cast<std::uint32_t>(request.series.size()));
  for (const ts::TimeSeries& series : request.series) {
    AppendSeries(&out, series);
  }
  AppendBytes(&out, request.text);
  return out;
}

Result<Request> DecodeRequest(std::string_view body) {
  Reader in(body);
  Request request;
  std::uint8_t type = 0;
  if (!in.ReadU8(&type) || !IsValidMessageType(type)) {
    return Status::InvalidArgument("frame: bad request type");
  }
  request.type = static_cast<MessageType>(type);
  if (!in.ReadU64(&request.id) || !in.ReadF64(&request.deadline_ms)) {
    return Status::InvalidArgument("frame: truncated request header");
  }
  if (std::isnan(request.deadline_ms)) {
    return Status::InvalidArgument("frame: NaN deadline");
  }
  ADARTS_RETURN_NOT_OK(
      DecodeSeriesVector(&in, kMaxSeriesPerRequest, &request.series));
  std::uint32_t text_len = 0;
  if (!in.ReadU32(&text_len) || text_len > kMaxMessageBytes ||
      !in.ReadBytes(text_len, &request.text)) {
    return Status::InvalidArgument("frame: bad request text field");
  }
  if (!in.exhausted()) {
    return Status::InvalidArgument("frame: trailing bytes in request");
  }
  const bool no_series = request.type == MessageType::kPing ||
                         request.type == MessageType::kReload ||
                         request.type == MessageType::kStats;
  const std::size_t expected =
      no_series ? 0
                : (request.type == MessageType::kRecommendBatch
                       ? request.series.size()
                       : 1);
  if (request.series.size() != expected ||
      (request.type == MessageType::kRecommendBatch &&
       request.series.empty())) {
    return Status::InvalidArgument("frame: wrong series count for type");
  }
  if (request.type != MessageType::kReload && !request.text.empty()) {
    return Status::InvalidArgument("frame: text field on non-reload request");
  }
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  AppendU8(&out, static_cast<std::uint8_t>(response.type));
  AppendU64(&out, response.id);
  AppendU8(&out, static_cast<std::uint8_t>(response.code));
  AppendBytes(&out, response.message);
  AppendU32(&out, static_cast<std::uint32_t>(response.algorithms.size()));
  for (const std::string& name : response.algorithms) {
    AppendBytes(&out, name);
  }
  AppendU32(&out, static_cast<std::uint32_t>(response.series.size()));
  for (const ts::TimeSeries& series : response.series) {
    AppendSeries(&out, series);
  }
  AppendU64(&out, response.engine_version);
  AppendBytes(&out, response.text);
  return out;
}

Result<Response> DecodeResponse(std::string_view body) {
  Reader in(body);
  Response response;
  std::uint8_t type = 0;
  if (!in.ReadU8(&type) || !IsValidMessageType(type)) {
    return Status::InvalidArgument("frame: bad response type");
  }
  response.type = static_cast<MessageType>(type);
  std::uint8_t code = 0;
  if (!in.ReadU64(&response.id) || !in.ReadU8(&code) ||
      code > static_cast<std::uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("frame: bad response header");
  }
  response.code = static_cast<StatusCode>(code);
  std::uint32_t message_len = 0;
  if (!in.ReadU32(&message_len) || message_len > kMaxMessageBytes ||
      !in.ReadBytes(message_len, &response.message)) {
    return Status::InvalidArgument("frame: bad response message");
  }
  std::uint32_t algo_count = 0;
  if (!in.ReadU32(&algo_count) || algo_count > kMaxSeriesPerRequest) {
    return Status::InvalidArgument("frame: bad algorithm count");
  }
  response.algorithms.reserve(algo_count);
  for (std::uint32_t i = 0; i < algo_count; ++i) {
    std::uint32_t len = 0;
    std::string name;
    if (!in.ReadU32(&len) || len > kMaxNameBytes || !in.ReadBytes(len, &name)) {
      return Status::InvalidArgument("frame: bad algorithm name");
    }
    response.algorithms.push_back(std::move(name));
  }
  ADARTS_RETURN_NOT_OK(
      DecodeSeriesVector(&in, kMaxSeriesPerRequest, &response.series));
  if (!in.ReadU64(&response.engine_version)) {
    return Status::InvalidArgument("frame: truncated engine_version");
  }
  std::uint32_t text_len = 0;
  if (!in.ReadU32(&text_len) || text_len > kMaxTextBytes ||
      !in.ReadBytes(text_len, &response.text)) {
    return Status::InvalidArgument("frame: bad response text field");
  }
  if (!in.exhausted()) {
    return Status::InvalidArgument("frame: trailing bytes in response");
  }
  if (response.type != MessageType::kStats && !response.text.empty()) {
    return Status::InvalidArgument("frame: text field on non-stats response");
  }
  return response;
}

Status WriteFrame(Socket& socket, std::string_view body) {
  if (body.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame body exceeds kMaxFrameBytes");
  }
  std::string prefix;
  AppendU32(&prefix, static_cast<std::uint32_t>(body.size()));
  ADARTS_RETURN_NOT_OK(socket.WriteAll(prefix.data(), prefix.size()));
  return socket.WriteAll(body.data(), body.size());
}

Result<std::string> ReadFrame(Socket& socket, std::size_t max_body_bytes) {
  std::uint8_t prefix[4];
  ADARTS_RETURN_NOT_OK(socket.ReadExact(prefix, sizeof(prefix)));
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (body_len > max_body_bytes) {
    return Status::InvalidArgument("frame length " + std::to_string(body_len) +
                                   " exceeds cap " +
                                   std::to_string(max_body_bytes));
  }
  std::string body(body_len, '\0');
  if (body_len > 0) {
    ADARTS_RETURN_NOT_OK(socket.ReadExact(body.data(), body.size()));
  }
  return body;
}

}  // namespace adarts::net
