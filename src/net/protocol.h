#ifndef ADARTS_NET_PROTOCOL_H_
#define ADARTS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "ts/time_series.h"

namespace adarts::net {

/// The dependency-free wire protocol of `adarts_serve` (DESIGN.md §10).
///
/// Every message travels as one length-prefixed frame:
///
///   u32  body_len   (little-endian; capped by kMaxFrameBytes)
///   byte body[body_len]
///
/// Request body:
///
///   u8   type          (kPing | kRecommend | kRecommendBatch | kRepair |
///                       kReload | kStats)
///   u64  id            (echoed verbatim in the response)
///   f64  deadline_ms   (<= 0: use the server's default deadline)
///   u32  series_count  (0 for ping/reload/stats, 1 for recommend/repair,
///                       N for batch)
///   series...
///   u32  text_len + bytes   (kReload: snapshot path, empty = the path the
///                            server was started with; others: empty)
///
/// Response body:
///
///   u8   type          (echo)
///   u64  id            (echo)
///   u8   status_code   (StatusCode; kOk on success)
///   u32  message_len + bytes          (empty on success)
///   u32  algorithm_count + (u32 len + bytes) each
///   u32  series_count + series each   (repair results)
///   u64  engine_version               (version of the engine that answered;
///                                      lets clients detect a live swap)
///   u32  text_len + bytes             (kStats: the telemetry-snapshot JSON;
///                                      others: empty)
///
/// A series is `u32 name_len + bytes, u64 length, length f64 values`
/// (IEEE-754 bit patterns, little-endian); NaN marks a missing position in
/// both directions. Every variable-length size is validated against the
/// bytes actually remaining in the frame BEFORE any allocation — a hostile
/// frame yields `kInvalidArgument`, never an unbounded reserve (the same
/// contract `Adarts::Load` applies to on-disk bundles).
///
/// Admission control rides on the status channel: a server at capacity
/// answers with `kUnavailable` ("shed") instead of queueing unboundedly.

enum class MessageType : std::uint8_t {
  kPing = 1,
  kRecommend = 2,
  kRecommendBatch = 3,
  kRepair = 4,
  /// Ask the server to validate + hot-swap a new engine snapshot. Answered
  /// only after the reload pipeline finishes: kOk with the new version, or
  /// the validation error with the old engine still serving.
  kReload = 5,
  /// Scrape the live telemetry snapshot (DESIGN.md §14). Answered directly
  /// from the reader thread — it bypasses the admission queue, so an
  /// operator can still see a saturated server. The response's `text`
  /// field carries the folded snapshot as JSON.
  kStats = 6,
};

/// True for the six known message types.
bool IsValidMessageType(std::uint8_t value);

/// Hard caps a well-formed frame can never exceed; decode rejects anything
/// beyond them before allocating.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 24;  // 16 MiB
inline constexpr std::size_t kMaxSeriesPerRequest = 4096;
inline constexpr std::size_t kMaxSeriesLength = std::size_t{1} << 21;
inline constexpr std::size_t kMaxNameBytes = 4096;
inline constexpr std::size_t kMaxMessageBytes = std::size_t{1} << 16;
/// Response `text` cap (telemetry-snapshot JSON grows with the number of
/// registered metrics, so it gets more headroom than error messages).
inline constexpr std::size_t kMaxTextBytes = std::size_t{1} << 20;

struct Request {
  MessageType type = MessageType::kPing;
  std::uint64_t id = 0;
  /// Per-request deadline budget, measured from admission; <= 0 uses the
  /// server default (which may be "none").
  double deadline_ms = 0.0;
  std::vector<ts::TimeSeries> series;
  /// kReload: path of the snapshot to load; empty means "re-read the path
  /// the server was started with". Must be empty for every other type.
  std::string text;
};

struct Response {
  MessageType type = MessageType::kPing;
  std::uint64_t id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Recommended algorithm names (1 for kRecommend, N for kRecommendBatch).
  std::vector<std::string> algorithms;
  /// Repaired series (kRepair).
  std::vector<ts::TimeSeries> series;
  /// engine_version of the engine that served this request (0 for replies
  /// that never touched an engine, e.g. shed or malformed-frame errors).
  /// A burst of requests straddling a hot-swap can partition its responses
  /// into exactly two version groups — never a mix within one response.
  std::uint64_t engine_version = 0;
  /// kStats: the telemetry-snapshot JSON (capped at kMaxTextBytes). Empty
  /// for every other type.
  std::string text;

  bool ok() const { return code == StatusCode::kOk; }
};

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view body);

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view body);

/// Writes one frame (length prefix + body).
Status WriteFrame(Socket& socket, std::string_view body);

/// Reads one frame body. Propagates the socket's `kUnavailable` on clean
/// connection close; rejects prefixes above `max_body_bytes` without
/// allocating.
Result<std::string> ReadFrame(Socket& socket,
                              std::size_t max_body_bytes = kMaxFrameBytes);

}  // namespace adarts::net

#endif  // ADARTS_NET_PROTOCOL_H_
