#include "net/server.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/trace.h"
#include "impute/imputer.h"

namespace adarts::net {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The self-check input every staged engine must handle before it may serve:
// a plausible sine-plus-trend series with one missing block, exercising the
// full feature-extract → committee-vote path.
ts::TimeSeries CanarySeries() {
  constexpr std::size_t kLength = 96;
  la::Vector values(kLength);
  std::vector<bool> missing(kLength, false);
  for (std::size_t i = 0; i < kLength; ++i) {
    values[i] = std::sin(0.2 * static_cast<double>(i)) +
                0.01 * static_cast<double>(i);
  }
  for (std::size_t i = 40; i < 48; ++i) {
    missing[i] = true;
    values[i] = 0.0;
  }
  ts::TimeSeries series(std::move(values), std::move(missing));
  series.set_name("__reload_canary__");
  return series;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void AppendHistogramJson(std::ostringstream* out,
                         const HistogramSnapshot& snapshot) {
  *out << "{\"count\":" << snapshot.count << ",\"sum_ns\":" << snapshot.sum_ns
       << ",\"max_ns\":" << snapshot.max_ns << ",\"p50_ns\":" << snapshot.p50_ns
       << ",\"p90_ns\":" << snapshot.p90_ns << ",\"p99_ns\":" << snapshot.p99_ns
       << "}";
}

void AppendWindowJson(std::ostringstream* out,
                      const WindowedSnapshot& window) {
  *out << "{\"window_seconds\":" << FormatDouble(window.window_seconds)
       << ",\"covered_seconds\":" << FormatDouble(window.covered_seconds)
       << ",\"histogram\":";
  AppendHistogramJson(out, window.histogram);
  *out << "}";
}

}  // namespace

std::string ServeTelemetry::ToJson() const {
  std::ostringstream out;
  out << "{\"engine_version\":" << engine_version
      << ",\"uptime_seconds\":" << FormatDouble(uptime_seconds)
      << ",\"queue_depth\":" << queue_depth
      << ",\"queue_capacity\":" << queue_capacity
      << ",\"ready\":" << (ready ? "true" : "false")
      << ",\"draining\":" << (draining ? "true" : "false");
  out << ",\"stats\":{\"connections_accepted\":" << stats.connections_accepted
      << ",\"connections_refused\":" << stats.connections_refused
      << ",\"requests_received\":" << stats.requests_received
      << ",\"requests_ok\":" << stats.requests_ok
      << ",\"requests_error\":" << stats.requests_error
      << ",\"requests_shed\":" << stats.requests_shed
      << ",\"requests_deadline_exceeded\":" << stats.requests_deadline_exceeded
      << ",\"responses_sent\":" << stats.responses_sent
      << ",\"drained_in_flight\":" << stats.drained_in_flight
      << ",\"reloads_ok\":" << stats.reloads_ok
      << ",\"reloads_failed\":" << stats.reloads_failed
      << ",\"stats_scrapes\":" << stats.stats_scrapes << "}";
  out << ",\"swap_count\":" << swap_count << ",\"swap_tail\":[";
  bool first = true;
  for (const SwapRecord& record : swap_tail) {
    if (!first) out << ',';
    first = false;
    out << "{\"engine_version\":" << record.engine_version << ",\"path\":\""
        << JsonEscape(record.path) << "\",\"success\":"
        << (record.success ? "true" : "false") << ",\"detail\":\""
        << JsonEscape(record.detail) << "\"}";
  }
  out << "],\"window_latency\":";
  AppendWindowJson(&out, window_latency);
  out << ",\"window_queue_wait\":";
  AppendWindowJson(&out, window_queue_wait);
  out << ",\"metrics\":" << metrics.ToJson() << "}";
  return out.str();
}

Server::Server(const Adarts& engine, ServeOptions options)
    : Server(std::shared_ptr<const Adarts>(&engine, [](const Adarts*) {}),
             std::move(options)) {}

Server::Server(std::shared_ptr<const Adarts> engine, ServeOptions options)
    : registry_(std::move(engine),
                options.model_path.empty() ? "<startup>" : options.model_path),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      reload_queue_(1) {}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    RequestShutdown();
    (void)Wait();
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

Status Server::Start() {
  ADARTS_ASSIGN_OR_RETURN(listener_,
                          ListenTcp(options_.port, options_.backlog, &port_));
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal(std::string("server wake pipe: ") +
                            std::strerror(errno));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  for (int fd : fds) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
  }

  const std::size_t workers = options_.num_workers == 0 ? 1
                                                        : options_.num_workers;
  worker_contexts_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    // Explicit TraceOptions: a worker context never owns a trace session
    // (the daemon's ScopedTrace does); spans it records still land in an
    // active global session.
    worker_contexts_.push_back(std::make_unique<ExecContext>(
        options_.threads_per_worker, nullptr, TraceOptions{}));
  }
  start_steady_ns_ = SteadyNowNs();
  started_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  reload_thread_ = std::thread([this] { ReloadLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::RequestShutdown() {
  // Async-signal-safe: one atomic store, one write(2) to a non-blocking
  // pipe. Everything heavier happens in Wait().
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

Status Server::Wait() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server not started");
  }
  // Phase 1: the accept loop exits on the shutdown wake (or on a terminal
  // accept error). Joining it blocks Wait until one of the two.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Phase 2: stop reading new requests. SHUT_RD wakes every reader with a
  // clean EOF while keeping the write side open for in-flight replies.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) conn->sock.ShutdownRead();
  }
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    readers_done_.wait(lock, [this] { return active_readers_ == 0; });
  }

  // Phase 3: everything admitted before this line is still answered — the
  // queue rejects new work but drains existing items to the workers. The
  // reload queue gets the same contract: a reload admitted before the drain
  // still completes (and its reply is written) before the write sides close.
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  reload_queue_.Close();
  if (reload_thread_.joinable()) reload_thread_.join();

  // Phase 4: all replies are written; now the write sides may go.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) conn->sock.ShutdownBoth();
    conns_.clear();
  }
  started_.store(false, std::memory_order_release);
  return accept_status_;
}

void Server::AcceptLoop() {
  Tracer::SetCurrentThreadName("serve-accept");
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    auto accepted = AcceptConnection(listener_, wake_read_fd_);
    if (!accepted.ok()) {
      if (accepted.status().code() != StatusCode::kCancelled) {
        accept_status_ = accepted.status();
        LogError("serve: accept failed: " + accepted.status().ToString());
      }
      break;
    }
    auto conn = std::make_shared<ConnState>();
    conn->sock = std::move(accepted).value();
    if (FailpointRegistry::Armed() &&
        !FailpointRegistry::Instance().Check("net.accept").ok()) {
      // Injected accept-path failure: this one connection is dropped, the
      // accept loop itself must survive and keep serving.
      stats_.connections_refused.fetch_add(1, std::memory_order_relaxed);
      metrics_.Increment("serve.conn_refused");
      continue;
    }
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.size() < options_.max_connections &&
          !shutdown_requested_.load(std::memory_order_acquire)) {
        conn->index = next_conn_index_++;
        conns_.push_back(conn);
        ++active_readers_;
        stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        std::thread([this, conn] { ReaderLoop(conn); }).detach();
        admitted = true;
      }
    }
    if (!admitted) {
      // Over the connection cap (or racing a shutdown): accept-then-refuse
      // with an explicit kUnavailable frame the client can back off on,
      // instead of a silent close it cannot tell apart from a crash — and
      // instead of an unbounded reader-thread per excess connection.
      stats_.connections_refused.fetch_add(1, std::memory_order_relaxed);
      metrics_.Increment("serve.conn_refused");
      RefuseConnection(conn->sock);
    }
  }
}

void Server::RefuseConnection(Socket& sock) {
  Response refusal;
  refusal.code = StatusCode::kUnavailable;
  refusal.message = "connection limit reached, retry later";
  // Best-effort: the client may already be gone.
  (void)WriteFrame(sock, EncodeResponse(refusal));
  sock.Close();
}

void Server::ReaderLoop(std::shared_ptr<ConnState> conn) {
  Tracer::SetCurrentThreadName("serve-conn-" + std::to_string(conn->index));
  MetricCounter* received = metrics_.counter("serve.requests");
  MetricCounter* shed = metrics_.counter("serve.shed");
  while (true) {
    auto frame = ReadFrame(conn->sock, options_.max_frame_bytes);
    if (!frame.ok()) {
      // kUnavailable = clean client disconnect; anything else is logged.
      if (frame.status().code() != StatusCode::kUnavailable) {
        LogWarn("serve: connection " + std::to_string(conn->index) +
                " read failed: " + frame.status().ToString());
      }
      break;
    }
    if (FailpointRegistry::Armed() &&
        !FailpointRegistry::Instance().Check("net.read.frame").ok()) {
      // Injected mid-stream read failure: drop the connection exactly as a
      // torn read would. The client observes a hard close, never a stall.
      LogWarn("serve: connection " + std::to_string(conn->index) +
              " injected read failure");
      break;
    }
    stats_.requests_received.fetch_add(1, std::memory_order_relaxed);
    received->Increment();
    conn->requests.fetch_add(1, std::memory_order_relaxed);

    auto request = DecodeRequest(*frame);
    if (!request.ok()) {
      // The frame boundary is intact, but the body is hostile or corrupt:
      // answer with the decode error and drop the connection.
      Response response;
      response.code = request.status().code();
      response.message = request.status().message();
      SendResponse(conn, response);
      metrics_.Increment("serve.bad_frames");
      break;
    }

    if (request->type == MessageType::kStats) {
      // Telemetry scrapes never enter the admission queue: answered right
      // here on the reader thread, so a saturated (or draining) server is
      // still observable. Like reloads they are control-plane traffic —
      // counted in stats_scrapes, never in the ok/error verdict counters.
      stats_.stats_scrapes.fetch_add(1, std::memory_order_relaxed);
      metrics_.Increment("serve.stats_scrapes");
      Response response;
      response.type = MessageType::kStats;
      response.id = request->id;
      response.engine_version = registry_.ActiveVersion();
      response.text = Telemetry().ToJson();
      SendResponse(conn, response);
      continue;
    }

    if (request->type == MessageType::kReload) {
      // Reloads bypass the admission queue: the single reload thread
      // validates + swaps, then answers on this connection. Capacity 1
      // means a concurrent second reload is refused, not queued.
      const std::uint64_t reload_id = request->id;
      ReloadJob job;
      job.conn = conn;
      job.request = std::move(request).value();
      if (!reload_queue_.TryPush(std::move(job))) {
        Response response;
        response.type = MessageType::kReload;
        response.id = reload_id;
        response.code = StatusCode::kUnavailable;
        response.message = "reload already in progress, retry later";
        SendResponse(conn, response);
      }
      continue;
    }

    WorkItem item;
    item.conn = conn;
    item.request = std::move(request).value();
    const double deadline_ms = item.request.deadline_ms > 0.0
                                   ? item.request.deadline_ms
                                   : options_.default_deadline_ms;
    if (deadline_ms > 0.0) {
      item.token = CancellationToken::WithDeadline(deadline_ms / 1e3);
      item.has_token = true;
    }
    item.enqueue_steady_ns = SteadyNowNs();
    item.enqueue_trace_ns = Tracer::Global().NowNs();

    const MessageType type = item.request.type;
    const std::uint64_t id = item.request.id;
    const bool injected_shed =
        FailpointRegistry::Armed() &&
        !FailpointRegistry::Instance().Check("net.queue.push").ok();
    if (injected_shed || !queue_.TryPush(std::move(item))) {
      // Admission control: full (or draining) queue sheds with an explicit
      // kUnavailable instead of queueing unboundedly.
      stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      shed->Increment();
      Response response;
      response.type = type;
      response.id = id;
      response.code = StatusCode::kUnavailable;
      response.message = "admission queue full, request shed";
      SendResponse(conn, response);
    }
  }
  LogInfo("serve: connection " + std::to_string(conn->index) + " closed (" +
          std::to_string(conn->requests.load(std::memory_order_relaxed)) +
          " requests)");
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].get() == conn.get()) {
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  --active_readers_;
  readers_done_.notify_all();
}

void Server::WorkerLoop(std::size_t worker_index) {
  Tracer::SetCurrentThreadName("serve-worker-" + std::to_string(worker_index));
  ExecContext& ctx = *worker_contexts_[worker_index];
  LatencyHistogram* queue_wait = metrics_.histogram("serve.queue_wait");
  MetricCounter* ok = metrics_.counter("serve.ok");
  MetricCounter* errors = metrics_.counter("serve.errors");
  WorkItem item;
  while (queue_.Pop(&item)) {
    if (shutdown_requested_.load(std::memory_order_acquire)) {
      stats_.drained_in_flight.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t wait_ns = SteadyNowNs() - item.enqueue_steady_ns;
    queue_wait->Record(wait_ns);
    window_queue_wait_.Record(wait_ns);
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) {
      tracer.RecordComplete("serve.queue_wait", item.enqueue_trace_ns,
                            wait_ns);
    }
    TraceSpan span("serve.request");

    Response response;
    response.type = item.request.type;
    response.id = item.request.id;
    if (item.has_token && item.token.expired()) {
      // The deadline budget covers queue wait: a request that expired while
      // queued is answered without touching the engine.
      response.code = StatusCode::kDeadlineExceeded;
      response.message = "deadline expired in admission queue";
    } else {
      if (options_.worker_hook_for_test) {
        options_.worker_hook_for_test(item.request);
      }
      // One registry load per request: this reference pins the engine for
      // the whole execution, so a hot-swap landing mid-request can never
      // tear it — the request completes on the engine it started on, and
      // the response reports exactly that engine's version.
      std::shared_ptr<const Adarts> engine = registry_.Active();
      ctx.set_cancel(item.has_token ? &item.token : nullptr);
      Execute(ctx, *engine, item, &response);
      ctx.set_cancel(nullptr);
      response.engine_version = engine->engine_version();
    }
    if (response.ok()) {
      stats_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      ok->Increment();
    } else {
      if (response.code == StatusCode::kDeadlineExceeded) {
        stats_.requests_deadline_exceeded.fetch_add(1,
                                                    std::memory_order_relaxed);
      }
      stats_.requests_error.fetch_add(1, std::memory_order_relaxed);
      errors->Increment();
    }
    SendResponse(item.conn, response);
    // Admission-to-response, queue wait included — the latency a client of
    // this request actually saw, feeding the scrape-time window.
    window_latency_.Record(SteadyNowNs() - item.enqueue_steady_ns);
    item = WorkItem{};  // release the connection reference promptly
  }
}

void Server::Execute(ExecContext& ctx, const Adarts& engine,
                     const WorkItem& item, Response* response) {
  const Request& request = item.request;
  switch (request.type) {
    case MessageType::kPing:
      return;
    case MessageType::kReload:
      // Routed to the reload thread in ReaderLoop; reaching here is a bug.
      response->code = StatusCode::kInternal;
      response->message = "reload request reached a worker";
      return;
    case MessageType::kStats:
      // Answered inline by ReaderLoop; reaching here is a bug.
      response->code = StatusCode::kInternal;
      response->message = "stats request reached a worker";
      return;
    case MessageType::kRecommend: {
      auto rec = engine.Recommend(request.series[0], ctx);
      if (!rec.ok()) {
        response->code = rec.status().code();
        response->message = rec.status().message();
        return;
      }
      response->algorithms.emplace_back(impute::AlgorithmToString(*rec));
      return;
    }
    case MessageType::kRecommendBatch: {
      RecommendBatchOptions batch_options;
      auto recs = engine.RecommendBatch(request.series, batch_options, ctx);
      if (!recs.ok()) {
        response->code = recs.status().code();
        response->message = recs.status().message();
        return;
      }
      response->algorithms.reserve(recs->size());
      for (impute::Algorithm algorithm : *recs) {
        response->algorithms.emplace_back(
            impute::AlgorithmToString(algorithm));
      }
      return;
    }
    case MessageType::kRepair: {
      auto repaired = engine.Repair(request.series[0], ctx);
      if (!repaired.ok()) {
        response->code = repaired.status().code();
        response->message = repaired.status().message();
        return;
      }
      response->series.push_back(std::move(repaired).value());
      return;
    }
  }
  response->code = StatusCode::kInternal;
  response->message = "unhandled request type";
}

void Server::ReloadLoop() {
  Tracer::SetCurrentThreadName("serve-reload");
  // A dedicated serial context: canary checks never contend with workers.
  ExecContext ctx(1, nullptr, TraceOptions{});
  ReloadJob job;
  while (reload_queue_.Pop(&job)) {
    const Status outcome = DoReload(ctx, job.request.text);
    if (outcome.ok()) {
      stats_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
      metrics_.Increment("serve.reload.ok");
    } else {
      stats_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
      metrics_.Increment("serve.reload.failed");
      LogWarn("serve: reload rejected, prior engine stays live: " +
              outcome.ToString());
    }
    if (job.conn != nullptr) {
      Response response;
      response.type = MessageType::kReload;
      response.id = job.request.id;
      if (!outcome.ok()) {
        response.code = outcome.code();
        response.message = outcome.message();
      }
      // On success: the freshly swapped version. On failure: the version
      // still serving — proof to the caller that the bad snapshot changed
      // nothing.
      response.engine_version = registry_.ActiveVersion();
      SendResponse(job.conn, response);
    }
    job = ReloadJob{};  // release the connection reference promptly
  }
}

Status Server::DoReload(ExecContext& ctx, const std::string& requested_path) {
  const std::string path =
      requested_path.empty() ? options_.model_path : requested_path;
  if (path.empty()) {
    return Status::FailedPrecondition(
        "reload: no snapshot path (request named none and the server has no "
        "configured model path)");
  }
  LogInfo("serve: reload: staging " + path);
  // Stage 1 — load. Header bounds and the FNV-1a content checksum are
  // verified inside Load before anything is constructed; a torn or
  // corrupted snapshot dies here with a precise error.
  auto loaded = Adarts::Load(path);
  if (!loaded.ok()) {
    registry_.RecordRejected(0, path, loaded.status().ToString());
    return loaded.status();
  }
  auto staged = std::make_shared<const Adarts>(std::move(loaded).value());
  const std::uint64_t version = staged->engine_version();

  // Stage 2 — canary self-check: the staged engine must answer a real
  // recommend end-to-end (feature extraction through committee vote)
  // before it may serve anyone.
  const Status canary = [&]() -> Status {
    ADARTS_FAILPOINT("net.reload.verify");
    auto rec = staged->Recommend(CanarySeries(), ctx);
    if (!rec.ok()) {
      return Status::Internal("reload: canary recommend failed: " +
                              rec.status().ToString());
    }
    return Status::OK();
  }();
  if (!canary.ok()) {
    registry_.RecordRejected(version, path, canary.ToString());
    return canary;
  }

  // Stage 3 — publish. One atomic pointer store; the registry refuses
  // version regressions and logs the outcome either way.
  if (FailpointRegistry::Armed()) {
    Status fp = FailpointRegistry::Instance().Check("net.reload.swap");
    if (!fp.ok()) {
      registry_.RecordRejected(version, path, fp.ToString());
      return fp;
    }
  }
  ADARTS_RETURN_NOT_OK(registry_.Swap(std::move(staged), path));
  LogInfo("serve: reload: engine v" + std::to_string(version) +
          " live from " + path);
  return Status::OK();
}

Status Server::RequestReload(const std::string& path) {
  ReloadJob job;  // conn stays null: outcome reports via swap log + stats
  job.request.type = MessageType::kReload;
  job.request.text = path;
  if (!reload_queue_.TryPush(std::move(job))) {
    return Status::Unavailable(
        "reload already in progress or server draining");
  }
  return Status::OK();
}

void Server::SendResponse(const std::shared_ptr<ConnState>& conn,
                          const Response& response) {
  if (FailpointRegistry::Armed() &&
      !FailpointRegistry::Instance().Check("net.write.frame").ok()) {
    // Injected mid-frame write failure: tear the connection down so the
    // client observes a hard close, never a half-written frame or a stall.
    metrics_.Increment("serve.write_errors");
    LogWarn("serve: connection " + std::to_string(conn->index) +
            " injected write failure");
    conn->sock.ShutdownBoth();
    return;
  }
  const std::string body = EncodeResponse(response);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  Status written = WriteFrame(conn->sock, body);
  if (written.ok()) {
    stats_.responses_sent.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.Increment("serve.write_errors");
    LogWarn("serve: connection " + std::to_string(conn->index) +
            " write failed: " + written.ToString());
  }
}

ServeStats Server::stats() const {
  ServeStats out;
  out.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  out.connections_refused =
      stats_.connections_refused.load(std::memory_order_relaxed);
  out.requests_received =
      stats_.requests_received.load(std::memory_order_relaxed);
  out.requests_ok = stats_.requests_ok.load(std::memory_order_relaxed);
  out.requests_error = stats_.requests_error.load(std::memory_order_relaxed);
  out.requests_shed = stats_.requests_shed.load(std::memory_order_relaxed);
  out.requests_deadline_exceeded =
      stats_.requests_deadline_exceeded.load(std::memory_order_relaxed);
  out.responses_sent = stats_.responses_sent.load(std::memory_order_relaxed);
  out.drained_in_flight =
      stats_.drained_in_flight.load(std::memory_order_relaxed);
  out.reloads_ok = stats_.reloads_ok.load(std::memory_order_relaxed);
  out.reloads_failed = stats_.reloads_failed.load(std::memory_order_relaxed);
  out.stats_scrapes = stats_.stats_scrapes.load(std::memory_order_relaxed);
  return out;
}

StageMetrics Server::MetricsSnapshot() const {
  Metrics merged;
  metrics_.MergeInto(&merged);
  for (const auto& ctx : worker_contexts_) {
    ctx->metrics().MergeInto(&merged);
  }
  return merged.Snapshot();
}

ServeTelemetry Server::Telemetry() const {
  ServeTelemetry out;
  out.engine_version = registry_.ActiveVersion();
  out.uptime_seconds =
      start_steady_ns_ == 0
          ? 0.0
          : static_cast<double>(SteadyNowNs() - start_steady_ns_) / 1e9;
  out.queue_depth = queue_.size();
  out.queue_capacity = options_.queue_capacity;
  out.draining = shutdown_requested_.load(std::memory_order_acquire);
  out.ready = started_.load(std::memory_order_acquire) && !out.draining;
  out.stats = stats();
  out.swap_count = registry_.swap_count();
  std::vector<SwapRecord> log = registry_.SwapLog();
  const std::size_t tail =
      log.size() > ServeTelemetry::kSwapTail ? ServeTelemetry::kSwapTail
                                             : log.size();
  out.swap_tail.assign(log.end() - static_cast<std::ptrdiff_t>(tail),
                       log.end());
  out.metrics = MetricsSnapshot();
  out.window_latency = window_latency_.Snapshot();
  out.window_queue_wait = window_queue_wait_.Snapshot();
  return out;
}

}  // namespace adarts::net
