#include "net/server.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "common/log.h"
#include "common/trace.h"
#include "impute/imputer.h"

namespace adarts::net {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Server::Server(const Adarts& engine, ServeOptions options)
    : engine_(engine),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    RequestShutdown();
    (void)Wait();
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

Status Server::Start() {
  ADARTS_ASSIGN_OR_RETURN(listener_,
                          ListenTcp(options_.port, options_.backlog, &port_));
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal(std::string("server wake pipe: ") +
                            std::strerror(errno));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  for (int fd : fds) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
  }

  const std::size_t workers = options_.num_workers == 0 ? 1
                                                        : options_.num_workers;
  worker_contexts_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    // Explicit TraceOptions: a worker context never owns a trace session
    // (the daemon's ScopedTrace does); spans it records still land in an
    // active global session.
    worker_contexts_.push_back(std::make_unique<ExecContext>(
        options_.threads_per_worker, nullptr, TraceOptions{}));
  }
  started_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::RequestShutdown() {
  // Async-signal-safe: one atomic store, one write(2) to a non-blocking
  // pipe. Everything heavier happens in Wait().
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

Status Server::Wait() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server not started");
  }
  // Phase 1: the accept loop exits on the shutdown wake (or on a terminal
  // accept error). Joining it blocks Wait until one of the two.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Phase 2: stop reading new requests. SHUT_RD wakes every reader with a
  // clean EOF while keeping the write side open for in-flight replies.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) conn->sock.ShutdownRead();
  }
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    readers_done_.wait(lock, [this] { return active_readers_ == 0; });
  }

  // Phase 3: everything admitted before this line is still answered — the
  // queue rejects new work but drains existing items to the workers.
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }

  // Phase 4: all replies are written; now the write sides may go.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) conn->sock.ShutdownBoth();
    conns_.clear();
  }
  started_.store(false, std::memory_order_release);
  return accept_status_;
}

void Server::AcceptLoop() {
  Tracer::SetCurrentThreadName("serve-accept");
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    auto accepted = AcceptConnection(listener_, wake_read_fd_);
    if (!accepted.ok()) {
      if (accepted.status().code() != StatusCode::kCancelled) {
        accept_status_ = accepted.status();
        LogError("serve: accept failed: " + accepted.status().ToString());
      }
      break;
    }
    auto conn = std::make_shared<ConnState>();
    conn->sock = std::move(accepted).value();
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (conns_.size() >= options_.max_connections ||
        shutdown_requested_.load(std::memory_order_acquire)) {
      // Over the connection cap (or racing a shutdown): refuse by closing.
      continue;
    }
    conn->index = next_conn_index_++;
    conns_.push_back(conn);
    ++active_readers_;
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    std::thread([this, conn] { ReaderLoop(conn); }).detach();
  }
}

void Server::ReaderLoop(std::shared_ptr<ConnState> conn) {
  Tracer::SetCurrentThreadName("serve-conn-" + std::to_string(conn->index));
  MetricCounter* received = metrics_.counter("serve.requests");
  MetricCounter* shed = metrics_.counter("serve.shed");
  while (true) {
    auto frame = ReadFrame(conn->sock, options_.max_frame_bytes);
    if (!frame.ok()) {
      // kUnavailable = clean client disconnect; anything else is logged.
      if (frame.status().code() != StatusCode::kUnavailable) {
        LogWarn("serve: connection " + std::to_string(conn->index) +
                " read failed: " + frame.status().ToString());
      }
      break;
    }
    stats_.requests_received.fetch_add(1, std::memory_order_relaxed);
    received->Increment();
    conn->requests.fetch_add(1, std::memory_order_relaxed);

    auto request = DecodeRequest(*frame);
    if (!request.ok()) {
      // The frame boundary is intact, but the body is hostile or corrupt:
      // answer with the decode error and drop the connection.
      Response response;
      response.code = request.status().code();
      response.message = request.status().message();
      SendResponse(conn, response);
      metrics_.Increment("serve.bad_frames");
      break;
    }

    WorkItem item;
    item.conn = conn;
    item.request = std::move(request).value();
    const double deadline_ms = item.request.deadline_ms > 0.0
                                   ? item.request.deadline_ms
                                   : options_.default_deadline_ms;
    if (deadline_ms > 0.0) {
      item.token = CancellationToken::WithDeadline(deadline_ms / 1e3);
      item.has_token = true;
    }
    item.enqueue_steady_ns = SteadyNowNs();
    item.enqueue_trace_ns = Tracer::Global().NowNs();

    const MessageType type = item.request.type;
    const std::uint64_t id = item.request.id;
    if (!queue_.TryPush(std::move(item))) {
      // Admission control: full (or draining) queue sheds with an explicit
      // kUnavailable instead of queueing unboundedly.
      stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      shed->Increment();
      Response response;
      response.type = type;
      response.id = id;
      response.code = StatusCode::kUnavailable;
      response.message = "admission queue full, request shed";
      SendResponse(conn, response);
    }
  }
  LogInfo("serve: connection " + std::to_string(conn->index) + " closed (" +
          std::to_string(conn->requests.load(std::memory_order_relaxed)) +
          " requests)");
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].get() == conn.get()) {
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  --active_readers_;
  readers_done_.notify_all();
}

void Server::WorkerLoop(std::size_t worker_index) {
  Tracer::SetCurrentThreadName("serve-worker-" + std::to_string(worker_index));
  ExecContext& ctx = *worker_contexts_[worker_index];
  LatencyHistogram* queue_wait = metrics_.histogram("serve.queue_wait");
  MetricCounter* ok = metrics_.counter("serve.ok");
  MetricCounter* errors = metrics_.counter("serve.errors");
  WorkItem item;
  while (queue_.Pop(&item)) {
    if (shutdown_requested_.load(std::memory_order_acquire)) {
      stats_.drained_in_flight.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t wait_ns = SteadyNowNs() - item.enqueue_steady_ns;
    queue_wait->Record(wait_ns);
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) {
      tracer.RecordComplete("serve.queue_wait", item.enqueue_trace_ns,
                            wait_ns);
    }
    TraceSpan span("serve.request");

    Response response;
    response.type = item.request.type;
    response.id = item.request.id;
    if (item.has_token && item.token.expired()) {
      // The deadline budget covers queue wait: a request that expired while
      // queued is answered without touching the engine.
      response.code = StatusCode::kDeadlineExceeded;
      response.message = "deadline expired in admission queue";
    } else {
      if (options_.worker_hook_for_test) {
        options_.worker_hook_for_test(item.request);
      }
      ctx.set_cancel(item.has_token ? &item.token : nullptr);
      Execute(ctx, item, &response);
      ctx.set_cancel(nullptr);
    }
    if (response.ok()) {
      stats_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      ok->Increment();
    } else {
      if (response.code == StatusCode::kDeadlineExceeded) {
        stats_.requests_deadline_exceeded.fetch_add(1,
                                                    std::memory_order_relaxed);
      }
      stats_.requests_error.fetch_add(1, std::memory_order_relaxed);
      errors->Increment();
    }
    SendResponse(item.conn, response);
    item = WorkItem{};  // release the connection reference promptly
  }
}

void Server::Execute(ExecContext& ctx, const WorkItem& item,
                     Response* response) {
  const Request& request = item.request;
  switch (request.type) {
    case MessageType::kPing:
      return;
    case MessageType::kRecommend: {
      auto rec = engine_.Recommend(request.series[0], ctx);
      if (!rec.ok()) {
        response->code = rec.status().code();
        response->message = rec.status().message();
        return;
      }
      response->algorithms.emplace_back(impute::AlgorithmToString(*rec));
      return;
    }
    case MessageType::kRecommendBatch: {
      RecommendBatchOptions batch_options;
      auto recs = engine_.RecommendBatch(request.series, batch_options, ctx);
      if (!recs.ok()) {
        response->code = recs.status().code();
        response->message = recs.status().message();
        return;
      }
      response->algorithms.reserve(recs->size());
      for (impute::Algorithm algorithm : *recs) {
        response->algorithms.emplace_back(
            impute::AlgorithmToString(algorithm));
      }
      return;
    }
    case MessageType::kRepair: {
      auto repaired = engine_.Repair(request.series[0], ctx);
      if (!repaired.ok()) {
        response->code = repaired.status().code();
        response->message = repaired.status().message();
        return;
      }
      response->series.push_back(std::move(repaired).value());
      return;
    }
  }
  response->code = StatusCode::kInternal;
  response->message = "unhandled request type";
}

void Server::SendResponse(const std::shared_ptr<ConnState>& conn,
                          const Response& response) {
  const std::string body = EncodeResponse(response);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  Status written = WriteFrame(conn->sock, body);
  if (written.ok()) {
    stats_.responses_sent.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.Increment("serve.write_errors");
    LogWarn("serve: connection " + std::to_string(conn->index) +
            " write failed: " + written.ToString());
  }
}

ServeStats Server::stats() const {
  ServeStats out;
  out.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  out.requests_received =
      stats_.requests_received.load(std::memory_order_relaxed);
  out.requests_ok = stats_.requests_ok.load(std::memory_order_relaxed);
  out.requests_error = stats_.requests_error.load(std::memory_order_relaxed);
  out.requests_shed = stats_.requests_shed.load(std::memory_order_relaxed);
  out.requests_deadline_exceeded =
      stats_.requests_deadline_exceeded.load(std::memory_order_relaxed);
  out.responses_sent = stats_.responses_sent.load(std::memory_order_relaxed);
  out.drained_in_flight =
      stats_.drained_in_flight.load(std::memory_order_relaxed);
  return out;
}

StageMetrics Server::MetricsSnapshot() const {
  Metrics merged;
  metrics_.MergeInto(&merged);
  for (const auto& ctx : worker_contexts_) {
    ctx->metrics().MergeInto(&merged);
  }
  return merged.Snapshot();
}

}  // namespace adarts::net
