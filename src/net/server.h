#ifndef ADARTS_NET_SERVER_H_
#define ADARTS_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "adarts/adarts.h"
#include "common/bounded_queue.h"
#include "common/cancellation.h"
#include "common/exec_context.h"
#include "common/metrics.h"
#include "common/sliding_histogram.h"
#include "common/status.h"
#include "net/engine_registry.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace adarts::net {

/// Operator knobs for the serving daemon (DESIGN.md §10).
struct ServeOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// `Server::port()`).
  std::uint16_t port = 0;
  int backlog = 64;
  /// Request executor threads. Each owns one long-lived `ExecContext`, so
  /// with the default single worker every request drives through one shared
  /// context; more workers trade strict sharing for parallel requests and
  /// their metrics are folded back into one registry at export.
  std::size_t num_workers = 1;
  /// Pool width of each worker's ExecContext (batch requests fan out on
  /// it). 1 = serial.
  std::size_t threads_per_worker = 1;
  /// Admission-queue bound: requests beyond it are shed with kUnavailable
  /// instead of queueing unboundedly.
  std::size_t queue_capacity = 64;
  /// Concurrent connections; beyond the cap the server accepts, answers one
  /// kUnavailable refusal frame, and closes — an explicit signal the client
  /// can back off on, instead of unbounded reader-thread growth.
  std::size_t max_connections = 256;
  /// Snapshot path reloads fall back to when a kReload request (or SIGHUP)
  /// names no path of its own; also recorded in the swap log. Empty
  /// disables pathless reloads.
  std::string model_path;
  /// Default per-request deadline (measured from admission) applied when a
  /// request carries none; <= 0 disables.
  double default_deadline_ms = 0.0;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Test-only: run by the executing worker right before each admitted
  /// request (never for shed or expired-deadline short-circuits). Lets
  /// tests hold a worker mid-request to fill the queue deterministically.
  std::function<void(const Request&)> worker_hook_for_test;
};

/// Monotonic totals since Start; readable at any time.
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  /// Connections refused at the cap (accepted, answered kUnavailable,
  /// closed).
  std::uint64_t connections_refused = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_error = 0;
  std::uint64_t requests_shed = 0;
  std::uint64_t requests_deadline_exceeded = 0;
  std::uint64_t responses_sent = 0;
  /// Requests a worker popped from the queue after shutdown was requested —
  /// in-flight work the drain finished and answered rather than dropped.
  std::uint64_t drained_in_flight = 0;
  /// Engine hot-swaps that published a new engine / were rejected with the
  /// old engine left serving.
  std::uint64_t reloads_ok = 0;
  std::uint64_t reloads_failed = 0;
  /// kStats telemetry scrapes answered (directly from reader threads; they
  /// never enter the admission queue and never touch the verdict counters).
  std::uint64_t stats_scrapes = 0;
};

/// One live telemetry scrape (DESIGN.md §14): everything an operator needs
/// to see "right now" folded into a copyable snapshot — identity (engine
/// version, uptime), pressure (queue depth, shed/refused totals), the swap
/// log tail, the cumulative folded metrics, and the last-minute windowed
/// latency percentiles the cumulative histograms cannot show. Produced by
/// `Server::Telemetry()` against live recorders; rendered as JSON for the
/// kStats frame and as Prometheus exposition text for `GET /metrics`.
struct ServeTelemetry {
  std::uint64_t engine_version = 0;
  double uptime_seconds = 0.0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  /// False once a drain began: the readiness signal `/readyz` reports.
  bool ready = false;
  bool draining = false;
  ServeStats stats;
  /// Successful swaps since startup plus the most recent swap-log entries
  /// (newest last, at most kSwapTail).
  std::uint64_t swap_count = 0;
  std::vector<SwapRecord> swap_tail;
  /// Cumulative: serve-level registry + every worker context, folded live.
  StageMetrics metrics;
  /// Last-window percentiles of request latency (admission to response,
  /// queue wait included) and of queue wait alone.
  WindowedSnapshot window_latency;
  WindowedSnapshot window_queue_wait;

  static constexpr std::size_t kSwapTail = 8;

  /// The kStats JSON document (one object; keys are stable and sorted
  /// within each section — tools/adarts_top and the tests parse it with
  /// common/json).
  std::string ToJson() const;
};

/// The long-lived serving front end: accepts length-prefixed request frames
/// on loopback TCP, pushes them through a bounded admission queue, and
/// executes them against a loaded `Adarts` engine on worker-owned
/// `ExecContext`s with per-request cooperative deadlines.
///
/// Lifecycle: `Start()` binds and spawns threads; `RequestShutdown()`
/// (async-signal-safe — an atomic store plus a self-pipe write) begins
/// graceful drain; `Wait()` blocks until the drain completes: accepting
/// stops, connection read sides shut down, every request already admitted
/// to the queue is executed and answered, metrics are folded, sockets
/// close. No in-flight reply is ever dropped.
class Server {
 public:
  /// `engine` must outlive the server (non-owning; the server wraps it in a
  /// no-op-deleter shared_ptr for the registry). Reloads still work: the
  /// replacement engines are owned by the registry normally.
  Server(const Adarts& engine, ServeOptions options);
  /// Owning form: the server's registry keeps the engine alive.
  Server(std::shared_ptr<const Adarts> engine, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept loop + workers.
  Status Start();

  /// The bound port (valid after Start).
  std::uint16_t port() const { return port_; }

  /// Begins graceful shutdown; safe from any thread and from signal
  /// handlers, idempotent.
  void RequestShutdown();

  /// Blocks until shutdown is requested and the drain completes. Returns
  /// the accept loop's terminal status (OK for a clean drain).
  Status Wait();

  ServeStats stats() const;

  /// Serve-level metrics plus every worker context's engine metrics
  /// (`recommend.latency`, per-stage spans) folded into one snapshot.
  /// Callable at any time — workers record wait-free, so folding live
  /// registries observes a consistent monotone prefix of the traffic.
  StageMetrics MetricsSnapshot() const;

  /// The full live telemetry snapshot (DESIGN.md §14): MetricsSnapshot
  /// plus identity, queue pressure, windowed percentiles and the swap-log
  /// tail. This is what a kStats frame or a `GET /metrics` scrape renders;
  /// it never stops the workers.
  ServeTelemetry Telemetry() const;

  /// Queues an out-of-band reload (the SIGHUP path): load-validate the
  /// snapshot at `path` (empty = ServeOptions::model_path), canary-check it,
  /// swap on success. Returns once the job is queued — the outcome lands in
  /// the swap log and `stats()`. kUnavailable if a reload is already
  /// pending or the server is draining.
  Status RequestReload(const std::string& path);

  /// The registry holding the live engine; valid for the server's lifetime.
  /// Exposed for swap-log inspection and version queries.
  const EngineRegistry& registry() const { return registry_; }

 private:
  struct ConnState {
    Socket sock;
    std::mutex write_mu;
    std::uint64_t index = 0;
    std::atomic<std::uint64_t> requests{0};
  };

  struct WorkItem {
    std::shared_ptr<ConnState> conn;
    Request request;
    CancellationToken token;
    bool has_token = false;
    std::uint64_t enqueue_steady_ns = 0;
    std::uint64_t enqueue_trace_ns = 0;
  };

  /// One queued hot-swap attempt. `conn` is null for out-of-band (SIGHUP)
  /// reloads, which report only through the swap log.
  struct ReloadJob {
    std::shared_ptr<ConnState> conn;
    Request request;
  };

  void AcceptLoop();
  void RefuseConnection(Socket& sock);
  void ReaderLoop(std::shared_ptr<ConnState> conn);
  void WorkerLoop(std::size_t worker_index);
  void ReloadLoop();
  /// The whole reload pipeline: Load (header + checksum verified), canary
  /// recommend on a synthetic series, registry swap. Any failure leaves the
  /// active engine serving and returns the precise error.
  Status DoReload(ExecContext& ctx, const std::string& requested_path);
  void Execute(ExecContext& ctx, const Adarts& engine, const WorkItem& item,
               Response* response);
  void SendResponse(const std::shared_ptr<ConnState>& conn,
                    const Response& response);

  EngineRegistry registry_;
  const ServeOptions options_;
  std::uint16_t port_ = 0;
  Socket listener_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> started_{false};

  BoundedQueue<WorkItem> queue_;
  /// Capacity 1: at most one reload in flight; a second request while one
  /// runs is answered kUnavailable ("reload already in progress").
  BoundedQueue<ReloadJob> reload_queue_;
  std::vector<std::unique_ptr<ExecContext>> worker_contexts_;
  std::vector<std::thread> workers_;
  std::thread accept_thread_;
  std::thread reload_thread_;
  Status accept_status_;

  mutable std::mutex conns_mu_;
  std::condition_variable readers_done_;
  std::vector<std::shared_ptr<ConnState>> conns_;
  std::size_t active_readers_ = 0;
  std::uint64_t next_conn_index_ = 0;

  mutable Metrics metrics_;

  /// Steady-clock origin for `ServeTelemetry::uptime_seconds` (set in
  /// Start).
  std::uint64_t start_steady_ns_ = 0;
  /// Last-minute request-latency / queue-wait windows (12 × 5 s buckets);
  /// workers record wait-free, scrapes fold without stopping them.
  SlidingHistogram window_latency_;
  SlidingHistogram window_queue_wait_;

  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_refused{0};
    std::atomic<std::uint64_t> requests_received{0};
    std::atomic<std::uint64_t> requests_ok{0};
    std::atomic<std::uint64_t> requests_error{0};
    std::atomic<std::uint64_t> requests_shed{0};
    std::atomic<std::uint64_t> requests_deadline_exceeded{0};
    std::atomic<std::uint64_t> responses_sent{0};
    std::atomic<std::uint64_t> drained_in_flight{0};
    std::atomic<std::uint64_t> reloads_ok{0};
    std::atomic<std::uint64_t> reloads_failed{0};
    std::atomic<std::uint64_t> stats_scrapes{0};
  };
  AtomicStats stats_;
};

}  // namespace adarts::net

#endif  // ADARTS_NET_SERVER_H_
