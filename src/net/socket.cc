#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace adarts::net {

namespace {

Status ErrnoStatus(const char* what, int err) {
  return Status::Internal(std::string(what) + ": " + std::strerror(err));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::ReadExact(void* buf, std::size_t n) {
  char* out = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd_, out + done, n - done, 0);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      return done == 0
                 ? Status::Unavailable("connection closed")
                 : Status::Internal("connection closed mid-message (" +
                                    std::to_string(done) + " of " +
                                    std::to_string(n) + " bytes)");
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
  return Status::OK();
}

Result<std::size_t> Socket::ReadSome(void* buf, std::size_t n) {
  while (true) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got >= 0) return static_cast<std::size_t>(got);
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
}

Status Socket::WriteAll(const void* buf, std::size_t n) {
  const char* in = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t sent = ::send(fd_, in + done, n - done, MSG_NOSIGNAL);
    if (sent >= 0) {
      done += static_cast<std::size_t>(sent);
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Status Socket::SetReceiveTimeout(double seconds) {
  struct timeval tv = {};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) *
                               1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)", errno);
  }
  return Status::OK();
}

Result<Socket> ListenTcp(std::uint16_t port, int backlog,
                         std::uint16_t* bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(sock.fd(), backlog) != 0) return ErrnoStatus("listen", errno);
  if (bound_port != nullptr) {
    sockaddr_in actual = {};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      return ErrnoStatus("getsockname", errno);
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Result<Socket> ConnectTcp(const std::string& host, std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<Socket> AcceptConnection(Socket& listener, int wake_fd) {
  while (true) {
    pollfd fds[2];
    fds[0].fd = listener.fd();
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_fd;  // poll ignores negative fds
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    if (fds[1].revents != 0) {
      return Status::Cancelled("accept woken for shutdown");
    }
    if (fds[0].revents == 0) continue;
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return ErrnoStatus("accept", errno);
    }
    Socket conn(fd);
    const int one = 1;
    ::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return conn;
  }
}

}  // namespace adarts::net
