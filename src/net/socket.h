#ifndef ADARTS_NET_SOCKET_H_
#define ADARTS_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace adarts::net {

/// A move-only owner of one POSIX socket (or pipe) file descriptor with
/// EINTR-safe exact-length I/O — the only syscall surface the serving stack
/// touches (DESIGN.md §10). No library dependencies beyond libc.
///
/// Status vocabulary (the server and clients branch on codes, not
/// messages):
///   * `kUnavailable`  — the peer closed the connection cleanly before the
///     first byte of the requested read (normal end of a session);
///   * `kInternal`     — a mid-message EOF or an errno failure;
///   * `kCancelled`    — a poll-multiplexed call was woken by its wake fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor; idempotent.
  void Close();

  /// shutdown(2) the read side: a peer or reader thread blocked in recv
  /// wakes with EOF, but responses already in flight can still be written.
  /// The drain sequence relies on exactly this split.
  void ShutdownRead();

  /// shutdown(2) both directions.
  void ShutdownBoth();

  /// Reads exactly `n` bytes, retrying on EINTR and short reads.
  /// `kUnavailable` on clean EOF before the first byte; `kInternal` on EOF
  /// mid-read or errno failures.
  Status ReadExact(void* buf, std::size_t n);

  /// Reads at most `n` bytes and returns how many arrived: 0 on clean EOF,
  /// otherwise >= 1 (retries EINTR only). The HTTP sidecar needs this —
  /// a request has no length prefix, so it must be parsed from whatever
  /// the wire delivers. errno failures (including a receive-timeout
  /// EAGAIN) surface as `kInternal`.
  Result<std::size_t> ReadSome(void* buf, std::size_t n);

  /// Writes exactly `n` bytes, retrying on EINTR and short writes. SIGPIPE
  /// is suppressed (MSG_NOSIGNAL); a closed peer surfaces as `kInternal`.
  Status WriteAll(const void* buf, std::size_t n);

  /// Sets SO_RCVTIMEO so a lost reply turns into a clean error instead of a
  /// hang (the load generator's loss detector).
  Status SetReceiveTimeout(double seconds);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1:`port` (0 = ephemeral;
/// `*bound_port` receives the actual choice). SO_REUSEADDR is set so a
/// restarting daemon rebinds without waiting out TIME_WAIT.
Result<Socket> ListenTcp(std::uint16_t port, int backlog,
                         std::uint16_t* bound_port);

/// Blocking connect to `host`:`port` (numeric IPv4 text, e.g. "127.0.0.1").
Result<Socket> ConnectTcp(const std::string& host, std::uint16_t port);

/// Accepts one connection, multiplexed against a wake descriptor: blocks in
/// poll(2) on {listener, wake_fd} and returns `kCancelled` once `wake_fd`
/// becomes readable (the shutdown path; pass -1 for no wake fd). EINTR
/// restarts the wait.
Result<Socket> AcceptConnection(Socket& listener, int wake_fd);

}  // namespace adarts::net

#endif  // ADARTS_NET_SOCKET_H_
