#include "tda/delay_embedding.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace adarts::tda {

Result<PointCloud> DelayEmbed(const la::Vector& signal, std::size_t dimension,
                              std::size_t tau) {
  if (dimension == 0 || tau == 0) {
    return Status::InvalidArgument("embedding dimension and tau must be > 0");
  }
  const std::size_t span = (dimension - 1) * tau;
  if (signal.size() <= span) {
    return Status::InvalidArgument("series too short for delay embedding");
  }
  const std::size_t count = signal.size() - span;
  PointCloud cloud(count, la::Vector(dimension));
  for (std::size_t j = 0; j < count; ++j) {
    for (std::size_t k = 0; k < dimension; ++k) {
      cloud[j][k] = signal[j + k * tau];
    }
  }
  return cloud;
}

PointCloud MaxMinLandmarks(const PointCloud& cloud,
                           std::size_t num_landmarks) {
  if (cloud.size() <= num_landmarks) return cloud;
  PointCloud landmarks;
  landmarks.reserve(num_landmarks);
  std::vector<double> min_dist(cloud.size(),
                               std::numeric_limits<double>::infinity());
  std::size_t next = 0;
  for (std::size_t k = 0; k < num_landmarks; ++k) {
    landmarks.push_back(cloud[next]);
    // Update each point's distance to the landmark set and pick the point
    // farthest from it.
    double best = -1.0;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      const double d = EuclideanDistance(cloud[i], cloud[next]);
      min_dist[i] = std::min(min_dist[i], d);
      if (min_dist[i] > best) {
        best = min_dist[i];
        best_idx = i;
      }
    }
    next = best_idx;
  }
  return landmarks;
}

double EuclideanDistance(const la::Vector& a, const la::Vector& b) {
  ADARTS_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

la::Vector PairwiseDistances(const PointCloud& cloud) {
  const std::size_t n = cloud.size();
  la::Vector out;
  out.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      out.push_back(EuclideanDistance(cloud[i], cloud[j]));
    }
  }
  return out;
}

}  // namespace adarts::tda
