#ifndef ADARTS_TDA_DELAY_EMBEDDING_H_
#define ADARTS_TDA_DELAY_EMBEDDING_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/vector_ops.h"

namespace adarts::tda {

/// A point cloud in R^d, one point per row.
using PointCloud = std::vector<la::Vector>;

/// Takens time-delay embedding: maps the series x into points
/// v_p(j) = (x_j, x_{j+tau}, ..., x_{j+(d-1)tau}) as in Fig. 4b of the
/// paper. Requires the series to be long enough for at least one vector.
Result<PointCloud> DelayEmbed(const la::Vector& signal, std::size_t dimension,
                              std::size_t tau);

/// Greedy maxmin (farthest-point) landmark selection, reducing a cloud to at
/// most `num_landmarks` well-spread points so that Rips persistence stays
/// tractable. Deterministic: starts from the first point.
PointCloud MaxMinLandmarks(const PointCloud& cloud, std::size_t num_landmarks);

/// Euclidean distance between two points of equal dimension.
double EuclideanDistance(const la::Vector& a, const la::Vector& b);

/// Condensed pairwise distance matrix (upper triangle, row-major) of a
/// cloud: entry for (i, j), i < j at index i*n - i*(i+1)/2 + (j - i - 1).
la::Vector PairwiseDistances(const PointCloud& cloud);

}  // namespace adarts::tda

#endif  // ADARTS_TDA_DELAY_EMBEDDING_H_
