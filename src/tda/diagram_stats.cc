#include "tda/diagram_stats.h"

#include <cmath>

namespace adarts::tda {

DiagramStats ComputeDiagramStats(const PersistenceDiagram& diagram, int dim) {
  DiagramStats stats;
  la::Vector lifetimes;
  la::Vector births;
  la::Vector deaths;
  for (const auto& p : diagram.pairs) {
    if (p.dimension != dim) continue;
    lifetimes.push_back(p.Lifetime());
    births.push_back(p.birth);
    deaths.push_back(p.death);
  }
  if (lifetimes.empty()) return stats;

  stats.count = static_cast<double>(lifetimes.size());
  for (double l : lifetimes) {
    stats.total_persistence += l;
    stats.max_persistence = std::max(stats.max_persistence, l);
  }
  stats.mean_persistence = la::Mean(lifetimes);
  stats.persistence_std = la::StdDev(lifetimes);
  stats.mean_birth = la::Mean(births);
  stats.mean_death = la::Mean(deaths);

  if (stats.total_persistence > 0.0 && lifetimes.size() > 1) {
    double h = 0.0;
    for (double l : lifetimes) {
      const double p = l / stats.total_persistence;
      if (p > 0.0) h -= p * std::log(p);
    }
    stats.persistence_entropy =
        h / std::log(static_cast<double>(lifetimes.size()));
  }
  return stats;
}

la::Vector DiagramStatsToVector(const DiagramStats& s) {
  return {s.count,        s.total_persistence, s.max_persistence,
          s.mean_persistence, s.persistence_std,   s.persistence_entropy,
          s.mean_birth,   s.mean_death};
}

}  // namespace adarts::tda
