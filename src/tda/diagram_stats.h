#ifndef ADARTS_TDA_DIAGRAM_STATS_H_
#define ADARTS_TDA_DIAGRAM_STATS_H_

#include "la/vector_ops.h"
#include "tda/persistence.h"

namespace adarts::tda {

/// Summary statistics of one homology dimension of a persistence diagram.
/// These distribution summaries are the topological features the paper feeds
/// to the classifiers (Section V-B).
struct DiagramStats {
  double count = 0.0;            ///< number of finite pairs
  double total_persistence = 0.0;  ///< sum of lifetimes
  double max_persistence = 0.0;    ///< longest-lived pattern
  double mean_persistence = 0.0;
  double persistence_std = 0.0;
  double persistence_entropy = 0.0;  ///< normalised entropy of lifetimes
  double mean_birth = 0.0;
  double mean_death = 0.0;
};

/// Computes summary statistics for the pairs of `dim` in `diagram`.
DiagramStats ComputeDiagramStats(const PersistenceDiagram& diagram, int dim);

/// Flattens stats into a feature sub-vector (fixed order, 8 entries).
la::Vector DiagramStatsToVector(const DiagramStats& stats);

}  // namespace adarts::tda

#endif  // ADARTS_TDA_DIAGRAM_STATS_H_
