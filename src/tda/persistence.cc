#include "tda/persistence.h"

#include <algorithm>
#include <numeric>

namespace adarts::tda {

namespace {

/// Disjoint-set forest with path compression and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns false if already in the same set.
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

struct Edge {
  std::size_t i;
  std::size_t j;
  double dist;
};

struct Triangle {
  // Edge indices in filtration order; filtration value = longest edge.
  int e0;
  int e1;
  int e2;
  double filtration;
};

}  // namespace

std::vector<PersistencePair> PersistenceDiagram::Dimension(int dim) const {
  std::vector<PersistencePair> out;
  for (const auto& p : pairs) {
    if (p.dimension == dim) out.push_back(p);
  }
  return out;
}

Result<PersistenceDiagram> ComputeRipsPersistence(const PointCloud& cloud,
                                                  const RipsOptions& options) {
  const std::size_t n = cloud.size();
  if (n < 2) return Status::InvalidArgument("Rips needs at least two points");
  if (options.max_dimension < 0 || options.max_dimension > 1) {
    return Status::NotImplemented("Rips persistence supports dimensions 0-1");
  }

  // Edge filtration, sorted ascending by length.
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  double max_filtration = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = EuclideanDistance(cloud[i], cloud[j]);
      edges.push_back({i, j, d});
      max_filtration = std::max(max_filtration, d);
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  PersistenceDiagram diagram;
  diagram.max_filtration = max_filtration;

  // --- H0 via union-find over the sorted edges. Edges that join two
  // components kill an H0 class; the rest create cycles (H1 candidates).
  UnionFind uf(n);
  std::vector<bool> creates_cycle(edges.size(), false);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (uf.Union(edges[e].i, edges[e].j)) {
      diagram.pairs.push_back({0, 0.0, edges[e].dist});
    } else {
      creates_cycle[e] = true;
    }
  }
  // The essential component is capped at the maximum filtration value.
  diagram.pairs.push_back({0, 0.0, max_filtration});

  if (options.max_dimension >= 1) {
    // Edge-index lookup for triangle construction.
    std::vector<int> edge_index(n * n, -1);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      edge_index[edges[e].i * n + edges[e].j] = static_cast<int>(e);
    }
    const auto eidx = [&](std::size_t a, std::size_t b) {
      return a < b ? edge_index[a * n + b] : edge_index[b * n + a];
    };

    std::vector<Triangle> triangles;
    triangles.reserve(n * (n - 1) * (n - 2) / 6);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        for (std::size_t k = j + 1; k < n; ++k) {
          const int e0 = eidx(i, j);
          const int e1 = eidx(i, k);
          const int e2 = eidx(j, k);
          const double f = std::max(
              {edges[e0].dist, edges[e1].dist, edges[e2].dist});
          triangles.push_back({e0, e1, e2, f});
        }
      }
    }
    std::sort(triangles.begin(), triangles.end(),
              [](const Triangle& a, const Triangle& b) {
                return a.filtration < b.filtration;
              });

    // Z/2 boundary-matrix reduction: each triangle column holds its three
    // edge indices; the pivot is the column's maximum (latest) edge.
    std::vector<int> pivot_owner(edges.size(), -1);
    std::vector<std::vector<int>> reduced_columns;
    reduced_columns.reserve(triangles.size());
    std::vector<int> scratch;

    for (const Triangle& tri : triangles) {
      std::vector<int> col = {tri.e0, tri.e1, tri.e2};
      std::sort(col.begin(), col.end());
      while (!col.empty()) {
        const int pivot = col.back();
        const int owner = pivot_owner[pivot];
        if (owner < 0) break;
        // col ^= reduced_columns[owner]  (symmetric difference over Z/2).
        const std::vector<int>& other = reduced_columns[owner];
        scratch.clear();
        std::set_symmetric_difference(col.begin(), col.end(), other.begin(),
                                      other.end(),
                                      std::back_inserter(scratch));
        col.swap(scratch);
      }
      if (!col.empty()) {
        const int pivot = col.back();
        pivot_owner[pivot] = static_cast<int>(reduced_columns.size());
        reduced_columns.push_back(std::move(col));
        const double birth = edges[static_cast<std::size_t>(pivot)].dist;
        const double death = tri.filtration;
        if (death > birth) {
          diagram.pairs.push_back({1, birth, death});
        }
      } else {
        reduced_columns.emplace_back();
      }
    }

    // Cycle-creating edges never claimed as a pivot are essential 1-cycles;
    // cap their death at the maximum filtration value.
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (creates_cycle[e] && pivot_owner[e] < 0 &&
          max_filtration > edges[e].dist) {
        diagram.pairs.push_back({1, edges[e].dist, max_filtration});
      }
    }
  }

  if (options.min_relative_persistence > 0.0 && max_filtration > 0.0) {
    const double cutoff = options.min_relative_persistence * max_filtration;
    std::erase_if(diagram.pairs, [&](const PersistencePair& p) {
      return p.Lifetime() < cutoff;
    });
  }
  return diagram;
}

}  // namespace adarts::tda
