#ifndef ADARTS_TDA_PERSISTENCE_H_
#define ADARTS_TDA_PERSISTENCE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "tda/delay_embedding.h"

namespace adarts::tda {

/// One point (b_i, d_i) of a persistence diagram: a topological pattern born
/// at filtration value `birth` and destroyed at `death` (Fig. 4c).
struct PersistencePair {
  int dimension = 0;  ///< homology dimension (0 = components, 1 = loops)
  double birth = 0.0;
  double death = 0.0;

  double Lifetime() const { return death - birth; }
};

/// A persistence diagram: the multiset of finite birth/death pairs produced
/// by the Vietoris-Rips filtration. Essential classes (which never die) are
/// capped at the maximum filtration value so diagram statistics stay finite.
struct PersistenceDiagram {
  std::vector<PersistencePair> pairs;
  double max_filtration = 0.0;

  /// Pairs of the given dimension, in filtration order.
  std::vector<PersistencePair> Dimension(int dim) const;
};

/// Options for the Rips computation.
struct RipsOptions {
  /// Highest homology dimension to compute (0 or 1).
  int max_dimension = 1;
  /// Drop pairs whose lifetime is below this fraction of max_filtration
  /// (noise suppression). 0 keeps everything.
  double min_relative_persistence = 0.0;
};

/// Computes the Vietoris-Rips persistence diagram of a point cloud.
///
/// H0 is computed by a union-find pass over the edge filtration; H1 by
/// standard Z/2 boundary-matrix reduction over the triangle columns. The
/// cloud should be small (landmark-subsampled); cost is O(n^3) triangles.
Result<PersistenceDiagram> ComputeRipsPersistence(
    const PointCloud& cloud, const RipsOptions& options = {});

}  // namespace adarts::tda

#endif  // ADARTS_TDA_PERSISTENCE_H_
