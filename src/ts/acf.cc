#include "ts/acf.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace adarts::ts {

la::Vector Acf(const la::Vector& signal, std::size_t max_lag) {
  const std::size_t n = signal.size();
  la::Vector acf(max_lag + 1, 0.0);
  if (n == 0) return acf;
  acf[0] = 1.0;
  const double mean = la::Mean(signal);
  double denom = 0.0;
  for (double v : signal) denom += (v - mean) * (v - mean);
  if (denom <= 0.0) return acf;
  for (std::size_t lag = 1; lag <= max_lag && lag < n; ++lag) {
    double num = 0.0;
    for (std::size_t t = lag; t < n; ++t) {
      num += (signal[t] - mean) * (signal[t - lag] - mean);
    }
    acf[lag] = num / denom;
  }
  return acf;
}

la::Vector Pacf(const la::Vector& signal, std::size_t max_lag) {
  // Durbin-Levinson: phi[k][k] is the PACF at lag k.
  const la::Vector rho = Acf(signal, max_lag);
  la::Vector pacf(max_lag, 0.0);
  if (max_lag == 0) return pacf;

  la::Vector phi_prev(max_lag + 1, 0.0);
  la::Vector phi_cur(max_lag + 1, 0.0);
  double v = 1.0;

  for (std::size_t k = 1; k <= max_lag; ++k) {
    double num = rho[k];
    for (std::size_t j = 1; j < k; ++j) num -= phi_prev[j] * rho[k - j];
    const double phi_kk = (v > 1e-12) ? num / v : 0.0;
    phi_cur[k] = phi_kk;
    for (std::size_t j = 1; j < k; ++j) {
      phi_cur[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
    }
    v *= (1.0 - phi_kk * phi_kk);
    pacf[k - 1] = phi_kk;
    phi_prev = phi_cur;
  }
  return pacf;
}

std::size_t FirstAcfCrossing(const la::Vector& signal, std::size_t max_lag) {
  const la::Vector acf = Acf(signal, max_lag);
  const double threshold = 1.0 / std::numbers::e;
  for (std::size_t lag = 1; lag < acf.size(); ++lag) {
    if (acf[lag] < threshold) return lag;
  }
  return max_lag;
}

}  // namespace adarts::ts
