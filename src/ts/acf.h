#ifndef ADARTS_TS_ACF_H_
#define ADARTS_TS_ACF_H_

#include <cstddef>

#include "la/vector_ops.h"

namespace adarts::ts {

/// Sample autocorrelation function for lags 0..max_lag (entry 0 is 1).
/// Returns an all-zero tail for a constant signal.
la::Vector Acf(const la::Vector& signal, std::size_t max_lag);

/// Partial autocorrelation via the Durbin-Levinson recursion for lags
/// 1..max_lag (entry 0 corresponds to lag 1).
la::Vector Pacf(const la::Vector& signal, std::size_t max_lag);

/// First lag (>= 1) at which the ACF drops below 1/e — a standard
/// decorrelation-time feature.
std::size_t FirstAcfCrossing(const la::Vector& signal, std::size_t max_lag);

}  // namespace adarts::ts

#endif  // ADARTS_TS_ACF_H_
