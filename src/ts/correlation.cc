#include "ts/correlation.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/check.h"
#include "ts/fft.h"

namespace adarts::ts {

namespace {

la::Vector ZNorm(const la::Vector& v) {
  const double m = la::Mean(v);
  double sd = la::StdDev(v);
  if (sd <= 0.0) sd = 1.0;
  la::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - m) / sd;
  return out;
}

}  // namespace

double Pearson(const TimeSeries& a, const TimeSeries& b) {
  const std::size_t n = std::min(a.length(), b.length());
  la::Vector va(n), vb(n);
  for (std::size_t i = 0; i < n; ++i) {
    va[i] = a.value(i);
    vb[i] = b.value(i);
  }
  return la::PearsonCorrelation(va, vb);
}

double NormalizedCrossCorrelation(const la::Vector& a, const la::Vector& b,
                                  int lag) {
  ADARTS_CHECK(!a.empty() && !b.empty());
  const la::Vector za = ZNorm(a);
  const la::Vector zb = ZNorm(b);
  const auto n = static_cast<std::ptrdiff_t>(std::min(za.size(), zb.size()));
  double s = 0.0;
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t j = i - lag;
    if (j < 0 || j >= static_cast<std::ptrdiff_t>(zb.size())) continue;
    s += za[static_cast<std::size_t>(i)] * zb[static_cast<std::size_t>(j)];
  }
  return s / static_cast<double>(n);
}

double MaxCrossCorrelation(const la::Vector& a, const la::Vector& b,
                           int max_lag) {
  double best = -2.0;
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    best = std::max(best, NormalizedCrossCorrelation(a, b, lag));
  }
  return best;
}

double ShapeBasedDistance(const la::Vector& a, const la::Vector& b) {
  return 1.0 - BestAlignment(a, b).ncc;
}

la::Vector NccAllLags(const la::Vector& a, const la::Vector& b) {
  ADARTS_CHECK(!a.empty() && !b.empty());
  const la::Vector za = ZNorm(a);
  const la::Vector zb = ZNorm(b);
  const std::size_t n = std::max(za.size(), zb.size());
  const std::size_t fft_size = NextPowerOfTwo(2 * n);

  std::vector<std::complex<double>> fa(fft_size, {0.0, 0.0});
  std::vector<std::complex<double>> fb(fft_size, {0.0, 0.0});
  for (std::size_t i = 0; i < za.size(); ++i) fa[i] = {za[i], 0.0};
  for (std::size_t i = 0; i < zb.size(); ++i) fb[i] = {zb[i], 0.0};
  Fft(&fa);
  Fft(&fb);
  for (std::size_t i = 0; i < fft_size; ++i) fa[i] *= std::conj(fb[i]);
  Fft(&fa, /*inverse=*/true);

  // Cross-correlation CC(s) = sum_t za[t] * zb[t - s]; the inverse FFT is
  // unscaled, so divide by fft_size. NCC_c normalises by the z-norm product.
  const double norm = static_cast<double>(fft_size) *
                      (std::sqrt(static_cast<double>(za.size())) *
                       std::sqrt(static_cast<double>(zb.size())));
  la::Vector out(2 * n - 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int s = static_cast<int>(i) - static_cast<int>(n - 1);
    // Positive shifts live at index s, negative at fft_size + s (circular).
    const std::size_t idx =
        s >= 0 ? static_cast<std::size_t>(s)
               : fft_size - static_cast<std::size_t>(-s);
    out[i] = fa[idx].real() / norm;
  }
  return out;
}

SbdAlignment BestAlignment(const la::Vector& a, const la::Vector& b) {
  const la::Vector ncc = NccAllLags(a, b);
  const std::size_t n = std::max(a.size(), b.size());
  SbdAlignment best;
  for (std::size_t i = 0; i < ncc.size(); ++i) {
    if (ncc[i] > best.ncc) {
      best.ncc = ncc[i];
      best.shift = static_cast<int>(i) - static_cast<int>(n - 1);
    }
  }
  return best;
}

double AveragePairwiseCorrelation(const std::vector<TimeSeries>& series) {
  if (series.size() < 2) return 1.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = i + 1; j < series.size(); ++j) {
      sum += std::fabs(Pearson(series[i], series[j]));
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

}  // namespace adarts::ts
