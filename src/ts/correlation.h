#ifndef ADARTS_TS_CORRELATION_H_
#define ADARTS_TS_CORRELATION_H_

#include <cstddef>

#include "la/vector_ops.h"
#include "ts/time_series.h"

namespace adarts::ts {

/// Pearson correlation of two equal-length series (observed values assumed
/// complete; masks are ignored). 0 when either side is constant.
double Pearson(const TimeSeries& a, const TimeSeries& b);

/// Normalised cross-correlation coefficient NCC_c at integer `lag`
/// (positive lag shifts `b` right). Series are z-normalised internally, so
/// the result lies in [-1, 1].
double NormalizedCrossCorrelation(const la::Vector& a, const la::Vector& b,
                                  int lag);

/// Maximum normalised cross-correlation over lags in [-max_lag, max_lag],
/// the "shifted" similarity that tolerates the time shifts present in the
/// Power / Medical categories.
double MaxCrossCorrelation(const la::Vector& a, const la::Vector& b,
                           int max_lag);

/// Shape-based distance used by k-shape: 1 - max_w NCC_c(a, b, w) over all
/// alignments. Ranges in [0, 2].
double ShapeBasedDistance(const la::Vector& a, const la::Vector& b);

/// Coefficient-normalised cross-correlation NCC_c for every alignment,
/// computed in O(n log n) via FFT. Inputs are z-normalised internally.
/// Entry `i` corresponds to shift s = i - (n - 1), s in [-(n-1), n-1],
/// where n = max(|a|, |b|). Values lie in [-1, 1].
struct SbdAlignment {
  double ncc = -1.0;  ///< best NCC_c over all shifts
  int shift = 0;      ///< the maximising shift (b moved right by `shift`)
};

/// All-lags NCC_c sequence (FFT-based), used by k-shape.
la::Vector NccAllLags(const la::Vector& a, const la::Vector& b);

/// Best alignment of `b` against `a` under NCC_c.
SbdAlignment BestAlignment(const la::Vector& a, const la::Vector& b);

/// Average pairwise Pearson correlation (absolute value) across a set of
/// series; 1.0 for singleton sets. This is the rho-bar of Algorithm 2.
double AveragePairwiseCorrelation(const std::vector<TimeSeries>& series);

}  // namespace adarts::ts

#endif  // ADARTS_TS_CORRELATION_H_
