#include "ts/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace adarts::ts {

void Fft(std::vector<std::complex<double>>* data, bool inverse) {
  auto& a = *data;
  const std::size_t n = a.size();
  ADARTS_CHECK(n > 0 && (n & (n - 1)) == 0);

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

la::Vector PowerSpectrum(const la::Vector& signal) {
  if (signal.empty()) return {};
  const std::size_t n = NextPowerOfTwo(signal.size());
  std::vector<std::complex<double>> buf(n, {0.0, 0.0});
  // Remove the mean so the DC bin does not swamp the spectrum.
  const double mean = la::Mean(signal);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    buf[i] = {signal[i] - mean, 0.0};
  }
  Fft(&buf);
  la::Vector spec(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    spec[k] = std::norm(buf[k]) / static_cast<double>(n);
  }
  return spec;
}

std::size_t DominantFrequencyBin(const la::Vector& signal) {
  const la::Vector spec = PowerSpectrum(signal);
  std::size_t best = 0;
  double best_power = 0.0;
  for (std::size_t k = 1; k < spec.size(); ++k) {
    if (spec[k] > best_power) {
      best_power = spec[k];
      best = k;
    }
  }
  return best_power > 0.0 ? best : 0;
}

double EstimatePeriod(const la::Vector& signal) {
  const std::size_t bin = DominantFrequencyBin(signal);
  if (bin == 0) return 0.0;
  const std::size_t n = NextPowerOfTwo(signal.size());
  return static_cast<double>(n) / static_cast<double>(bin);
}

double SpectralEntropy(const la::Vector& signal) {
  const la::Vector spec = PowerSpectrum(signal);
  if (spec.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t k = 1; k < spec.size(); ++k) total += spec[k];
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (std::size_t k = 1; k < spec.size(); ++k) {
    const double p = spec[k] / total;
    if (p > 0.0) h -= p * std::log(p);
  }
  const double hmax = std::log(static_cast<double>(spec.size() - 1));
  return hmax > 0.0 ? h / hmax : 0.0;
}

}  // namespace adarts::ts
