#ifndef ADARTS_TS_FFT_H_
#define ADARTS_TS_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

#include "la/vector_ops.h"

namespace adarts::ts {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data` size must be a power
/// of two. Set `inverse` for the (unscaled) inverse transform.
void Fft(std::vector<std::complex<double>>* data, bool inverse = false);

/// Next power of two >= n (n >= 1).
std::size_t NextPowerOfTwo(std::size_t n);

/// One-sided power spectrum of a real signal, zero-padded to a power of two.
/// Entry k is |X_k|^2 / N for k in [0, N/2].
la::Vector PowerSpectrum(const la::Vector& signal);

/// Index of the dominant non-DC frequency bin in the power spectrum, or 0
/// when the signal is flat. The corresponding period in samples is
/// padded_length / bin.
std::size_t DominantFrequencyBin(const la::Vector& signal);

/// Estimated dominant period in samples (0 when aperiodic / flat).
double EstimatePeriod(const la::Vector& signal);

/// Spectral entropy of the one-sided spectrum, normalised to [0, 1].
double SpectralEntropy(const la::Vector& signal);

}  // namespace adarts::ts

#endif  // ADARTS_TS_FFT_H_
