#include "ts/metrics.h"

#include <cmath>

namespace adarts::ts {

namespace {

Status CheckAligned(const TimeSeries& truth, const TimeSeries& imputed) {
  if (truth.length() != imputed.length()) {
    return Status::InvalidArgument("series length mismatch");
  }
  if (truth.MissingCount() == 0) {
    return Status::InvalidArgument("no masked positions to evaluate");
  }
  return Status::OK();
}

}  // namespace

Result<double> ImputationRmse(const TimeSeries& truth_with_mask,
                              const TimeSeries& imputed) {
  ADARTS_RETURN_NOT_OK(CheckAligned(truth_with_mask, imputed));
  double se = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth_with_mask.length(); ++i) {
    if (!truth_with_mask.IsMissing(i)) continue;
    const double d = truth_with_mask.value(i) - imputed.value(i);
    se += d * d;
    ++n;
  }
  return std::sqrt(se / static_cast<double>(n));
}

Result<double> ImputationMae(const TimeSeries& truth_with_mask,
                             const TimeSeries& imputed) {
  ADARTS_RETURN_NOT_OK(CheckAligned(truth_with_mask, imputed));
  double ae = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth_with_mask.length(); ++i) {
    if (!truth_with_mask.IsMissing(i)) continue;
    ae += std::fabs(truth_with_mask.value(i) - imputed.value(i));
    ++n;
  }
  return ae / static_cast<double>(n);
}

Result<double> Smape(const la::Vector& actual, const la::Vector& forecast) {
  if (actual.size() != forecast.size() || actual.empty()) {
    return Status::InvalidArgument("sMAPE requires equal non-empty vectors");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double denom = std::fabs(actual[i]) + std::fabs(forecast[i]);
    if (denom > 0.0) {
      s += 2.0 * std::fabs(forecast[i] - actual[i]) / denom;
    }
  }
  return s / static_cast<double>(actual.size());
}

}  // namespace adarts::ts
