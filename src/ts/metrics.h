#ifndef ADARTS_TS_METRICS_H_
#define ADARTS_TS_METRICS_H_

#include "common/status.h"
#include "ts/time_series.h"

namespace adarts::ts {

/// Root mean squared error between imputed values and the hidden truth,
/// evaluated only at the positions masked in `truth_with_mask`.
/// `imputed` must be the repaired series (same length).
Result<double> ImputationRmse(const TimeSeries& truth_with_mask,
                              const TimeSeries& imputed);

/// Mean absolute error at masked positions.
Result<double> ImputationMae(const TimeSeries& truth_with_mask,
                             const TimeSeries& imputed);

/// Symmetric mean absolute percentage error between a forecast and actuals
/// (Fig. 12 downstream metric): mean of 2|f - a| / (|f| + |a|).
Result<double> Smape(const la::Vector& actual, const la::Vector& forecast);

}  // namespace adarts::ts

#endif  // ADARTS_TS_METRICS_H_
