#include "ts/missing.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "ts/fft.h"

namespace adarts::ts {

const char* MissingPatternToString(MissingPattern p) {
  switch (p) {
    case MissingPattern::kSingleBlock:
      return "single_block";
    case MissingPattern::kMultiBlock:
      return "multi_block";
    case MissingPattern::kBlackout:
      return "blackout";
    case MissingPattern::kTipOfSeries:
      return "tip_of_series";
  }
  return "unknown";
}

Status InjectSingleBlock(std::size_t block_len, Rng* rng, TimeSeries* series) {
  const std::size_t n = series->length();
  if (block_len == 0) return Status::InvalidArgument("block_len == 0");
  if (block_len + 1 >= n) {
    return Status::InvalidArgument("block longer than series");
  }
  // Keep index 0 observed so every imputer has an anchor point.
  const std::size_t start =
      1 + static_cast<std::size_t>(rng->UniformInt(n - block_len - 1));
  return InjectBlockAt(start, block_len, series);
}

Status InjectMultiBlock(std::size_t num_blocks, std::size_t block_len,
                        Rng* rng, TimeSeries* series) {
  const std::size_t n = series->length();
  if (num_blocks == 0 || block_len == 0) {
    return Status::InvalidArgument("empty multi-block spec");
  }
  // Each block consumes block_len positions plus one observed separator.
  const std::size_t needed = num_blocks * (block_len + 1) + 1;
  if (needed >= n) {
    return Status::InvalidArgument("multi-block spec longer than series");
  }
  const std::size_t slack = n - needed;
  std::size_t cursor = 1;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t jitter =
        static_cast<std::size_t>(rng->UniformInt(slack / num_blocks + 1));
    cursor += jitter;
    ADARTS_RETURN_NOT_OK(InjectBlockAt(cursor, block_len, series));
    cursor += block_len + 1;
  }
  return Status::OK();
}

Status InjectTipBlock(double fraction, TimeSeries* series) {
  if (fraction <= 0.0 || fraction >= 1.0) {
    return Status::InvalidArgument("tip fraction must be in (0, 1)");
  }
  const std::size_t n = series->length();
  std::size_t len = static_cast<std::size_t>(
      std::round(fraction * static_cast<double>(n)));
  len = std::clamp<std::size_t>(len, 1, n - 2);
  return InjectBlockAt(n - len, len, series);
}

Status InjectBlockAt(std::size_t start, std::size_t len, TimeSeries* series) {
  if (start + len > series->length()) {
    return Status::OutOfRange("missing block exceeds series bounds");
  }
  for (std::size_t i = start; i < start + len; ++i) {
    series->SetMissing(i, true);
  }
  return Status::OK();
}

namespace {

/// Shared validation for the rate-parameterised generators: a sane rate and
/// enough room to keep index 0 (plus at least one more point) observed.
Status ValidateRateAndLength(double rate, std::size_t n) {
  if (rate <= 0.0 || rate >= 1.0) {
    return Status::InvalidArgument("missing rate must be in (0, 1)");
  }
  if (n < 8) return Status::InvalidArgument("series too short for scenario");
  return Status::OK();
}

/// Block length for a target missing fraction, clamped so at least half the
/// series stays observed.
std::size_t RateBlockLen(double rate, std::size_t n) {
  const auto len =
      static_cast<std::size_t>(std::round(rate * static_cast<double>(n)));
  return std::clamp<std::size_t>(len, 1, n / 2);
}

}  // namespace

Status InjectMcar(double rate, Rng* rng, TimeSeries* series) {
  const std::size_t n = series->length();
  ADARTS_RETURN_NOT_OK(ValidateRateAndLength(rate, n));
  // Index 0 stays observed (the imputers' anchor), so the realised fraction
  // is rate * (n-1)/n in expectation — negligible for real series lengths.
  for (std::size_t i = 1; i < n; ++i) {
    if (rng->Bernoulli(rate)) series->SetMissing(i, true);
  }
  return Status::OK();
}

Status InjectMonotoneTail(double rate, Rng* rng, TimeSeries* series) {
  const std::size_t n = series->length();
  ADARTS_RETURN_NOT_OK(ValidateRateAndLength(rate, n));
  const double target = rate * static_cast<double>(n);
  const auto tail = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::round(rng->Uniform(0.5, 1.5) * target)), 1,
      n - 2);
  return InjectBlockAt(n - tail, tail, series);
}

Status InjectSeasonalGaps(double rate, Rng* rng, TimeSeries* series) {
  const std::size_t n = series->length();
  ADARTS_RETURN_NOT_OK(ValidateRateAndLength(rate, n));
  auto period = static_cast<std::size_t>(std::round(
      EstimatePeriod(series->values())));
  // Aperiodic/flat series (or a "period" that is really the whole window)
  // fall back to a fixed cadence so the scenario still applies everywhere.
  if (period < 4 || period > n / 2) period = std::max<std::size_t>(8, n / 8);
  const auto gap = std::clamp<std::size_t>(RateBlockLen(rate, period), 1,
                                           period - 2);
  // One phase offset shared by every cycle; >= 1 keeps index 0 observed.
  const std::size_t phase =
      1 + static_cast<std::size_t>(rng->UniformInt(period - gap));
  for (std::size_t cycle = 0; cycle + phase + gap <= n; cycle += period) {
    ADARTS_RETURN_NOT_OK(InjectBlockAt(cycle + phase, gap, series));
  }
  return Status::OK();
}

namespace {

Status ValidateSet(const std::vector<TimeSeries>* set) {
  if (set == nullptr || set->empty()) {
    return Status::InvalidArgument("empty series set");
  }
  const std::size_t n = set->front().length();
  for (const auto& s : *set) {
    if (s.length() != n) {
      return Status::InvalidArgument(
          "multi-series scenarios need one shared length");
    }
  }
  return Status::OK();
}

}  // namespace

Status InjectDisjointBlocks(double rate, Rng* rng,
                            std::vector<TimeSeries>* set) {
  ADARTS_RETURN_NOT_OK(ValidateSet(set));
  const std::size_t n = set->front().length();
  ADARTS_RETURN_NOT_OK(ValidateRateAndLength(rate, n));
  const std::size_t len = RateBlockLen(rate, n);
  // Slot the usable range [1, n) into disjoint (block + one-separator)
  // stalls; series cycle through the stalls, so blocks of different series
  // share no time index until the slots are exhausted and the layout wraps.
  const std::size_t slots = (n - 1) / (len + 1);
  if (slots == 0) return Status::InvalidArgument("block spec longer than series");
  const auto base = static_cast<std::size_t>(rng->UniformInt(slots));
  for (std::size_t i = 0; i < set->size(); ++i) {
    const std::size_t slot = (base + i) % slots;
    ADARTS_RETURN_NOT_OK(InjectBlockAt(1 + slot * (len + 1), len, &(*set)[i]));
  }
  return Status::OK();
}

Status InjectOverlappingBlocks(double rate, Rng* rng,
                               std::vector<TimeSeries>* set) {
  ADARTS_RETURN_NOT_OK(ValidateSet(set));
  const std::size_t n = set->front().length();
  ADARTS_RETURN_NOT_OK(ValidateRateAndLength(rate, n));
  const std::size_t len = std::max<std::size_t>(RateBlockLen(rate, n), 2);
  // One shared anchor window; every series jitters within +/- len/4 of it,
  // so any two blocks still overlap by at least len/2 time steps.
  const auto anchor = 1 + static_cast<std::size_t>(rng->UniformInt(n - len));
  const int spread = static_cast<int>(len / 4);
  for (auto& series : *set) {
    const int jitter = spread > 0 ? rng->UniformInt(-spread, spread) : 0;
    const auto start = static_cast<std::size_t>(std::clamp<std::int64_t>(
        static_cast<std::int64_t>(anchor) + jitter, 1,
        static_cast<std::int64_t>(n - len)));
    ADARTS_RETURN_NOT_OK(InjectBlockAt(start, len, &series));
  }
  return Status::OK();
}

Status InjectPattern(MissingPattern pattern, double fraction, Rng* rng,
                     TimeSeries* series) {
  const std::size_t n = series->length();
  if (n < 10) return Status::InvalidArgument("series too short");
  const auto frac_len = [&](double f) {
    auto len = static_cast<std::size_t>(
        std::round(f * static_cast<double>(n)));
    return std::clamp<std::size_t>(len, 1, n / 2);
  };
  switch (pattern) {
    case MissingPattern::kSingleBlock:
      return InjectSingleBlock(frac_len(fraction), rng, series);
    case MissingPattern::kMultiBlock:
      return InjectMultiBlock(3, std::max<std::size_t>(frac_len(fraction) / 3, 1),
                              rng, series);
    case MissingPattern::kBlackout:
      // For a single series a blackout degenerates to a centred block.
      return InjectBlockAt(n / 2 - frac_len(fraction) / 2, frac_len(fraction),
                           series);
    case MissingPattern::kTipOfSeries:
      return InjectTipBlock(fraction, series);
  }
  return Status::InvalidArgument("unknown pattern");
}

}  // namespace adarts::ts
