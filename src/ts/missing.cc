#include "ts/missing.h"

#include <algorithm>
#include <cmath>

namespace adarts::ts {

const char* MissingPatternToString(MissingPattern p) {
  switch (p) {
    case MissingPattern::kSingleBlock:
      return "single_block";
    case MissingPattern::kMultiBlock:
      return "multi_block";
    case MissingPattern::kBlackout:
      return "blackout";
    case MissingPattern::kTipOfSeries:
      return "tip_of_series";
  }
  return "unknown";
}

Status InjectSingleBlock(std::size_t block_len, Rng* rng, TimeSeries* series) {
  const std::size_t n = series->length();
  if (block_len == 0) return Status::InvalidArgument("block_len == 0");
  if (block_len + 1 >= n) {
    return Status::InvalidArgument("block longer than series");
  }
  // Keep index 0 observed so every imputer has an anchor point.
  const std::size_t start =
      1 + static_cast<std::size_t>(rng->UniformInt(n - block_len - 1));
  return InjectBlockAt(start, block_len, series);
}

Status InjectMultiBlock(std::size_t num_blocks, std::size_t block_len,
                        Rng* rng, TimeSeries* series) {
  const std::size_t n = series->length();
  if (num_blocks == 0 || block_len == 0) {
    return Status::InvalidArgument("empty multi-block spec");
  }
  // Each block consumes block_len positions plus one observed separator.
  const std::size_t needed = num_blocks * (block_len + 1) + 1;
  if (needed >= n) {
    return Status::InvalidArgument("multi-block spec longer than series");
  }
  const std::size_t slack = n - needed;
  std::size_t cursor = 1;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t jitter =
        static_cast<std::size_t>(rng->UniformInt(slack / num_blocks + 1));
    cursor += jitter;
    ADARTS_RETURN_NOT_OK(InjectBlockAt(cursor, block_len, series));
    cursor += block_len + 1;
  }
  return Status::OK();
}

Status InjectTipBlock(double fraction, TimeSeries* series) {
  if (fraction <= 0.0 || fraction >= 1.0) {
    return Status::InvalidArgument("tip fraction must be in (0, 1)");
  }
  const std::size_t n = series->length();
  std::size_t len = static_cast<std::size_t>(
      std::round(fraction * static_cast<double>(n)));
  len = std::clamp<std::size_t>(len, 1, n - 2);
  return InjectBlockAt(n - len, len, series);
}

Status InjectBlockAt(std::size_t start, std::size_t len, TimeSeries* series) {
  if (start + len > series->length()) {
    return Status::OutOfRange("missing block exceeds series bounds");
  }
  for (std::size_t i = start; i < start + len; ++i) {
    series->SetMissing(i, true);
  }
  return Status::OK();
}

Status InjectPattern(MissingPattern pattern, double fraction, Rng* rng,
                     TimeSeries* series) {
  const std::size_t n = series->length();
  if (n < 10) return Status::InvalidArgument("series too short");
  const auto frac_len = [&](double f) {
    auto len = static_cast<std::size_t>(
        std::round(f * static_cast<double>(n)));
    return std::clamp<std::size_t>(len, 1, n / 2);
  };
  switch (pattern) {
    case MissingPattern::kSingleBlock:
      return InjectSingleBlock(frac_len(fraction), rng, series);
    case MissingPattern::kMultiBlock:
      return InjectMultiBlock(3, std::max<std::size_t>(frac_len(fraction) / 3, 1),
                              rng, series);
    case MissingPattern::kBlackout:
      // For a single series a blackout degenerates to a centred block.
      return InjectBlockAt(n / 2 - frac_len(fraction) / 2, frac_len(fraction),
                           series);
    case MissingPattern::kTipOfSeries:
      return InjectTipBlock(fraction, series);
  }
  return Status::InvalidArgument("unknown pattern");
}

}  // namespace adarts::ts
