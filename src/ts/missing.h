#ifndef ADARTS_TS_MISSING_H_
#define ADARTS_TS_MISSING_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "ts/time_series.h"

namespace adarts::ts {

/// Missing-block shapes considered by the labeling bench, following the
/// ImputeBench scenario taxonomy referenced by the paper.
enum class MissingPattern {
  kSingleBlock,   ///< one contiguous block at a random offset
  kMultiBlock,    ///< several disjoint blocks
  kBlackout,      ///< one block in every series of a set, aligned
  kTipOfSeries,   ///< block at the very end (downstream forecasting setup)
};

const char* MissingPatternToString(MissingPattern p);

/// Marks one contiguous block of `block_len` positions missing, starting at
/// a random offset that keeps the block fully inside the series and leaves
/// the first observation intact.
Status InjectSingleBlock(std::size_t block_len, Rng* rng, TimeSeries* series);

/// Marks `num_blocks` disjoint blocks of `block_len` missing. Blocks are
/// placed left-to-right with at least one observed value between them.
Status InjectMultiBlock(std::size_t num_blocks, std::size_t block_len,
                        Rng* rng, TimeSeries* series);

/// Marks the final `fraction` of the series missing (tip block), as used in
/// the downstream forecasting experiment (Fig. 12).
Status InjectTipBlock(double fraction, TimeSeries* series);

/// Marks a block missing at an explicit [start, start+len) range.
Status InjectBlockAt(std::size_t start, std::size_t len, TimeSeries* series);

// --- ImputeGAP-style contamination generators (scenario registry) ------------
//
// The richer missingness taxonomy of the scenario registry (ts/scenario.h):
// point-wise MCAR, monotone tails, seasonality-aligned gaps, and the two
// multi-series block layouts (disjoint vs. overlapping). All are
// deterministic functions of the passed `Rng` and keep index 0 of every
// series observed, so no generator can ever mask a series completely.

/// MCAR: every position after index 0 goes missing independently with
/// probability `rate` (rate in (0, 1)). The realised fraction concentrates
/// around `rate` for long series.
Status InjectMcar(double rate, Rng* rng, TimeSeries* series);

/// Monotone missingness: one tail block from a random onset to the very end
/// of the series (once a sensor dies it stays dead). The tail length is
/// drawn uniformly from [0.5, 1.5] * rate * length (clamped to keep at
/// least two observed points), so the expected missing fraction is `rate`.
Status InjectMonotoneTail(double rate, Rng* rng, TimeSeries* series);

/// Seasonality-aligned gaps: estimates the dominant period via the FFT
/// (ts::EstimatePeriod) and masks a gap of ~`rate * period` samples at the
/// same random phase offset in every full cycle — the "outage recurs at the
/// same time of day" scenario. Falls back to a period of length/8 for
/// aperiodic series.
Status InjectSeasonalGaps(double rate, Rng* rng, TimeSeries* series);

/// Multi-series layout: one block of ~`rate * length` per series, staggered
/// left-to-right so blocks of different series do not overlap in time while
/// room remains (they wrap around when the combined block mass exceeds the
/// series length). All series must share one length.
Status InjectDisjointBlocks(double rate, Rng* rng,
                            std::vector<TimeSeries>* set);

/// Multi-series layout: one block of ~`rate * length` per series, jittered
/// around one shared anchor window so every pair of consecutive series
/// overlaps in time (the correlated-outage worst case for cross-series
/// imputers). All series must share one length.
Status InjectOverlappingBlocks(double rate, Rng* rng,
                               std::vector<TimeSeries>* set);

/// Convenience: injects a pattern chosen by enum with a size expressed as a
/// fraction of the series length (multi-block uses three blocks of
/// fraction/3 each).
Status InjectPattern(MissingPattern pattern, double fraction, Rng* rng,
                     TimeSeries* series);

}  // namespace adarts::ts

#endif  // ADARTS_TS_MISSING_H_
