#ifndef ADARTS_TS_MISSING_H_
#define ADARTS_TS_MISSING_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "ts/time_series.h"

namespace adarts::ts {

/// Missing-block shapes considered by the labeling bench, following the
/// ImputeBench scenario taxonomy referenced by the paper.
enum class MissingPattern {
  kSingleBlock,   ///< one contiguous block at a random offset
  kMultiBlock,    ///< several disjoint blocks
  kBlackout,      ///< one block in every series of a set, aligned
  kTipOfSeries,   ///< block at the very end (downstream forecasting setup)
};

const char* MissingPatternToString(MissingPattern p);

/// Marks one contiguous block of `block_len` positions missing, starting at
/// a random offset that keeps the block fully inside the series and leaves
/// the first observation intact.
Status InjectSingleBlock(std::size_t block_len, Rng* rng, TimeSeries* series);

/// Marks `num_blocks` disjoint blocks of `block_len` missing. Blocks are
/// placed left-to-right with at least one observed value between them.
Status InjectMultiBlock(std::size_t num_blocks, std::size_t block_len,
                        Rng* rng, TimeSeries* series);

/// Marks the final `fraction` of the series missing (tip block), as used in
/// the downstream forecasting experiment (Fig. 12).
Status InjectTipBlock(double fraction, TimeSeries* series);

/// Marks a block missing at an explicit [start, start+len) range.
Status InjectBlockAt(std::size_t start, std::size_t len, TimeSeries* series);

/// Convenience: injects a pattern chosen by enum with a size expressed as a
/// fraction of the series length (multi-block uses three blocks of
/// fraction/3 each).
Status InjectPattern(MissingPattern pattern, double fraction, Rng* rng,
                     TimeSeries* series);

}  // namespace adarts::ts

#endif  // ADARTS_TS_MISSING_H_
