#include "ts/scenario.h"

#include <algorithm>
#include <iterator>
#include <string>

#include "ts/missing.h"

namespace adarts::ts {
namespace {

constexpr double kDefaultRates[] = {0.05, 0.1, 0.2};

Status ForEachSeries(Status (*inject)(double, Rng*, TimeSeries*), double rate,
                     Rng* rng, std::vector<TimeSeries>* set) {
  for (auto& series : *set) {
    ADARTS_RETURN_NOT_OK(inject(rate, rng, &series));
  }
  return Status::OK();
}

Status ApplyMcar(double rate, Rng* rng, std::vector<TimeSeries>* set) {
  return ForEachSeries(&InjectMcar, rate, rng, set);
}

Status ApplySingleBlock(double rate, Rng* rng, std::vector<TimeSeries>* set) {
  for (auto& series : *set) {
    const std::size_t len = std::max<std::size_t>(
        static_cast<std::size_t>(rate * static_cast<double>(series.length())),
        2);
    ADARTS_RETURN_NOT_OK(InjectSingleBlock(len, rng, &series));
  }
  return Status::OK();
}

Status ApplyMultiBlock(double rate, Rng* rng, std::vector<TimeSeries>* set) {
  for (auto& series : *set) {
    ADARTS_RETURN_NOT_OK(
        InjectPattern(MissingPattern::kMultiBlock, rate, rng, &series));
  }
  return Status::OK();
}

Status ApplyBlackout(double rate, Rng* rng, std::vector<TimeSeries>* set) {
  // One aligned outage window shared by every series: the mask that starves
  // cross-series imputers of reference signal.
  const std::size_t n = set->front().length();
  const std::size_t len = std::clamp<std::size_t>(
      static_cast<std::size_t>(rate * static_cast<double>(n)), 1, n / 2);
  const auto start = 1 + static_cast<std::size_t>(rng->UniformInt(n - len));
  for (auto& series : *set) {
    ADARTS_RETURN_NOT_OK(InjectBlockAt(start, len, &series));
  }
  return Status::OK();
}

Status ApplyMonotoneTail(double rate, Rng* rng, std::vector<TimeSeries>* set) {
  return ForEachSeries(&InjectMonotoneTail, rate, rng, set);
}

Status ApplySeasonalGaps(double rate, Rng* rng, std::vector<TimeSeries>* set) {
  return ForEachSeries(&InjectSeasonalGaps, rate, rng, set);
}

}  // namespace

const std::vector<Scenario>& AllScenarios() {
  static const std::vector<Scenario>* const kRegistry = [] {
    const std::vector<double> rates(std::begin(kDefaultRates),
                                    std::end(kDefaultRates));
    return new std::vector<Scenario>{
        {"mcar", "point-wise missing-completely-at-random at rate r",
         &ApplyMcar, rates},
        {"single_block", "one contiguous block per series, random offset",
         &ApplySingleBlock, rates},
        {"multi_block", "three disjoint blocks per series", &ApplyMultiBlock,
         rates},
        {"blackout", "one outage window aligned across every series",
         &ApplyBlackout, rates},
        {"disjoint_blocks",
         "per-series blocks staggered so no two series are out at once",
         &InjectDisjointBlocks, rates},
        {"overlapping_blocks",
         "per-series blocks jittered around one shared window",
         &InjectOverlappingBlocks, rates},
        {"monotone_tail", "sensor dies at a random point and stays dead",
         &ApplyMonotoneTail, rates},
        {"seasonal_gaps",
         "recurring gap at the same phase of the dominant FFT period",
         &ApplySeasonalGaps, rates},
    };
  }();
  return *kRegistry;
}

Result<Scenario> FindScenario(std::string_view name) {
  std::string known;
  for (const Scenario& scenario : AllScenarios()) {
    if (scenario.name == name) return scenario;
    if (!known.empty()) known += ", ";
    known += scenario.name;
  }
  return Status::NotFound("unknown scenario '" + std::string(name) +
                          "' (known: " + known + ")");
}

Status ApplyScenario(const Scenario& scenario, double rate, Rng* rng,
                     std::vector<TimeSeries>* set) {
  if (scenario.apply == nullptr) {
    return Status::InvalidArgument("scenario has no generator");
  }
  if (rate <= 0.0 || rate >= 1.0) {
    return Status::InvalidArgument("missing rate must be in (0, 1)");
  }
  if (set == nullptr || set->empty()) {
    return Status::InvalidArgument("empty series set");
  }
  const std::size_t n = set->front().length();
  if (n < 8) return Status::InvalidArgument("series too short for scenario");
  for (const auto& series : *set) {
    if (series.length() != n) {
      return Status::InvalidArgument(
          "scenario sets need one shared series length");
    }
  }
  return scenario.apply(rate, rng, set);
}

}  // namespace adarts::ts
