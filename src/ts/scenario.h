#ifndef ADARTS_TS_SCENARIO_H_
#define ADARTS_TS_SCENARIO_H_

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ts/time_series.h"

namespace adarts::ts {

/// One missingness scenario of the contamination matrix: a named, set-wise
/// mask generator plus the missing-rate grid it is swept over. Scenarios
/// are deterministic functions of the passed `Rng` — same seed, same masks,
/// bit for bit — which is what makes `BENCH_scenarios.json` records
/// comparable across commits (tools/bench_compare).
///
/// The taxonomy follows ImputeGAP (same lead author as the paper): beyond
/// the seed repo's four block patterns it adds point-wise MCAR, monotone
/// tails, seasonality-aligned gaps, and the disjoint/overlapping
/// multi-series block layouts. Every generator keeps index 0 of each series
/// observed, so no scenario can mask a series completely.
struct Scenario {
  std::string_view name;
  std::string_view description;
  /// Masks positions of `set` in place at the given missing rate. The set's
  /// series must share one length >= 8 (multi-series layouts are set-wise).
  Status (*apply)(double rate, Rng* rng, std::vector<TimeSeries>* set);
  /// The default rate grid the benches sweep for this scenario.
  std::vector<double> rates;
};

/// The full registry, in stable sweep order. Adding a scenario here is the
/// whole integration: benches, tests and the CI regression gate enumerate
/// this list (DESIGN.md §11).
const std::vector<Scenario>& AllScenarios();

/// Registry lookup by name; NotFound with the known names otherwise.
Result<Scenario> FindScenario(std::string_view name);

/// Validates the inputs (rate in (0, 1), non-empty set, one shared series
/// length >= 8) and applies `scenario` to `set` in place.
Status ApplyScenario(const Scenario& scenario, double rate, Rng* rng,
                     std::vector<TimeSeries>* set);

}  // namespace adarts::ts

#endif  // ADARTS_TS_SCENARIO_H_
