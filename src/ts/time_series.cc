#include "ts/time_series.h"

#include <cmath>

#include "common/check.h"

namespace adarts::ts {

TimeSeries::TimeSeries(la::Vector values, std::vector<bool> missing)
    : values_(std::move(values)), missing_(std::move(missing)) {
  ADARTS_CHECK(values_.size() == missing_.size());
}

Result<TimeSeries> TimeSeries::Create(la::Vector values,
                                      std::vector<bool> missing) {
  if (values.size() != missing.size()) {
    return Status::InvalidArgument("value/mask size mismatch: " +
                                   std::to_string(values.size()) + " vs " +
                                   std::to_string(missing.size()));
  }
  TimeSeries out(std::move(values), std::move(missing));
  ADARTS_RETURN_NOT_OK(out.ValidateObservedFinite());
  return out;
}

Status TimeSeries::ValidateObservedFinite() const {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (!missing_[i] && !std::isfinite(values_[i])) {
      return Status::InvalidArgument(
          "non-finite observed value at position " + std::to_string(i) +
          (name_.empty() ? "" : " of series '" + name_ + "'"));
    }
  }
  return Status::OK();
}

std::size_t TimeSeries::MissingCount() const {
  std::size_t n = 0;
  for (bool m : missing_) n += m ? 1 : 0;
  return n;
}

la::Vector TimeSeries::ObservedValues() const {
  la::Vector out;
  out.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (!missing_[i]) out.push_back(values_[i]);
  }
  return out;
}

std::vector<std::size_t> TimeSeries::MissingIndices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (missing_[i]) out.push_back(i);
  }
  return out;
}

TimeSeries TimeSeries::WithoutMask() const {
  TimeSeries out(values_);
  out.name_ = name_;
  return out;
}

double TimeSeries::ObservedMean() const {
  return la::Mean(ObservedValues());
}

double TimeSeries::ObservedStdDev() const {
  return la::StdDev(ObservedValues());
}

TimeSeries TimeSeries::ZNormalized() const {
  const double mean = ObservedMean();
  double sd = ObservedStdDev();
  if (sd <= 0.0) sd = 1.0;
  la::Vector vals(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    vals[i] = (values_[i] - mean) / sd;
  }
  TimeSeries out(std::move(vals), missing_);
  out.name_ = name_;
  return out;
}

}  // namespace adarts::ts
