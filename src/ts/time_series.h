#ifndef ADARTS_TS_TIME_SERIES_H_
#define ADARTS_TS_TIME_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "la/vector_ops.h"

namespace adarts::ts {

/// A univariate time series with an explicit missing-value mask.
///
/// Values at masked positions are retained (when known) so that imputation
/// quality can be evaluated against the hidden ground truth; algorithms must
/// only read positions where `IsMissing` is false.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Fully observed series.
  explicit TimeSeries(la::Vector values)
      : values_(std::move(values)), missing_(values_.size(), false) {}

  /// Series with an explicit mask; sizes must match.
  TimeSeries(la::Vector values, std::vector<bool> missing);

  /// Validating construction: rejects size mismatches and NaN/Inf at
  /// *observed* (non-masked) positions with InvalidArgument. Masked
  /// positions may hold anything — their values are placeholders. This is
  /// the boundary check the engine entry points rely on; the plain
  /// constructors stay unchecked for internal use on trusted data.
  static Result<TimeSeries> Create(la::Vector values,
                                   std::vector<bool> missing);

  /// OK when every observed position holds a finite value; InvalidArgument
  /// naming the first offending index otherwise.
  Status ValidateObservedFinite() const;

  std::size_t length() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double value(std::size_t i) const { return values_[i]; }
  void set_value(std::size_t i, double v) { values_[i] = v; }

  bool IsMissing(std::size_t i) const { return missing_[i]; }
  void SetMissing(std::size_t i, bool missing) { missing_[i] = missing; }

  const la::Vector& values() const { return values_; }
  const std::vector<bool>& missing_mask() const { return missing_; }

  /// Number of missing positions.
  std::size_t MissingCount() const;

  /// True if any position is missing.
  bool HasMissing() const { return MissingCount() > 0; }

  /// Values at observed positions, in temporal order.
  la::Vector ObservedValues() const;

  /// Indices of missing positions, ascending.
  std::vector<std::size_t> MissingIndices() const;

  /// Copy with all positions marked observed (mask cleared).
  TimeSeries WithoutMask() const;

  /// Mean / stddev over observed positions only.
  double ObservedMean() const;
  double ObservedStdDev() const;

  /// Z-score normalised copy (using observed mean/stddev); a constant series
  /// maps to all zeros. The mask is preserved.
  TimeSeries ZNormalized() const;

  /// Optional identifier (dataset bookkeeping).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  la::Vector values_;
  std::vector<bool> missing_;
  std::string name_;
};

}  // namespace adarts::ts

#endif  // ADARTS_TS_TIME_SERIES_H_
