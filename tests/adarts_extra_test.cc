// Additional coverage of the facade and race options: exhaustive-labeling
// training path, race option edge cases, committee quality gate, the
// feature extractor's configurable embedding, and the batched inference
// entry points (RecommendBatch / RepairSet).

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "adarts/adarts.h"
#include "automl/model_race.h"
#include "automl/synthesizer.h"
#include "common/exec_context.h"
#include "common/rng.h"
#include "data/generators.h"
#include "tests/test_util.h"
#include "ts/missing.h"

namespace adarts {
namespace {

using ::adarts::testing::MakeBlobs;

std::vector<ts::TimeSeries> TinyCorpus(std::size_t per_category = 10) {
  data::GeneratorOptions gopts;
  gopts.num_series = per_category;
  gopts.length = 144;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c : {data::Category::kClimate, data::Category::kMotion}) {
    for (auto& s : data::GenerateCategory(c, gopts)) {
      corpus.push_back(std::move(s));
    }
  }
  return corpus;
}

TrainOptions TinyTrainOptions() {
  TrainOptions opts;
  opts.labeling.algorithms = {impute::Algorithm::kCdRec,
                              impute::Algorithm::kTkcm,
                              impute::Algorithm::kLinearInterp};
  opts.race.num_seed_pipelines = 12;
  opts.race.num_partial_sets = 2;
  opts.race.num_folds = 2;
  opts.features.landmarks = 12;
  return opts;
}

TEST(AdartsTrainPathsTest, ExhaustiveLabelingPathWorks) {
  TrainOptions opts = TinyTrainOptions();
  opts.use_cluster_labeling = false;  // LabelSeriesFull path
  auto engine = Adarts::Train(TinyCorpus(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_GE(engine->committee_size(), 1u);
  EXPECT_EQ(engine->training_data().size(), TinyCorpus().size());
}

TEST(AdartsTrainPathsTest, TrainingDataRetainedAndValid) {
  auto engine = Adarts::Train(TinyCorpus(), TinyTrainOptions());
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->training_data().Validate().ok());
  EXPECT_EQ(engine->training_data().dim(),
            engine->feature_extractor().NumFeatures());
}

TEST(AdartsTrainPathsTest, CustomFeatureOptionsPropagate) {
  TrainOptions opts = TinyTrainOptions();
  opts.features.topological = false;
  auto engine = Adarts::Train(TinyCorpus(), opts);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->feature_extractor().options().topological);
  // A recommendation still works with the reduced schema.
  data::GeneratorOptions gopts;
  gopts.num_series = 1;
  gopts.length = 144;
  gopts.seed = 5;
  ts::TimeSeries faulty =
      data::GenerateCategory(data::Category::kClimate, gopts)[0];
  Rng rng(3);
  ASSERT_TRUE(ts::InjectSingleBlock(12, &rng, &faulty).ok());
  EXPECT_TRUE(engine->Recommend(faulty).ok());
}

TEST(ModelRaceOptionsTest, MaxSurvivorsCapIsRespected) {
  const ml::Dataset train = MakeBlobs(3, 40, 4, 51);
  const ml::Dataset test = MakeBlobs(3, 15, 4, 52);
  automl::ModelRaceOptions opts;
  opts.num_seed_pipelines = 24;
  opts.max_survivors = 3;
  // Keep everything alive except the cap: huge margin, no t-test prunes.
  opts.early_termination_margin = 1e9;
  opts.ttest_worse_pvalue = 0.0;
  opts.ttest_similarity_pvalue = 1.1;
  auto report = automl::RunModelRace(train, test, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->elites.size(), 3u);
}

TEST(ModelRaceOptionsTest, TinyEarlyTerminationMarginPrunesAggressively) {
  const ml::Dataset train = MakeBlobs(3, 40, 4, 53);
  const ml::Dataset test = MakeBlobs(3, 15, 4, 54);
  automl::ModelRaceOptions loose;
  loose.num_seed_pipelines = 20;
  loose.early_termination_margin = 1e9;
  automl::ModelRaceOptions tight = loose;
  tight.early_termination_margin = 0.02;
  auto loose_report = automl::RunModelRace(train, test, loose);
  auto tight_report = automl::RunModelRace(train, test, tight);
  ASSERT_TRUE(loose_report.ok());
  ASSERT_TRUE(tight_report.ok());
  EXPECT_GT(tight_report->pipelines_pruned_early,
            loose_report->pipelines_pruned_early);
  EXPECT_LT(tight_report->pipelines_evaluated,
            loose_report->pipelines_evaluated);
}

TEST(ModelRaceOptionsTest, ScoreCoefficientsAllZeroTimeStillRuns) {
  const ml::Dataset train = MakeBlobs(2, 30, 3, 55);
  automl::ModelRaceOptions opts;
  opts.num_seed_pipelines = 12;
  opts.num_partial_sets = 2;
  opts.gamma = 0.0;  // pure-effectiveness scoring
  auto report = automl::RunModelRace(train, train, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->elites.empty());
}

TEST(CommitteeGateTest, GateDropsTrailingElites) {
  // Construct a report whose second elite trails the first by more than the
  // 0.1 gate: the committee must contain only the leader.
  const ml::Dataset train = MakeBlobs(2, 25, 3, 56);
  automl::Synthesizer synth(57);
  automl::ModelRaceReport report;
  automl::RacedPipeline strong;
  strong.spec = synth.SeedPipelines(1)[0];
  strong.mean_score = 0.9;
  automl::RacedPipeline weak;
  weak.spec = synth.SeedPipelines(2)[1];
  weak.mean_score = 0.3;
  report.elites = {strong, weak};
  auto rec = automl::VotingRecommender::FromRace(report, train);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->committee_size(), 1u);
}

TEST(CommitteeGateTest, CloseElitesAllVote) {
  const ml::Dataset train = MakeBlobs(2, 25, 3, 58);
  automl::Synthesizer synth(59);
  automl::ModelRaceReport report;
  const auto seeds = synth.SeedPipelines(3);
  for (std::size_t i = 0; i < 3; ++i) {
    automl::RacedPipeline rp;
    rp.spec = seeds[i];
    rp.mean_score = 0.8 - 0.03 * static_cast<double>(i);  // within the gate
    report.elites.push_back(std::move(rp));
  }
  auto rec = automl::VotingRecommender::FromRace(report, train);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->committee_size(), 3u);
}

/// A batch of faulty probes spanning two categories, so the committee does
/// not trivially recommend one algorithm for every element.
std::vector<ts::TimeSeries> FaultyProbes(std::size_t per_category,
                                         std::uint64_t seed = 63) {
  data::GeneratorOptions gopts;
  gopts.num_series = per_category;
  gopts.length = 144;
  gopts.seed = seed;
  std::vector<ts::TimeSeries> probes;
  for (data::Category c : {data::Category::kClimate, data::Category::kMotion}) {
    for (auto& s : data::GenerateCategory(c, gopts)) {
      probes.push_back(std::move(s));
    }
  }
  Rng rng(9);
  for (auto& s : probes) {
    EXPECT_TRUE(ts::InjectSingleBlock(12, &rng, &s).ok());
  }
  return probes;
}

TEST(BatchInferenceTest, RecommendBatchAgreesWithPerSeriesRecommend) {
  auto engine = Adarts::Train(TinyCorpus(), TinyTrainOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  const auto probes = FaultyProbes(4);
  ExecContext ctx(testing::TestThreadCount());
  auto batch = engine->RecommendBatch(probes, {}, ctx);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), probes.size());
  // Element i of the batch is series i's recommendation: order preserved,
  // values identical to the per-series calls.
  for (std::size_t i = 0; i < probes.size(); ++i) {
    auto single = engine->Recommend(probes[i]);
    ASSERT_TRUE(single.ok()) << single.status();
    EXPECT_EQ((*batch)[i], *single) << "series " << i;
  }
}

TEST(BatchInferenceTest, RecommendBatchBitIdenticalAcrossThreadCounts) {
  auto engine = Adarts::Train(TinyCorpus(), TinyTrainOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  const auto probes = FaultyProbes(3, 71);
  ExecContext serial_ctx(1);
  auto reference = engine->RecommendBatch(probes, {}, serial_ctx);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (std::size_t threads : {std::size_t{2}, testing::TestThreadCount()}) {
    ExecContext ctx(threads);
    auto batch = engine->RecommendBatch(probes, {}, ctx);
    ASSERT_TRUE(batch.ok()) << batch.status();
    EXPECT_EQ(*batch, *reference) << "threads=" << threads;
  }
}

TEST(BatchInferenceTest, RecommendBatchEmptyBatchYieldsEmptyVector) {
  auto engine = Adarts::Train(TinyCorpus(), TinyTrainOptions());
  ASSERT_TRUE(engine.ok());
  auto batch = engine->RecommendBatch({});
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_TRUE(batch->empty());
}

TEST(BatchInferenceTest, RepairSetMatchesSerialSeedBehavior) {
  // Golden check: the batched RepairSet must reproduce the seed's serial
  // semantics exactly — per-series recommendations, majority vote with ties
  // toward the smallest algorithm id, one ImputeSet with the winner.
  auto engine = Adarts::Train(TinyCorpus(), TinyTrainOptions());
  ASSERT_TRUE(engine.ok());
  const auto probes = FaultyProbes(3, 67);

  std::map<int, std::size_t> votes;
  for (const auto& s : probes) {
    auto algo = engine->Recommend(s);
    ASSERT_TRUE(algo.ok());
    ++votes[static_cast<int>(*algo)];
  }
  const auto winner = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  const auto golden_algo = static_cast<impute::Algorithm>(winner->first);
  auto golden = impute::CreateImputer(golden_algo)->ImputeSet(probes);
  ASSERT_TRUE(golden.ok());

  for (std::size_t threads : {std::size_t{1}, testing::TestThreadCount()}) {
    ExecContext ctx(threads);
    auto repaired = engine->RepairSet(probes, {}, ctx);
    ASSERT_TRUE(repaired.ok()) << repaired.status();
    ASSERT_EQ(repaired->size(), golden->size());
    for (std::size_t i = 0; i < golden->size(); ++i) {
      EXPECT_EQ((*repaired)[i].values(), (*golden)[i].values())
          << "series " << i << " threads " << threads;
    }
  }
}

TEST(BatchInferenceTest, RepairSetStillRejectsEmptySet) {
  auto engine = Adarts::Train(TinyCorpus(), TinyTrainOptions());
  ASSERT_TRUE(engine.ok());
  auto repaired = engine->RepairSet({});
  ASSERT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.status().code(), StatusCode::kInvalidArgument);
}

TEST(RepairSetTest, MixedCompleteAndFaultySeries) {
  auto engine = Adarts::Train(TinyCorpus(), TinyTrainOptions());
  ASSERT_TRUE(engine.ok());
  data::GeneratorOptions gopts;
  gopts.num_series = 4;
  gopts.length = 144;
  gopts.seed = 61;
  auto set = data::GenerateCategory(data::Category::kClimate, gopts);
  Rng rng(7);
  // Only half of the set is faulty.
  ASSERT_TRUE(ts::InjectSingleBlock(10, &rng, &set[0]).ok());
  ASSERT_TRUE(ts::InjectSingleBlock(10, &rng, &set[2]).ok());
  auto repaired = engine->RepairSet(set);
  ASSERT_TRUE(repaired.ok());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_FALSE((*repaired)[i].HasMissing());
    // Complete series pass through untouched.
    if (!set[i].HasMissing()) {
      EXPECT_EQ((*repaired)[i].values(), set[i].values());
    }
  }
}

}  // namespace
}  // namespace adarts
