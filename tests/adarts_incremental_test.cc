// Tests of incremental corpus growth (`Adarts::AppendSeries`): labeling
// agreement with a full retrain across seeds, bit-identical results across
// thread counts, growth-state snapshot round-trips, rejection of engines
// without growth state, and transactional rollback under injected faults.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adarts/adarts.h"
#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "tests/test_util.h"
#include "ts/missing.h"

namespace adarts {
namespace {

using ::adarts::testing::TestThreadCount;

// ---- Corpus construction.
//
// Three tightly-correlated blocks with decisively different best imputers:
// two sine families (trmf wins) and linear ramps (linear_interp
// reconstructs them exactly through any gap). Near-1 intra-block
// correlation plus binary recursive splits make the clustering partition —
// and therefore the labels — stable under corpus growth, so the agreement
// comparison below measures the incremental pipeline, not partition noise.

ts::TimeSeries MakeBlockSeries(int block, std::size_t idx, std::size_t length,
                               Rng* rng) {
  la::Vector v(length);
  for (std::size_t t = 0; t < length; ++t) {
    const double tt = static_cast<double>(t);
    double x = 0.0;
    if (block == 0) {
      x = std::sin(2.0 * M_PI * tt / 24.0 + 0.05 * static_cast<double>(idx));
    } else if (block == 1) {
      x = std::sin(2.0 * M_PI * tt / 8.0 + 0.05 * static_cast<double>(idx));
    } else {
      x = (1.0 + 0.1 * static_cast<double>(idx)) * tt /
          static_cast<double>(length) * 4.0;
    }
    v[t] = x + rng->Normal(0, 0.03);
  }
  return ts::TimeSeries(std::move(v));
}

/// Corpus and delta from one draw: per block the first `base_per` series
/// form the corpus and the next ones the delta — the delta continues the
/// corpus distribution, the regime AppendSeries is designed for.
void BuildCorpusAndDelta(std::size_t base, std::size_t extra,
                         std::uint64_t seed,
                         std::vector<ts::TimeSeries>* corpus,
                         std::vector<ts::TimeSeries>* delta) {
  constexpr std::size_t kLength = 160;
  Rng rng(seed);
  const std::size_t base_per = (base + 2) / 3;
  const std::size_t extra_per = (extra + 2) / 3;
  for (int b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < base_per + extra_per; ++i) {
      auto s = MakeBlockSeries(b, i, kLength, &rng);
      if (i < base_per) {
        if (corpus->size() < base) corpus->push_back(std::move(s));
      } else if (delta->size() < extra) {
        delta->push_back(std::move(s));
      }
    }
  }
}

TrainOptions BlockTrainOptions(std::uint64_t seed) {
  TrainOptions options;
  options.seed = seed;
  options.race.num_seed_pipelines = 12;
  options.race.num_partial_sets = 2;
  options.race.num_folds = 2;
  options.race.seed = 11;
  // No wall-clock term in the race score: repeated trains (and appends at
  // any thread count) are bit-identical, which the determinism test needs.
  options.race.gamma = 0.0;
  options.labeling.algorithms = {
      impute::Algorithm::kTrmf, impute::Algorithm::kTkcm,
      impute::Algorithm::kLinearInterp, impute::Algorithm::kMeanImpute};
  options.labeling.representatives_per_cluster = 4;
  options.clustering.split_fraction = 0.01;  // binary recursive splits
  return options;
}

Result<Adarts> TrainBase(std::uint64_t seed,
                         std::vector<ts::TimeSeries>* delta_out,
                         std::vector<ts::TimeSeries>* grown_out = nullptr) {
  std::vector<ts::TimeSeries> corpus;
  std::vector<ts::TimeSeries> delta;
  BuildCorpusAndDelta(36, 4, seed, &corpus, &delta);
  if (grown_out != nullptr) {
    *grown_out = corpus;
    grown_out->insert(grown_out->end(), delta.begin(), delta.end());
  }
  *delta_out = std::move(delta);
  return Adarts::Train(corpus, BlockTrainOptions(seed));
}

// ---- Agreement with a full retrain, across seeds.

TEST(AdartsIncrementalTest, AppendAgreesWithFullRetrainAcrossSeeds) {
  for (const std::uint64_t seed : {17u, 29u, 43u, 61u, 77u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<ts::TimeSeries> delta;
    std::vector<ts::TimeSeries> grown;
    auto engine = TrainBase(seed, &delta, &grown);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(engine->has_growth_state());
    const std::uint64_t version = engine->engine_version();

    ASSERT_TRUE(engine->AppendSeries(delta).ok());
    EXPECT_EQ(engine->engine_version(), version + 1);
    EXPECT_EQ(engine->training_data().size(), grown.size());

    auto control = Adarts::Train(grown, BlockTrainOptions(seed));
    ASSERT_TRUE(control.ok()) << control.status().ToString();

    const std::vector<int>& incremental = engine->training_data().labels;
    const std::vector<int>& retrained = control->training_data().labels;
    ASSERT_EQ(incremental.size(), retrained.size());
    std::size_t matches = 0;
    for (std::size_t i = 0; i < incremental.size(); ++i) {
      if (incremental[i] == retrained[i]) ++matches;
    }
    const double agreement = static_cast<double>(matches) /
                             static_cast<double>(incremental.size());
    EXPECT_GE(agreement, 0.9) << matches << "/" << incremental.size()
                              << " labels agree";
  }
}

TEST(AdartsIncrementalTest, AppendPopulatesUpdateCountersAndSpans) {
  std::vector<ts::TimeSeries> delta;
  auto engine = TrainBase(17, &delta);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ExecContext ctx(1);
  ASSERT_TRUE(engine->AppendSeries(delta, UpdateOptions{}, ctx).ok());

  const StageMetrics snapshot = engine->train_report().stages;
  ASSERT_TRUE(snapshot.counters.count("update.assigned") == 1 ||
              snapshot.counters.count("update.splits") == 1);
  std::uint64_t placed = 0;
  if (snapshot.counters.count("update.assigned") == 1) {
    placed += snapshot.counters.at("update.assigned");
  }
  if (snapshot.counters.count("update.splits") == 1) {
    placed += snapshot.counters.at("update.splits");
  }
  EXPECT_EQ(placed, delta.size());
  EXPECT_EQ(snapshot.spans_seconds.count("update.assign_seconds"), 1u);
  EXPECT_EQ(snapshot.spans_seconds.count("update.features_seconds"), 1u);
  EXPECT_EQ(snapshot.spans_seconds.count("update.race_seconds"), 1u);
}

// ---- Determinism: bit-identical across thread counts.

TEST(AdartsIncrementalTest, AppendIsBitIdenticalAcrossThreadCounts) {
  std::vector<ts::TimeSeries> delta;
  auto serial = TrainBase(29, &delta);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  std::vector<ts::TimeSeries> delta2;
  auto parallel = TrainBase(29, &delta2);
  ASSERT_TRUE(parallel.ok());

  // gamma = 0 removes the wall-clock term from the race score; with it the
  // appended engine must be bit-identical at every thread count.
  UpdateOptions update;
  update.race.gamma = 0.0;
  ExecContext one(1);
  ExecContext many(TestThreadCount());
  ASSERT_TRUE(serial->AppendSeries(delta, update, one).ok());
  ASSERT_TRUE(parallel->AppendSeries(delta2, update, many).ok());

  ASSERT_EQ(serial->training_data().size(), parallel->training_data().size());
  EXPECT_EQ(serial->training_data().labels, parallel->training_data().labels);
  for (std::size_t i = 0; i < serial->training_data().size(); ++i) {
    const la::Vector& a = serial->training_data().features[i];
    const la::Vector& b = parallel->training_data().features[i];
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j], b[j]) << "feature (" << i << ", " << j << ")";
    }
  }
  ASSERT_EQ(serial->committee_size(), parallel->committee_size());
  for (std::size_t i = 0; i < serial->committee().size(); ++i) {
    EXPECT_EQ(serial->committee()[i].spec.ToString(),
              parallel->committee()[i].spec.ToString());
  }
  ASSERT_EQ(serial->growth_state().clusters.size(),
            parallel->growth_state().clusters.size());
  for (std::size_t k = 0; k < serial->growth_state().clusters.size(); ++k) {
    EXPECT_EQ(serial->growth_state().clusters[k].label,
              parallel->growth_state().clusters[k].label);
    EXPECT_EQ(serial->growth_state().clusters[k].member_count,
              parallel->growth_state().clusters[k].member_count);
  }
}

// ---- Snapshot round-trips of the growth state.

TEST(AdartsIncrementalTest, GrowthStateSurvivesSnapshotRoundTrip) {
  std::vector<ts::TimeSeries> delta;
  auto engine = TrainBase(43, &delta);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(engine->has_growth_state());

  const std::string path =
      ::testing::TempDir() + "/adarts_incremental_roundtrip.bin";
  ASSERT_TRUE(engine->Save(path).ok());
  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->has_growth_state());

  const GrowthState& before = engine->growth_state();
  const GrowthState& after = loaded->growth_state();
  ASSERT_EQ(before.clusters.size(), after.clusters.size());
  for (std::size_t k = 0; k < before.clusters.size(); ++k) {
    EXPECT_EQ(before.clusters[k].label, after.clusters[k].label);
    EXPECT_EQ(before.clusters[k].member_count, after.clusters[k].member_count);
    ASSERT_EQ(before.clusters[k].representatives.size(),
              after.clusters[k].representatives.size());
    for (std::size_t r = 0; r < before.clusters[k].representatives.size();
         ++r) {
      const ts::TimeSeries& x = before.clusters[k].representatives[r];
      const ts::TimeSeries& y = after.clusters[k].representatives[r];
      ASSERT_EQ(x.length(), y.length());
      for (std::size_t t = 0; t < x.length(); ++t) {
        EXPECT_EQ(x.IsMissing(t), y.IsMissing(t));
        if (!x.IsMissing(t)) {
          EXPECT_EQ(x.value(t), y.value(t));
        }
      }
    }
  }
  ASSERT_EQ(before.warm_start.elites.size(), after.warm_start.elites.size());
  for (std::size_t e = 0; e < before.warm_start.elites.size(); ++e) {
    EXPECT_EQ(before.warm_start.elites[e].spec.ToString(),
              after.warm_start.elites[e].spec.ToString());
    EXPECT_EQ(before.warm_start.elites[e].mean_score,
              after.warm_start.elites[e].mean_score);
  }

  // The loaded engine keeps growing: append works and bumps the version.
  const std::uint64_t version = loaded->engine_version();
  ASSERT_TRUE(loaded->AppendSeries(delta).ok());
  EXPECT_EQ(loaded->engine_version(), version + 1);
}

TEST(AdartsIncrementalTest, AppendedEngineSnapshotRoundTrips) {
  std::vector<ts::TimeSeries> delta;
  auto engine = TrainBase(61, &delta);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(engine->AppendSeries(delta).ok());

  const std::string path =
      ::testing::TempDir() + "/adarts_incremental_appended.bin";
  ASSERT_TRUE(engine->Save(path).ok());
  auto loaded = Adarts::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->engine_version(), engine->engine_version());
  EXPECT_EQ(loaded->training_data().size(), engine->training_data().size());
  EXPECT_EQ(loaded->training_data().labels, engine->training_data().labels);
  EXPECT_EQ(loaded->growth_state().clusters.size(),
            engine->growth_state().clusters.size());
  EXPECT_EQ(loaded->growth_state().warm_start.elites.size(),
            engine->growth_state().warm_start.elites.size());
}

// ---- Rejections.

TEST(AdartsIncrementalTest, EngineWithoutGrowthStateRejectsAppend) {
  std::vector<ts::TimeSeries> delta;
  std::vector<ts::TimeSeries> corpus;
  BuildCorpusAndDelta(36, 4, 77, &corpus, &delta);
  TrainOptions options = BlockTrainOptions(77);
  options.use_cluster_labeling = false;  // exhaustive path: no growth state
  auto engine = Adarts::Train(corpus, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE(engine->has_growth_state());
  const Status st = engine->AppendSeries(delta);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(AdartsIncrementalTest, EmptyDeltaAndForeignPoolAreRejected) {
  std::vector<ts::TimeSeries> delta;
  auto engine = TrainBase(17, &delta);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->AppendSeries({}).code(), StatusCode::kInvalidArgument);

  UpdateOptions foreign;
  foreign.labeling.algorithms = {impute::Algorithm::kGrouse};
  EXPECT_EQ(engine->AppendSeries(delta, foreign).code(),
            StatusCode::kInvalidArgument);
}

// ---- Transactional rollback under injected faults.

TEST(AdartsIncrementalTest, AppendFaultsLeaveEngineUnchanged) {
  std::vector<ts::TimeSeries> delta;
  auto engine = TrainBase(91, &delta);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const std::uint64_t version = engine->engine_version();
  const std::size_t corpus_size = engine->training_data().size();
  const std::vector<int> labels = engine->training_data().labels;
  std::vector<std::string> committee;
  for (const auto& member : engine->committee()) {
    committee.push_back(member.spec.ToString());
  }
  const std::size_t clusters = engine->growth_state().clusters.size();

  for (const char* site : {"adarts.update.start", "adarts.update.assign",
                           "adarts.update.label", "adarts.update.race"}) {
    SCOPED_TRACE(site);
    ScopedFailpoint fp{site, FailpointSpec{}};
    const Status st = engine->AppendSeries(delta);
    EXPECT_FALSE(st.ok());
    EXPECT_FALSE(st.message().empty());
    EXPECT_EQ(engine->engine_version(), version);
    EXPECT_EQ(engine->training_data().size(), corpus_size);
    EXPECT_EQ(engine->training_data().labels, labels);
    EXPECT_EQ(engine->growth_state().clusters.size(), clusters);
    ASSERT_EQ(engine->committee().size(), committee.size());
    for (std::size_t i = 0; i < committee.size(); ++i) {
      EXPECT_EQ(engine->committee()[i].spec.ToString(), committee[i]);
    }
  }

  // After the faults clear, the same append succeeds — nothing was
  // half-committed.
  ASSERT_TRUE(engine->AppendSeries(delta).ok());
  EXPECT_EQ(engine->engine_version(), version + 1);
  EXPECT_EQ(engine->training_data().size(), corpus_size + delta.size());
}

// ---- Warm start economics.

TEST(AdartsIncrementalTest, WarmStartSeedsRaceFromStoredElites) {
  std::vector<ts::TimeSeries> delta;
  auto engine = TrainBase(103, &delta);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_FALSE(engine->growth_state().warm_start.empty());

  ExecContext ctx(1);
  ASSERT_TRUE(engine->AppendSeries(delta, UpdateOptions{}, ctx).ok());
  // The refreshed warm-start state carries the new race's elites so the
  // next append keeps compounding.
  EXPECT_FALSE(engine->growth_state().warm_start.empty());
  const StageMetrics snapshot = engine->train_report().stages;
  EXPECT_EQ(snapshot.counters.count("race.pipelines_evaluated"), 1u);
}

}  // namespace
}  // namespace adarts
