// End-to-end tests of the A-DARTS engine: cluster -> label -> extract ->
// race -> vote -> repair, on generated corpora.

#include <gtest/gtest.h>

#include "adarts/adarts.h"
#include "common/rng.h"
#include "data/generators.h"
#include "tests/test_util.h"
#include "ts/metrics.h"
#include "ts/missing.h"

namespace adarts {
namespace {

TrainOptions FastOptions() {
  TrainOptions opts;
  // Small pool and race keep the integration tests quick while exercising
  // every stage.
  opts.labeling.algorithms = {
      impute::Algorithm::kCdRec, impute::Algorithm::kSvdImpute,
      impute::Algorithm::kTkcm, impute::Algorithm::kLinearInterp,
      impute::Algorithm::kMeanImpute};
  opts.race.num_seed_pipelines = 12;
  opts.race.num_partial_sets = 2;
  opts.race.num_folds = 2;
  opts.features.landmarks = 16;
  return opts;
}

std::vector<ts::TimeSeries> SmallCorpus() {
  data::GeneratorOptions gopts;
  gopts.num_series = 12;
  gopts.length = 160;
  std::vector<ts::TimeSeries> corpus;
  for (data::Category c :
       {data::Category::kClimate, data::Category::kMotion,
        data::Category::kMedical}) {
    for (auto& s : data::GenerateCategory(c, gopts)) {
      corpus.push_back(std::move(s));
    }
  }
  return corpus;
}

TEST(AdartsIntegrationTest, TrainsAndRecommendsFromPool) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_GE(engine->committee_size(), 1u);
  EXPECT_EQ(engine->algorithm_pool().size(), 5u);

  // A new faulty series gets a recommendation from the pool.
  data::GeneratorOptions gopts;
  gopts.num_series = 1;
  gopts.length = 160;
  gopts.seed = 77;
  ts::TimeSeries faulty =
      data::GenerateCategory(data::Category::kClimate, gopts)[0];
  Rng rng(5);
  ASSERT_TRUE(ts::InjectSingleBlock(16, &rng, &faulty).ok());

  auto algo = engine->Recommend(faulty);
  ASSERT_TRUE(algo.ok());
  bool in_pool = false;
  for (impute::Algorithm a : engine->algorithm_pool()) {
    if (a == *algo) in_pool = true;
  }
  EXPECT_TRUE(in_pool);

  auto ranking = engine->RecommendRanked(faulty);
  ASSERT_TRUE(ranking.ok());
  EXPECT_EQ(ranking->size(), 5u);
  EXPECT_EQ((*ranking)[0], *algo);
}

TEST(AdartsIntegrationTest, RepairFillsAllGapsAndIsAccurate) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();

  data::GeneratorOptions gopts;
  gopts.num_series = 1;
  gopts.length = 160;
  gopts.seed = 91;
  ts::TimeSeries faulty =
      data::GenerateCategory(data::Category::kMedical, gopts)[0];
  Rng rng(6);
  ASSERT_TRUE(ts::InjectSingleBlock(16, &rng, &faulty).ok());

  auto repaired = engine->Repair(faulty);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->HasMissing());

  // Sanity bound: the engine's pick is never the catastrophic one. (A lone
  // series offers no cross-series context, so beating every baseline is not
  // guaranteed; being no worse than the pool's worst algorithm is.)
  auto engine_rmse = ts::ImputationRmse(faulty, *repaired);
  ASSERT_TRUE(engine_rmse.ok());
  double worst = 0.0;
  for (impute::Algorithm a : engine->algorithm_pool()) {
    auto alt = impute::CreateImputer(a)->Impute(faulty);
    ASSERT_TRUE(alt.ok());
    worst = std::max(worst, ts::ImputationRmse(faulty, *alt).value());
  }
  EXPECT_LE(*engine_rmse, worst + 1e-9);
}

TEST(AdartsIntegrationTest, RepairSetUsesMajorityVote) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok());

  data::GeneratorOptions gopts;
  gopts.num_series = 5;
  gopts.length = 160;
  gopts.seed = 101;
  auto set = data::GenerateCategory(data::Category::kClimate, gopts);
  Rng rng(7);
  for (auto& s : set) {
    ASSERT_TRUE(ts::InjectSingleBlock(12, &rng, &s).ok());
  }
  auto repaired = engine->RepairSet(set);
  ASSERT_TRUE(repaired.ok());
  ASSERT_EQ(repaired->size(), set.size());
  for (const auto& s : *repaired) {
    EXPECT_FALSE(s.HasMissing());
  }
}

TEST(AdartsIntegrationTest, CompleteSeriesPassThrough) {
  auto engine = Adarts::Train(SmallCorpus(), FastOptions());
  ASSERT_TRUE(engine.ok());
  const ts::TimeSeries complete = testing::MakeSine(160, 20.0);
  auto repaired = engine->Repair(complete);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->values(), complete.values());
}

TEST(AdartsIntegrationTest, TrainRejectsTinyCorpus) {
  EXPECT_FALSE(Adarts::Train({testing::MakeSine(64, 8.0)}, {}).ok());
}

TEST(AdartsIntegrationTest, TrainFromLabeledDataset) {
  // Build a labeled dataset directly (bench-style training path).
  const ml::Dataset labeled = testing::MakeBlobs(3, 30, 6, 41);
  const std::vector<impute::Algorithm> pool = {
      impute::Algorithm::kCdRec, impute::Algorithm::kTkcm,
      impute::Algorithm::kLinearInterp};
  automl::ModelRaceOptions race;
  race.num_seed_pipelines = 12;
  race.num_partial_sets = 2;
  auto engine = Adarts::TrainFromLabeled(labeled, pool, {}, race);
  ASSERT_TRUE(engine.ok()) << engine.status();
  const la::Vector probs = engine->PredictProba(labeled.features[0]);
  EXPECT_EQ(probs.size(), 3u);
}

TEST(AdartsIntegrationTest, TrainFromLabeledRejectsPoolMismatch) {
  const ml::Dataset labeled = testing::MakeBlobs(3, 20, 4, 42);
  const std::vector<impute::Algorithm> pool = {impute::Algorithm::kCdRec};
  EXPECT_FALSE(Adarts::TrainFromLabeled(labeled, pool, {}, {}).ok());
}

}  // namespace
}  // namespace adarts
