#include <set>

#include <gtest/gtest.h>

#include "automl/model_race.h"
#include "automl/pipeline.h"
#include "automl/recommender.h"
#include "automl/synthesizer.h"
#include "tests/test_util.h"

namespace adarts::automl {
namespace {

using ::adarts::testing::MakeBlobs;

TEST(PipelineTest, ToStringDescribesComponents) {
  Pipeline p;
  p.classifier = ml::ClassifierKind::kKnn;
  p.params = ml::ResolveParams(ml::ClassifierKind::kKnn, {});
  p.scaler = ml::ScalerKind::kMinMax;
  const std::string s = p.ToString();
  EXPECT_NE(s.find("knn"), std::string::npos);
  EXPECT_NE(s.find("minmax"), std::string::npos);
  EXPECT_EQ(s.find("seed"), std::string::npos);  // seed hidden
}

TEST(PipelineTest, FitAndPredict) {
  const ml::Dataset train = MakeBlobs(3, 20, 4);
  Pipeline p;
  p.classifier = ml::ClassifierKind::kDecisionTree;
  p.params = ml::ResolveParams(p.classifier, {});
  p.scaler = ml::ScalerKind::kStandard;
  auto fitted = FitPipeline(p, train);
  ASSERT_TRUE(fitted.ok());
  const la::Vector probs = fitted->PredictProba(train.features[0]);
  EXPECT_EQ(probs.size(), 3u);
}

TEST(SynthesizerTest, SeedsCoverEveryClassifierFamily) {
  Synthesizer synth(1);
  const auto seeds = synth.SeedPipelines(24);
  EXPECT_EQ(seeds.size(), 24u);
  std::set<ml::ClassifierKind> kinds;
  for (const auto& p : seeds) kinds.insert(p.classifier);
  EXPECT_EQ(kinds.size(), static_cast<std::size_t>(ml::kNumClassifierKinds));
}

TEST(SynthesizerTest, SeedsHaveUniqueIds) {
  Synthesizer synth(2);
  const auto seeds = synth.SeedPipelines(30);
  std::set<std::uint64_t> ids;
  for (const auto& p : seeds) ids.insert(p.id);
  EXPECT_EQ(ids.size(), seeds.size());
}

TEST(SynthesizerTest, MutationChangesExactlyOneAspect) {
  Synthesizer synth(3);
  for (int trial = 0; trial < 50; ++trial) {
    const Pipeline parent = synth.RandomPipeline();
    const Pipeline child = synth.Mutate(parent);
    EXPECT_EQ(child.classifier, parent.classifier);  // family never changes
    int diffs = 0;
    for (const auto& [name, value] : parent.params) {
      if (name == "seed") continue;
      if (child.params.at(name) != value) ++diffs;
    }
    if (child.scaler != parent.scaler) ++diffs;
    if (child.scaler == parent.scaler &&
        child.scaler_param != parent.scaler_param) {
      ++diffs;
    }
    EXPECT_EQ(diffs, 1) << "parent " << parent.ToString() << " child "
                        << child.ToString();
  }
}

TEST(SynthesizerTest, MutatedParamsStayInRange) {
  Synthesizer synth(4);
  Pipeline p = synth.RandomPipeline();
  for (int i = 0; i < 100; ++i) {
    p = synth.Mutate(p);
    for (const auto& spec : ml::ParamSpecsFor(p.classifier)) {
      const double v = p.params.at(spec.name);
      EXPECT_GE(v, spec.min_value) << spec.name;
      EXPECT_LE(v, spec.max_value) << spec.name;
    }
  }
}

TEST(SynthesizerTest, SynthesizePerParentCount) {
  Synthesizer synth(5);
  const auto parents = synth.SeedPipelines(12);
  const auto children = synth.Synthesize(parents, 3);
  EXPECT_EQ(children.size(), 36u);
}

TEST(SearchSpaceTest, MatchesPaperScale) {
  // Section V-A quotes ~99'000 pipelines for 12 classifiers; our default
  // grids land in the same order of magnitude (paper: 1650 * 60).
  const std::size_t size = ApproximateSearchSpaceSize();
  EXPECT_GT(size, 10'000u);
}

TEST(ModelRaceTest, ProducesElitesOnSeparableData) {
  const ml::Dataset train = MakeBlobs(3, 40, 4, 21);
  const ml::Dataset test = MakeBlobs(3, 15, 4, 22);
  ModelRaceOptions opts;
  opts.num_seed_pipelines = 12;
  opts.num_partial_sets = 2;
  opts.num_folds = 2;
  auto report = RunModelRace(train, test, opts);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->elites.empty());
  EXPECT_LE(report->elites.size(), opts.max_survivors);
  // Elites sorted by mean score and performing sensibly on easy data.
  for (std::size_t i = 1; i < report->elites.size(); ++i) {
    EXPECT_GE(report->elites[i - 1].mean_score, report->elites[i].mean_score);
  }
  EXPECT_GT(report->elites[0].mean_f1, 0.7);
  EXPECT_GT(report->pipelines_evaluated, 0u);
}

TEST(ModelRaceTest, PruningActuallyHappens) {
  const ml::Dataset train = MakeBlobs(3, 40, 4, 23);
  const ml::Dataset test = MakeBlobs(3, 15, 4, 24);
  ModelRaceOptions opts;
  opts.num_seed_pipelines = 16;
  opts.num_partial_sets = 2;
  opts.num_folds = 2;
  auto report = RunModelRace(train, test, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->pipelines_pruned_early + report->pipelines_pruned_ttest,
            0u);
}

TEST(ModelRaceTest, MultipleWinnersSurvive) {
  // The signature property vs FLAML-style single-winner searches: when the
  // data leaves genuine ambiguity between pipelines, more than one winner
  // survives the t-test band. On a trivially separable problem all
  // pipelines are statistically identical and collapsing to one is correct,
  // so this uses overlapping blobs and checks across seeds.
  Rng noise_rng(77);
  ml::Dataset train = MakeBlobs(4, 30, 5, 25);
  for (auto& f : train.features) {
    for (double& v : f) v += noise_rng.Normal(0.0, 2.5);
  }
  const ml::Dataset test = MakeBlobs(4, 12, 5, 26);
  std::size_t max_winners = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ModelRaceOptions opts;
    opts.num_seed_pipelines = 16;
    opts.num_partial_sets = 3;
    opts.seed = seed;
    auto report = RunModelRace(train, test, opts);
    ASSERT_TRUE(report.ok());
    max_winners = std::max(max_winners, report->elites.size());
  }
  EXPECT_GE(max_winners, 2u);
}

TEST(ModelRaceTest, TinyEarlyPartialSetsAreSkippedNotForced) {
  // 8 samples over 4 growing partial sets gives partials of sizes 2, 4, 6
  // and 8. The 2-sample partial cannot support a 2-fold split (the old
  // clamp forced k back up to 2 and asked StratifiedKFoldIndices for more
  // folds than samples); it must now be skipped while the larger partials
  // carry the race.
  const ml::Dataset train = MakeBlobs(2, 4, 3, 31);
  const ml::Dataset test = MakeBlobs(2, 4, 3, 32);
  ModelRaceOptions opts;
  opts.num_seed_pipelines = 6;
  opts.num_partial_sets = 4;
  opts.num_folds = 2;
  auto report = RunModelRace(train, test, opts);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->elites.empty());
}

TEST(ModelRaceTest, AllPartialsTinyIsInvalidArgument) {
  // 2 samples total: every partial set is below the 4-sample floor, so the
  // race cannot run a single iteration and must say so clearly instead of
  // failing deep inside the fold split.
  const ml::Dataset train = MakeBlobs(2, 1, 3, 33);
  const ml::Dataset test = MakeBlobs(2, 2, 3, 34);
  ModelRaceOptions opts;
  opts.num_seed_pipelines = 6;
  opts.num_partial_sets = 1;
  opts.num_folds = 2;
  auto report = RunModelRace(train, test, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelRaceTest, RejectsBadOptions) {
  const ml::Dataset d = MakeBlobs(2, 10, 2);
  ModelRaceOptions opts;
  opts.num_folds = 1;
  EXPECT_FALSE(RunModelRace(d, d, opts).ok());
}

TEST(RecommenderTest, SoftVotingAveragesCommittee) {
  const ml::Dataset train = MakeBlobs(3, 40, 4, 27);
  const ml::Dataset test = MakeBlobs(3, 15, 4, 28);
  ModelRaceOptions opts;
  opts.num_seed_pipelines = 12;
  opts.num_partial_sets = 2;
  auto report = RunModelRace(train, test, opts);
  ASSERT_TRUE(report.ok());
  auto rec = VotingRecommender::FromRace(*report, train);
  ASSERT_TRUE(rec.ok());
  EXPECT_GE(rec->committee_size(), 1u);

  const la::Vector probs = rec->PredictProba(test.features[0]);
  EXPECT_EQ(probs.size(), 3u);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);

  // The committee should classify easy blobs well.
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (rec->Recommend(test.features[i]) == test.labels[i]) ++correct;
  }
  EXPECT_GE(correct, static_cast<int>(test.size()) * 7 / 10);
}

TEST(RecommenderTest, RankingIsPermutationOrderedByProbability) {
  const ml::Dataset train = MakeBlobs(4, 25, 3, 29);
  ModelRaceOptions opts;
  opts.num_seed_pipelines = 12;
  opts.num_partial_sets = 2;
  auto report = RunModelRace(train, train, opts);
  ASSERT_TRUE(report.ok());
  auto rec = VotingRecommender::FromRace(*report, train);
  ASSERT_TRUE(rec.ok());
  const auto ranking = rec->Ranking(train.features[0]);
  EXPECT_EQ(ranking.size(), 4u);
  std::set<int> unique(ranking.begin(), ranking.end());
  EXPECT_EQ(unique.size(), 4u);
  const la::Vector p = rec->PredictProba(train.features[0]);
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(p[static_cast<std::size_t>(ranking[i - 1])],
              p[static_cast<std::size_t>(ranking[i])]);
  }
  EXPECT_EQ(ranking[0], rec->Recommend(train.features[0]));
}

}  // namespace
}  // namespace adarts::automl
