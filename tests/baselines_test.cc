#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "tests/test_util.h"

namespace adarts::baselines {
namespace {

using ::adarts::testing::MakeBlobs;

using Factory = std::function<std::unique_ptr<ModelSelector>(
    const BaselineOptions&)>;

struct BaselineCase {
  const char* name;
  Factory factory;
  bool supports_ranking;
};

class BaselineContractTest : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineContractTest, TrainsAndPredictsOnSeparableData) {
  BaselineOptions opts;
  opts.num_configurations = 10;
  auto selector = GetParam().factory(opts);
  ASSERT_NE(selector, nullptr);
  EXPECT_EQ(selector->name(), GetParam().name);

  const ml::Dataset train = MakeBlobs(3, 30, 4, 31);
  const ml::Dataset test = MakeBlobs(3, 10, 4, 32);
  ASSERT_TRUE(selector->Train(train).ok());

  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const la::Vector p = selector->PredictProba(test.features[i]);
    ASSERT_EQ(p.size(), 3u);
    double sum = 0.0;
    for (double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6);
    if (selector->Recommend(test.features[i]) == test.labels[i]) ++correct;
  }
  EXPECT_GE(correct, 21) << GetParam().name;  // 70% on trivial blobs
}

TEST_P(BaselineContractTest, RankingSupportMatchesTableOne) {
  auto selector = GetParam().factory({});
  EXPECT_EQ(selector->SupportsRanking(), GetParam().supports_ranking);
}

TEST_P(BaselineContractTest, RankingIsValidPermutation) {
  BaselineOptions opts;
  opts.num_configurations = 8;
  auto selector = GetParam().factory(opts);
  const ml::Dataset train = MakeBlobs(3, 25, 3, 33);
  ASSERT_TRUE(selector->Train(train).ok());
  const auto ranking = selector->Ranking(train.features[0]);
  EXPECT_EQ(ranking.size(), 3u);
  std::set<int> unique(ranking.begin(), ranking.end());
  EXPECT_EQ(unique.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineContractTest,
    ::testing::Values(
        BaselineCase{"flaml_lite", CreateFlamlLite, false},
        BaselineCase{"tune_lite", CreateTuneLite, false},
        BaselineCase{"autofolio_lite", CreateAutoFolioLite, false},
        BaselineCase{"raha_lite", CreateRahaLite, true}),
    [](const ::testing::TestParamInfo<BaselineCase>& info) {
      return std::string(info.param.name);
    });

TEST(BaselineDeterminismTest, SameSeedSameRecommendations) {
  const ml::Dataset train = MakeBlobs(3, 25, 3, 34);
  BaselineOptions opts;
  opts.num_configurations = 8;
  opts.seed = 99;
  auto a = CreateFlamlLite(opts);
  auto b = CreateFlamlLite(opts);
  ASSERT_TRUE(a->Train(train).ok());
  ASSERT_TRUE(b->Train(train).ok());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a->Recommend(train.features[i]), b->Recommend(train.features[i]));
  }
}

}  // namespace
}  // namespace adarts::baselines
